//! Soundness tests for the process-wide verified-credential cache,
//! exercised through the public verification APIs (not the cache type
//! directly, which has its own unit tests).
//!
//! These run against the *global* cache, which is shared across the whole
//! test process — so they assert verification **results** only, never
//! global hit/miss counts (those would race with other tests).

use trust_vo_credential::x509::AttributeCertificate;
use trust_vo_credential::{
    Attribute, CredentialAuthority, CredentialError, RevocationList, TimeRange, Timestamp,
    VerifiedCache,
};
use trust_vo_crypto::KeyPair;

fn window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
}

fn at() -> Timestamp {
    Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
}

#[test]
fn repeated_verification_stays_correct() {
    let mut ca = CredentialAuthority::new("CA-cache-1");
    let subject = KeyPair::from_seed(b"cache-subject-1");
    let cred = ca
        .issue(
            "Quality",
            "S",
            subject.public,
            vec![Attribute::new("k", "v")],
            window(),
        )
        .unwrap();
    for _ in 0..5 {
        assert!(cred.verify(at(), None).is_ok());
    }
}

#[test]
fn revocation_after_cached_hit_is_still_caught() {
    let mut ca = CredentialAuthority::new("CA-cache-2");
    let subject = KeyPair::from_seed(b"cache-subject-2");
    let cred = ca
        .issue(
            "Quality",
            "S",
            subject.public,
            vec![Attribute::new("k", "v")],
            window(),
        )
        .unwrap();
    // Warm the signature cache with a successful full verification.
    assert!(cred.verify(at(), None).is_ok());
    // Revocation arriving afterwards must be caught even though the
    // signature check now hits the cache.
    let mut crl = RevocationList::new();
    crl.revoke(cred.id().clone(), at());
    assert!(matches!(
        cred.verify(at(), Some(&crl)),
        Err(CredentialError::Revoked { .. })
    ));
    // Expiry likewise.
    assert!(matches!(
        cred.verify(window().not_after.plus_days(1), None),
        Err(CredentialError::Expired { .. })
    ));
}

#[test]
fn tampering_after_a_cached_success_is_still_rejected() {
    let mut ca = CredentialAuthority::new("CA-cache-3");
    let subject = KeyPair::from_seed(b"cache-subject-3");
    let mut cred = ca
        .issue(
            "Quality",
            "S",
            subject.public,
            vec![Attribute::new("k", "v")],
            window(),
        )
        .unwrap();
    // Cache the genuine credential first...
    assert!(cred.verify_signature().is_ok());
    // ...then tamper. The fingerprint covers the mutated field, so the
    // cached success for the genuine bytes cannot be replayed.
    cred.content[0].value = trust_vo_credential::AttrValue::from("FORGED");
    for _ in 0..2 {
        assert!(matches!(
            cred.verify_signature(),
            Err(CredentialError::BadSignature { .. })
        ));
    }
}

#[test]
fn failures_are_never_cached() {
    let mut ca = CredentialAuthority::new("CA-cache-4");
    let subject = KeyPair::from_seed(b"cache-subject-4");
    let mut cred = ca
        .issue(
            "Quality",
            "S",
            subject.public,
            vec![Attribute::new("k", "v")],
            window(),
        )
        .unwrap();
    cred.signature.s ^= 1;
    // Verify the forgery twice: both must fail (a cached failure turning
    // into a hit would be reported as success by the fast path).
    assert!(cred.verify_signature().is_err());
    assert!(cred.verify_signature().is_err());
    // Restoring the genuine signature verifies fine afterwards.
    cred.signature.s ^= 1;
    assert!(cred.verify_signature().is_ok());
}

#[test]
fn x509_tampering_after_cached_success_is_rejected() {
    let issuer = KeyPair::from_seed(b"cache-x509-issuer");
    let holder = KeyPair::from_seed(b"cache-x509-holder");
    let mut cert = AttributeCertificate::issue(
        77,
        "Holder",
        holder.public,
        "Issuer",
        &issuer,
        window(),
        vec![("role".into(), "Member".into())],
    );
    assert!(cert.verify(at(), None).is_ok());
    cert.attributes[0].1 = "Admin".into();
    assert!(cert.verify_signature().is_err());
    // Revocation after a warm cache is still caught.
    cert.attributes[0].1 = "Member".into();
    assert!(cert.verify_signature().is_ok());
    let mut crl = RevocationList::new();
    crl.revoke(cert.revocation_id(), at());
    assert!(matches!(
        cert.verify(at(), Some(&crl)),
        Err(CredentialError::Revoked { .. })
    ));
}

#[test]
fn results_identical_with_local_cache_disabled_semantics() {
    // The kill-switch path: a disabled cache must change cost only, never
    // results. Exercised on a local instance (the global one is shared).
    let cache = VerifiedCache::new(4, 16);
    cache.set_enabled(false);
    let mut ca = CredentialAuthority::new("CA-cache-5");
    let subject = KeyPair::from_seed(b"cache-subject-5");
    let cred = ca
        .issue(
            "Quality",
            "S",
            subject.public,
            vec![Attribute::new("k", "v")],
            window(),
        )
        .unwrap();
    // Global-path verification result does not depend on local cache
    // state; this pins the API contract that check() on a disabled cache
    // is always a silent miss.
    assert!(cred.verify(at(), None).is_ok());
    assert_eq!(cache.stats().hits + cache.stats().misses, 0);
}
