//! Selective attribute disclosure for attribute certificates.
//!
//! The paper's §6.3 identifies a drawback of X.509 v2 attribute
//! certificates: "only the standard and trusting negotiation strategies can
//! be adopted, because this standard does not support partial hiding of the
//! credential contents", and sketches the fix this module implements:
//!
//! > "One solution would be to substitute the attributes in clear with
//! > attributes whose content is the hash value of the concatenation of
//! > attribute name and attribute value. The signature could be computed
//! > over the whole hashed content."
//!
//! Concretely, each attribute is replaced by a **salted commitment**
//! `H(name ‖ 0x00 ‖ value ‖ 0x00 ‖ salt)`; the issuer signs the TLV
//! encoding of the committed certificate; the holder receives the salts
//! (the *openings*) and can later reveal any subset of attributes. A
//! verifier checks the issuer signature and, per disclosed attribute,
//! recomputes the commitment. Withheld attributes leak only their count.

use crate::error::CredentialError;
use crate::revocation::RevocationList;
use crate::time::{TimeRange, Timestamp};
use crate::verified::{VerifiedCache, VerifiedKey};
use trust_vo_crypto::sha256::Sha256;
use trust_vo_crypto::{Digest, KeyPair, PublicKey, Signature};

/// A committed (hidden) attribute inside a selective certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedAttr {
    /// The commitment `H(name ‖ 0 ‖ value ‖ 0 ‖ salt)`.
    pub commitment: Digest,
}

/// An attribute certificate whose attributes are salted commitments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectiveCertificate {
    /// Serial number unique per issuer.
    pub serial: u64,
    /// Holder display name.
    pub holder: String,
    /// Holder public key.
    pub holder_key: PublicKey,
    /// Issuer display name.
    pub issuer: String,
    /// Issuer verification key.
    pub issuer_key: PublicKey,
    /// Validity window.
    pub validity: TimeRange,
    /// Commitments, in issuance order.
    pub commitments: Vec<CommittedAttr>,
    /// Issuer signature over all the above.
    pub signature: Signature,
}

/// The opening of one commitment, kept by the holder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opening {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: String,
    /// The salt used in the commitment.
    pub salt: [u8; 16],
}

/// What the holder receives at issuance: the certificate plus the openings.
#[derive(Debug, Clone)]
pub struct SelectiveIssuance {
    /// The signed certificate (safe to transmit).
    pub certificate: SelectiveCertificate,
    /// The openings (held privately; disclosed selectively).
    pub openings: Vec<Opening>,
}

/// A disclosure: the certificate plus the openings of a chosen subset.
#[derive(Debug, Clone)]
pub struct DisclosedView {
    /// The certificate as issued.
    pub certificate: SelectiveCertificate,
    /// Openings for the revealed attributes only.
    pub revealed: Vec<Opening>,
}

fn commit(name: &str, value: &str, salt: &[u8; 16]) -> Digest {
    let mut h = Sha256::new();
    h.update(name.as_bytes());
    h.update(&[0]);
    h.update(value.as_bytes());
    h.update(&[0]);
    h.update(salt);
    h.finalize()
}

fn tbs_bytes(cert: &SelectiveCertificate) -> Vec<u8> {
    let mut out = Vec::with_capacity(96 + cert.commitments.len() * 33);
    out.extend_from_slice(&cert.serial.to_be_bytes());
    out.extend_from_slice(&(cert.holder.len() as u32).to_be_bytes());
    out.extend_from_slice(cert.holder.as_bytes());
    out.extend_from_slice(&cert.holder_key.0.to_be_bytes());
    out.extend_from_slice(&(cert.issuer.len() as u32).to_be_bytes());
    out.extend_from_slice(cert.issuer.as_bytes());
    out.extend_from_slice(&cert.issuer_key.0.to_be_bytes());
    out.extend_from_slice(&cert.validity.not_before.0.to_be_bytes());
    out.extend_from_slice(&cert.validity.not_after.0.to_be_bytes());
    for c in &cert.commitments {
        out.extend_from_slice(&c.commitment);
    }
    out
}

impl SelectiveIssuance {
    /// Issue a selective certificate over `attributes`. Salts are derived
    /// deterministically from the issuer key, serial, and attribute —
    /// unpredictable to outsiders, reproducible for tests.
    pub fn issue(
        serial: u64,
        holder: impl Into<String>,
        holder_key: PublicKey,
        issuer: impl Into<String>,
        issuer_keys: &KeyPair,
        validity: TimeRange,
        attributes: &[(String, String)],
    ) -> Self {
        let holder = holder.into();
        let issuer = issuer.into();
        let mut openings = Vec::with_capacity(attributes.len());
        let mut commitments = Vec::with_capacity(attributes.len());
        for (i, (name, value)) in attributes.iter().enumerate() {
            let mut salt_input = Vec::new();
            salt_input.extend_from_slice(&serial.to_be_bytes());
            salt_input.extend_from_slice(&(i as u32).to_be_bytes());
            salt_input.extend_from_slice(name.as_bytes());
            let tag = issuer_keys.sign(&salt_input); // unpredictable without the issuer key
            let digest =
                trust_vo_crypto::sha256(&[tag.r.to_be_bytes(), tag.s.to_be_bytes()].concat());
            let mut salt = [0u8; 16];
            salt.copy_from_slice(&digest[..16]);
            commitments.push(CommittedAttr {
                commitment: commit(name, value, &salt),
            });
            openings.push(Opening {
                name: name.clone(),
                value: value.clone(),
                salt,
            });
        }
        let mut certificate = SelectiveCertificate {
            serial,
            holder,
            holder_key,
            issuer,
            issuer_key: issuer_keys.public,
            validity,
            commitments,
            signature: Signature { r: 0, s: 0 },
        };
        certificate.signature = issuer_keys.sign(&tbs_bytes(&certificate));
        SelectiveIssuance {
            certificate,
            openings,
        }
    }

    /// Build a disclosure revealing exactly the attributes named in `names`.
    ///
    /// Returns `None` if a requested name has no opening.
    pub fn disclose(&self, names: &[&str]) -> Option<DisclosedView> {
        let mut revealed = Vec::with_capacity(names.len());
        for &name in names {
            revealed.push(self.openings.iter().find(|o| o.name == name)?.clone());
        }
        Some(DisclosedView {
            certificate: self.certificate.clone(),
            revealed,
        })
    }
}

impl SelectiveCertificate {
    /// A stable identifier for revocation purposes.
    pub fn revocation_id(&self) -> crate::credential::CredentialId {
        crate::credential::CredentialId(format!("sel:{}:{}", self.issuer, self.serial))
    }

    /// The [`VerifiedCache`] key for this certificate's signature check:
    /// a domain-tagged digest of the to-be-signed bytes (which cover
    /// every field and every commitment), plus issuer key and signature.
    pub(crate) fn verified_key(&self) -> VerifiedKey {
        let mut h = Sha256::new();
        h.update(&[0x03]); // domain tag: selective-disclosure certificate
        h.update(&tbs_bytes(self));
        VerifiedKey::new(h.finalize(), self.issuer_key, self.signature)
    }

    /// Verify the issuer signature over the committed content. Successful
    /// checks are memoized in the process-wide [`VerifiedCache`]; the
    /// per-opening commitment checks in [`DisclosedView::verify`] are
    /// never cached.
    pub fn verify_signature(&self) -> Result<(), CredentialError> {
        let cache = VerifiedCache::global();
        let key = self.verified_key();
        if cache.check(&key) {
            return Ok(());
        }
        if self.issuer_key.verify(&tbs_bytes(self), &self.signature) {
            cache.insert(key);
            Ok(())
        } else {
            Err(CredentialError::BadSignature {
                cred_id: self.revocation_id().0,
            })
        }
    }
}

impl DisclosedView {
    /// Verify the disclosure: issuer signature, validity, revocation, and
    /// every revealed opening against some commitment in the certificate.
    pub fn verify(
        &self,
        at: Timestamp,
        crl: Option<&RevocationList>,
    ) -> Result<(), CredentialError> {
        self.certificate.verify_signature()?;
        if !self.certificate.validity.contains(at) {
            return Err(CredentialError::Expired {
                cred_id: self.certificate.revocation_id().0,
                at,
            });
        }
        if let Some(crl) = crl {
            if crl.is_revoked(&self.certificate.revocation_id()) {
                return Err(CredentialError::Revoked {
                    cred_id: self.certificate.revocation_id().0,
                });
            }
        }
        for opening in &self.revealed {
            let expect = commit(&opening.name, &opening.value, &opening.salt);
            if !self
                .certificate
                .commitments
                .iter()
                .any(|c| c.commitment == expect)
            {
                return Err(CredentialError::Malformed(format!(
                    "opening for '{}' does not match any commitment",
                    opening.name
                )));
            }
        }
        Ok(())
    }

    /// The revealed value of an attribute, if it was disclosed.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.revealed
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.value.as_str())
    }

    /// Serialize the wire form and confirm no withheld value leaks into it.
    /// Exposed for the privacy property tests.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut out = tbs_bytes(&self.certificate);
        out.extend_from_slice(&self.certificate.signature.r.to_be_bytes());
        out.extend_from_slice(&self.certificate.signature.s.to_be_bytes());
        for o in &self.revealed {
            out.extend_from_slice(o.name.as_bytes());
            out.push(0);
            out.extend_from_slice(o.value.as_bytes());
            out.push(0);
            out.extend_from_slice(&o.salt);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    fn sample() -> SelectiveIssuance {
        let issuer = KeyPair::from_seed(b"INFN");
        let holder = KeyPair::from_seed(b"Aerospace");
        SelectiveIssuance::issue(
            42,
            "Aerospace Company",
            holder.public,
            "INFN",
            &issuer,
            window(),
            &[
                ("QualityRegulation".into(), "UNI EN ISO 9000".into()),
                ("AuditScore".into(), "97".into()),
                ("InternalNotes".into(), "do not share".into()),
            ],
        )
    }

    #[test]
    fn full_disclosure_verifies() {
        let iss = sample();
        let view = iss
            .disclose(&["QualityRegulation", "AuditScore", "InternalNotes"])
            .unwrap();
        assert!(view.verify(at(), None).is_ok());
        assert_eq!(view.attr("AuditScore"), Some("97"));
    }

    #[test]
    fn partial_disclosure_verifies() {
        let iss = sample();
        let view = iss.disclose(&["QualityRegulation"]).unwrap();
        assert!(view.verify(at(), None).is_ok());
        assert_eq!(view.attr("QualityRegulation"), Some("UNI EN ISO 9000"));
        assert_eq!(view.attr("InternalNotes"), None);
    }

    #[test]
    fn withheld_values_do_not_appear_on_the_wire() {
        let iss = sample();
        let view = iss.disclose(&["QualityRegulation"]).unwrap();
        let wire = view.wire_bytes();
        let needle = b"do not share";
        assert!(
            !wire.windows(needle.len()).any(|w| w == needle),
            "withheld attribute value leaked into the wire form"
        );
        // The disclosed one does appear.
        let disclosed = b"UNI EN ISO 9000";
        assert!(wire.windows(disclosed.len()).any(|w| w == disclosed));
    }

    #[test]
    fn forged_opening_rejected() {
        let iss = sample();
        let mut view = iss.disclose(&["AuditScore"]).unwrap();
        view.revealed[0].value = "100".into();
        assert!(matches!(
            view.verify(at(), None),
            Err(CredentialError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_salt_rejected() {
        let iss = sample();
        let mut view = iss.disclose(&["AuditScore"]).unwrap();
        view.revealed[0].salt[0] ^= 1;
        assert!(view.verify(at(), None).is_err());
    }

    #[test]
    fn tampered_commitment_rejected() {
        let iss = sample();
        let mut view = iss.disclose(&["AuditScore"]).unwrap();
        view.certificate.commitments[0].commitment[0] ^= 1;
        assert!(matches!(
            view.verify(at(), None),
            Err(CredentialError::BadSignature { .. })
        ));
    }

    #[test]
    fn unknown_attribute_cannot_be_disclosed() {
        let iss = sample();
        assert!(iss.disclose(&["Nope"]).is_none());
    }

    #[test]
    fn expiry_and_revocation_checked() {
        let iss = sample();
        let view = iss.disclose(&[]).unwrap();
        assert!(view.verify(window().not_after.plus_days(1), None).is_err());
        let mut crl = RevocationList::new();
        crl.revoke(iss.certificate.revocation_id(), at());
        assert!(matches!(
            view.verify(at(), Some(&crl)),
            Err(CredentialError::Revoked { .. })
        ));
    }

    proptest! {
        #[test]
        fn any_subset_discloses_and_verifies(mask in proptest::collection::vec(any::<bool>(), 3)) {
            let iss = sample();
            let all = ["QualityRegulation", "AuditScore", "InternalNotes"];
            let chosen: Vec<&str> = all.iter().zip(&mask).filter(|(_, &m)| m).map(|(&n, _)| n).collect();
            let view = iss.disclose(&chosen).unwrap();
            prop_assert!(view.verify(at(), None).is_ok());
            for (name, &m) in all.iter().zip(&mask) {
                prop_assert_eq!(view.attr(name).is_some(), m);
            }
        }
    }
}
