//! The X-TNL credential: `<header>`, `<content>`, `<signature>`.
//!
//! Mirrors the paper's Example 1 (§6.2): the header carries the credential
//! type, issuer, and validity window; the content carries the typed
//! attributes; the signature is the issuer's signature "on the whole
//! credential encoded in base64". Signing is performed over the canonical
//! compact XML of the credential *without* its `<signature>` element, so
//! any mutation of header or content invalidates the credential.

use crate::attribute::{AttrValue, Attribute};
use crate::error::CredentialError;
use crate::revocation::RevocationList;
use crate::time::{TimeRange, Timestamp};
use crate::verified::{VerifiedCache, VerifiedKey};
use trust_vo_crypto::sha256::Sha256;
use trust_vo_crypto::{base64, hex, Digest, KeyPair, PublicKey, Signature};
use trust_vo_xmldoc::{Element, Node};

/// A unique credential identifier assigned by the issuing authority.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CredentialId(pub String);

impl std::fmt::Display for CredentialId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for CredentialId {
    fn from(s: &str) -> Self {
        CredentialId(s.to_owned())
    }
}

/// The credential header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Unique id assigned at issuance.
    pub cred_id: CredentialId,
    /// The credential type name (`<credType>`).
    pub cred_type: String,
    /// Issuer display name (`<issuer>`).
    pub issuer: String,
    /// Issuer verification key.
    pub issuer_key: PublicKey,
    /// Subject (owner) display name.
    pub subject: String,
    /// Subject key, used to authenticate ownership at exchange time.
    pub subject_key: PublicKey,
    /// Validity window (`<expiration_Date>` pair in the paper's format).
    pub validity: TimeRange,
}

/// A signed X-TNL credential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// The header.
    pub header: Header,
    /// The typed attributes (`<content>`).
    pub content: Vec<Attribute>,
    /// Issuer signature over the canonical unsigned encoding.
    pub signature: Signature,
}

impl Credential {
    /// Sign `header` + `content` with the issuer key pair, producing a
    /// complete credential. (Authorities call this; see
    /// [`crate::authority::CredentialAuthority::issue`].)
    pub fn issue_signed(header: Header, content: Vec<Attribute>, issuer: &KeyPair) -> Self {
        let bytes = signing_bytes(&header, &content);
        let signature = issuer.sign(&bytes);
        Credential {
            header,
            content,
            signature,
        }
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.content
            .iter()
            .find(|a| a.name == name)
            .map(|a| &a.value)
    }

    /// The credential id.
    pub fn id(&self) -> &CredentialId {
        &self.header.cred_id
    }

    /// The credential type name.
    pub fn cred_type(&self) -> &str {
        &self.header.cred_type
    }

    /// Feed every signed field — the full header, every content
    /// attribute, and the issuer signature — into `h`. This is the byte
    /// stream both the negotiation sequence cache's party fingerprint and
    /// [`Credential::fingerprint`] are built from: it covers exactly the
    /// content of the canonical XML encoding without materializing an
    /// element tree.
    ///
    /// The encoding is **injective**: every variable-length field (the
    /// strings are unconstrained) carries a length prefix, the attribute
    /// list carries a count prefix, and typed values hash their type tag
    /// alongside the canonical form, so no two distinct credentials
    /// produce the same stream. Separator-joined encodings are not enough
    /// here — `[("a", "b=c")]` vs `[("a=b", "c")]`, or `Str("42")` vs
    /// `Int(42)`, must not collide, or a signature copied onto the
    /// colliding variant would hit the [`VerifiedCache`] for bytes that
    /// were never signed.
    pub fn hash_into(&self, h: &mut Sha256) {
        let field = |h: &mut Sha256, bytes: &[u8]| {
            h.update(&(bytes.len() as u64).to_be_bytes());
            h.update(bytes);
        };
        field(h, self.header.cred_id.0.as_bytes());
        field(h, self.header.cred_type.as_bytes());
        field(h, self.header.issuer.as_bytes());
        h.update(&self.header.issuer_key.0.to_be_bytes());
        field(h, self.header.subject.as_bytes());
        h.update(&self.header.subject_key.0.to_be_bytes());
        h.update(&self.header.validity.not_before.0.to_be_bytes());
        h.update(&self.header.validity.not_after.0.to_be_bytes());
        h.update(&(self.content.len() as u64).to_be_bytes());
        for attr in &self.content {
            field(h, attr.name.as_bytes());
            field(h, attr.value.type_tag().as_bytes());
            field(h, attr.value.canonical().as_bytes());
        }
        h.update(&self.signature.r.to_be_bytes());
        h.update(&self.signature.s.to_be_bytes());
    }

    /// A collision-resistant fingerprint of the whole credential (all
    /// signed fields plus the signature), domain-separated from the other
    /// credential formats. Keys the [`VerifiedCache`].
    pub fn fingerprint(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(&[0x01]); // domain tag: X-TNL credential
        self.hash_into(&mut h);
        h.finalize()
    }

    /// The [`VerifiedCache`] key for this credential's signature check.
    pub(crate) fn verified_key(&self) -> VerifiedKey {
        VerifiedKey::new(self.fingerprint(), self.header.issuer_key, self.signature)
    }

    /// Verify the issuer signature only.
    ///
    /// Consults the process-wide [`VerifiedCache`] first: a hit skips
    /// both the canonical re-serialization and the signature
    /// exponentiations. The cache key fingerprints every signed field, so
    /// any mutation of header or content forces a real re-verification;
    /// failures are never cached.
    pub fn verify_signature(&self) -> Result<(), CredentialError> {
        let cache = VerifiedCache::global();
        let key = self.verified_key();
        if cache.check(&key) {
            return Ok(());
        }
        let bytes = signing_bytes(&self.header, &self.content);
        if self.header.issuer_key.verify(&bytes, &self.signature) {
            cache.insert(key);
            Ok(())
        } else {
            Err(CredentialError::BadSignature {
                cred_id: self.header.cred_id.0.clone(),
            })
        }
    }

    /// The time- and state-dependent checks: validity window and
    /// revocation. Split out of [`Credential::verify`] so chain
    /// verification can batch the signature work while still running
    /// these **uncached, on every call**.
    pub fn verify_nonsig(
        &self,
        at: Timestamp,
        crl: Option<&RevocationList>,
    ) -> Result<(), CredentialError> {
        if !self.header.validity.contains(at) {
            return Err(CredentialError::Expired {
                cred_id: self.header.cred_id.0.clone(),
                at,
            });
        }
        if let Some(crl) = crl {
            if crl.is_revoked(&self.header.cred_id) {
                return Err(CredentialError::Revoked {
                    cred_id: self.header.cred_id.0.clone(),
                });
            }
        }
        Ok(())
    }

    /// The full exchange-time check the paper describes (§4.2): signature,
    /// validity dates, and revocation status. Only the signature check is
    /// memoized (see [`VerifiedCache`]); expiry and revocation are
    /// re-evaluated every time.
    pub fn verify(
        &self,
        at: Timestamp,
        crl: Option<&RevocationList>,
    ) -> Result<(), CredentialError> {
        self.verify_signature()?;
        self.verify_nonsig(at, crl)
    }

    /// Produce an ownership proof: the holder signs `nonce` with the
    /// subject key. The verifier calls [`Credential::authenticate_ownership`].
    pub fn prove_ownership(subject_keys: &KeyPair, nonce: &[u8]) -> Signature {
        subject_keys.sign(nonce)
    }

    /// Authenticate ownership: does `proof` show possession of this
    /// credential's subject key for the given `nonce`?
    pub fn authenticate_ownership(
        &self,
        nonce: &[u8],
        proof: &Signature,
    ) -> Result<(), CredentialError> {
        if self.header.subject_key.verify(nonce, proof) {
            Ok(())
        } else {
            Err(CredentialError::NotOwner {
                cred_id: self.header.cred_id.0.clone(),
            })
        }
    }

    /// Canonical XML encoding (includes the signature).
    pub fn to_xml(&self) -> Element {
        let mut root = unsigned_xml(&self.header, &self.content);
        let sig_text = encode_signature(&self.signature);
        root.children
            .push(Node::Element(Element::new("signature").text(sig_text)));
        root
    }

    /// Parse a credential from its XML encoding. Verifies structure only —
    /// call [`Credential::verify`] for the cryptographic checks.
    pub fn from_xml(root: &Element) -> Result<Self, CredentialError> {
        if root.name != "credential" {
            return Err(CredentialError::Malformed(format!(
                "expected <credential>, found <{}>",
                root.name
            )));
        }
        let cred_id = root
            .get_attr("credID")
            .ok_or_else(|| CredentialError::Malformed("missing credID attribute".into()))?;
        let header_el = root
            .first("header")
            .ok_or_else(|| CredentialError::Malformed("missing <header>".into()))?;
        let cred_type = header_el
            .child_text("credType")
            .ok_or_else(|| CredentialError::Malformed("missing <credType>".into()))?;
        let issuer_el = header_el
            .first("issuer")
            .ok_or_else(|| CredentialError::Malformed("missing <issuer>".into()))?;
        let subject_el = header_el
            .first("subject")
            .ok_or_else(|| CredentialError::Malformed("missing <subject>".into()))?;
        let validity_el = header_el
            .first("validity")
            .ok_or_else(|| CredentialError::Malformed("missing <validity>".into()))?;
        let parse_key = |e: &Element, what: &str| -> Result<PublicKey, CredentialError> {
            let hex_key = e
                .get_attr("key")
                .ok_or_else(|| CredentialError::Malformed(format!("{what} missing key attr")))?;
            let bytes = hex::decode(hex_key)
                .filter(|b| b.len() == 8)
                .ok_or_else(|| {
                    CredentialError::Malformed(format!("{what} key is not 8 hex bytes"))
                })?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes);
            Ok(PublicKey(u64::from_be_bytes(raw)))
        };
        let parse_ts = |attr: &str| -> Result<Timestamp, CredentialError> {
            let text = validity_el
                .get_attr(attr)
                .ok_or_else(|| CredentialError::Malformed(format!("validity missing '{attr}'")))?;
            Timestamp::parse_iso(text)
                .ok_or_else(|| CredentialError::Malformed(format!("bad timestamp '{text}'")))
        };
        let not_before = parse_ts("from")?;
        let not_after = parse_ts("to")?;
        if not_before > not_after {
            return Err(CredentialError::Malformed(
                "inverted validity window".into(),
            ));
        }
        let header = Header {
            cred_id: CredentialId(cred_id.to_owned()),
            cred_type,
            issuer: issuer_el.text_content(),
            issuer_key: parse_key(issuer_el, "issuer")?,
            subject: subject_el.text_content(),
            subject_key: parse_key(subject_el, "subject")?,
            validity: TimeRange {
                not_before,
                not_after,
            },
        };
        let content_el = root
            .first("content")
            .ok_or_else(|| CredentialError::Malformed("missing <content>".into()))?;
        let mut content = Vec::new();
        for attr_el in content_el.elements() {
            let tag = attr_el.get_attr("type").unwrap_or("string");
            let value = AttrValue::from_tagged(tag, &attr_el.text_content()).ok_or_else(|| {
                CredentialError::Malformed(format!(
                    "attribute '{}' has invalid {tag} value",
                    attr_el.name
                ))
            })?;
            content.push(Attribute {
                name: attr_el.name.clone(),
                value,
            });
        }
        let sig_text = root
            .child_text("signature")
            .ok_or_else(|| CredentialError::Malformed("missing <signature>".into()))?;
        let signature = decode_signature(&sig_text)
            .ok_or_else(|| CredentialError::Malformed("undecodable signature".into()))?;
        Ok(Credential {
            header,
            content,
            signature,
        })
    }
}

/// The canonical unsigned encoding (signature element omitted).
fn unsigned_xml(header: &Header, content: &[Attribute]) -> Element {
    let header_el = Element::new("header")
        .child(Element::new("credType").text(&header.cred_type))
        .child(
            Element::new("issuer")
                .attr("key", hex::encode(&header.issuer_key.0.to_be_bytes()))
                .text(&header.issuer),
        )
        .child(
            Element::new("subject")
                .attr("key", hex::encode(&header.subject_key.0.to_be_bytes()))
                .text(&header.subject),
        )
        .child(
            Element::new("validity")
                .attr("from", header.validity.not_before.to_iso())
                .attr("to", header.validity.not_after.to_iso()),
        );
    let mut content_el = Element::new("content");
    for attr in content {
        content_el.children.push(Node::Element(
            Element::new(&attr.name)
                .attr("type", attr.value.type_tag())
                .text(attr.value.canonical()),
        ));
    }
    Element::new("credential")
        .attr("credID", &header.cred_id.0)
        .child(header_el)
        .child(content_el)
}

/// The byte string issuers sign.
pub fn signing_bytes(header: &Header, content: &[Attribute]) -> Vec<u8> {
    trust_vo_xmldoc::to_string(&unsigned_xml(header, content)).into_bytes()
}

fn encode_signature(sig: &Signature) -> String {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(&sig.r.to_be_bytes());
    bytes.extend_from_slice(&sig.s.to_be_bytes());
    base64::encode(&bytes)
}

fn decode_signature(text: &str) -> Option<Signature> {
    let bytes = base64::decode(text.trim()).ok()?;
    if bytes.len() != 16 {
        return None;
    }
    let mut r = [0u8; 8];
    let mut s = [0u8; 8];
    r.copy_from_slice(&bytes[..8]);
    s.copy_from_slice(&bytes[8..]);
    Some(Signature {
        r: u64::from_be_bytes(r),
        s: u64::from_be_bytes(s),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeRange;

    fn issuer_keys() -> KeyPair {
        KeyPair::from_seed(b"INFN")
    }

    fn subject_keys() -> KeyPair {
        KeyPair::from_seed(b"AerospaceCo")
    }

    fn sample(issuer: &KeyPair, subject: &KeyPair) -> Credential {
        let header = Header {
            cred_id: CredentialId("cred-0001".into()),
            cred_type: "ISO9000Certified".into(),
            issuer: "INFN".into(),
            issuer_key: issuer.public,
            subject: "Aerospace Company".into(),
            subject_key: subject.public,
            validity: TimeRange::one_year_from(
                Timestamp::parse_iso("2009-10-26T21:32:52").unwrap(),
            ),
        };
        Credential::issue_signed(
            header,
            vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
            issuer,
        )
    }

    #[test]
    fn issue_and_verify() {
        let cred = sample(&issuer_keys(), &subject_keys());
        let inside = Timestamp::parse_iso("2010-01-01T00:00:00").unwrap();
        assert!(cred.verify(inside, None).is_ok());
    }

    #[test]
    fn expired_rejected() {
        let cred = sample(&issuer_keys(), &subject_keys());
        let late = Timestamp::parse_iso("2011-01-01T00:00:00").unwrap();
        assert!(matches!(
            cred.verify(late, None),
            Err(CredentialError::Expired { .. })
        ));
        let early = Timestamp::parse_iso("2009-01-01T00:00:00").unwrap();
        assert!(matches!(
            cred.verify(early, None),
            Err(CredentialError::Expired { .. })
        ));
    }

    #[test]
    fn revoked_rejected() {
        let cred = sample(&issuer_keys(), &subject_keys());
        let mut crl = RevocationList::default();
        crl.revoke(cred.id().clone(), Timestamp(0));
        let at = Timestamp::parse_iso("2010-01-01T00:00:00").unwrap();
        assert!(matches!(
            cred.verify(at, Some(&crl)),
            Err(CredentialError::Revoked { .. })
        ));
    }

    #[test]
    fn tampered_content_rejected() {
        let mut cred = sample(&issuer_keys(), &subject_keys());
        cred.content[0].value = AttrValue::Str("FORGED".into());
        assert!(matches!(
            cred.verify_signature(),
            Err(CredentialError::BadSignature { .. })
        ));
    }

    #[test]
    fn tampered_header_rejected() {
        let mut cred = sample(&issuer_keys(), &subject_keys());
        cred.header.cred_type = "PlatinumCertified".into();
        assert!(cred.verify_signature().is_err());
    }

    #[test]
    fn ownership_proof() {
        let subject = subject_keys();
        let cred = sample(&issuer_keys(), &subject);
        let nonce = b"negotiation-42-nonce";
        let proof = Credential::prove_ownership(&subject, nonce);
        assert!(cred.authenticate_ownership(nonce, &proof).is_ok());
        // A different party cannot prove ownership.
        let thief = KeyPair::from_seed(b"thief");
        let bad = Credential::prove_ownership(&thief, nonce);
        assert!(matches!(
            cred.authenticate_ownership(nonce, &bad),
            Err(CredentialError::NotOwner { .. })
        ));
        // Replaying the proof for a different nonce fails.
        assert!(cred.authenticate_ownership(b"other-nonce", &proof).is_err());
    }

    #[test]
    fn xml_roundtrip_preserves_everything() {
        let cred = sample(&issuer_keys(), &subject_keys());
        let xml = cred.to_xml();
        let text = trust_vo_xmldoc::to_string(&xml);
        let parsed = trust_vo_xmldoc::parse(&text).unwrap();
        let back = Credential::from_xml(&parsed).unwrap();
        assert_eq!(back, cred);
        // And it still verifies after the round trip.
        assert!(back.verify_signature().is_ok());
    }

    #[test]
    fn from_xml_rejects_malformed() {
        let cred = sample(&issuer_keys(), &subject_keys());
        let good = cred.to_xml();

        // Wrong root name.
        let mut bad = good.clone();
        bad.name = "creds".into();
        assert!(Credential::from_xml(&bad).is_err());

        // Drop each mandatory child in turn.
        for victim in ["header", "content", "signature"] {
            let mut bad = good.clone();
            bad.children
                .retain(|c| c.as_element().map(|e| e.name != victim).unwrap_or(true));
            assert!(Credential::from_xml(&bad).is_err(), "dropping <{victim}>");
        }
    }

    #[test]
    fn xml_matches_paper_shape() {
        let cred = sample(&issuer_keys(), &subject_keys());
        let text = trust_vo_xmldoc::to_string_pretty(&cred.to_xml());
        assert!(text.contains("<credential credID=\"cred-0001\">"));
        assert!(text.contains("<credType>ISO9000Certified</credType>"));
        assert!(
            text.contains("<QualityRegulation type=\"string\">UNI EN ISO 9000</QualityRegulation>")
        );
        assert!(text.contains("<signature>"));
    }

    /// The collision families that break separator-joined encodings:
    /// each pair of distinct credentials below hashed identically under a
    /// `0x1f`/`=`-separated stream and must fingerprint differently now.
    #[test]
    fn fingerprint_is_injective_over_field_boundaries() {
        let issuer = issuer_keys();
        let subject = subject_keys();
        let with = |content: Vec<Attribute>| {
            let mut cred = sample(&issuer, &subject);
            cred.content = content;
            cred
        };
        // Separator char inside a value vs. a real field boundary.
        let pairs = [
            (
                with(vec![Attribute::new("a", "b=c")]),
                with(vec![Attribute::new("a=b", "c")]),
            ),
            // Typed value vs. its canonical string form.
            (
                with(vec![Attribute::new("a", AttrValue::Str("42".into()))]),
                with(vec![Attribute::new("a", AttrValue::Int(42))]),
            ),
            // A 0x1f inside one value vs. two separate attributes.
            (
                with(vec![Attribute::new("a", "x\u{1f}b=c")]),
                with(vec![Attribute::new("a", "x"), Attribute::new("b", "c")]),
            ),
        ];
        for (lhs, rhs) in &pairs {
            assert_ne!(lhs.fingerprint(), rhs.fingerprint(), "{lhs:?} vs {rhs:?}");
        }
        // Header fields collide across their boundary too.
        let mut lhs = sample(&issuer, &subject);
        lhs.header.cred_id = CredentialId("a\u{1f}b".into());
        lhs.header.cred_type = "c".into();
        let mut rhs = sample(&issuer, &subject);
        rhs.header.cred_id = CredentialId("a".into());
        rhs.header.cred_type = "b\u{1f}c".into();
        assert_ne!(lhs.fingerprint(), rhs.fingerprint());
    }

    /// The attack the fingerprint exists to prevent: copying a
    /// legitimately-signed credential's issuer key and signature onto a
    /// variant whose signed bytes differ must not produce a cache hit in
    /// `verify_signature` — the forgery has to fail even though the
    /// original was verified (and cached) first.
    #[test]
    fn colliding_variant_cannot_ride_the_verified_cache() {
        let issuer = issuer_keys();
        let mut legit = sample(&issuer, &subject_keys());
        legit.content = vec![Attribute::new("a", "b=c")];
        legit.signature = issuer.sign(&signing_bytes(&legit.header, &legit.content));
        assert!(legit.verify_signature().is_ok()); // populates the cache
        let mut forged = legit.clone();
        forged.content = vec![Attribute::new("a=b", "c")];
        assert!(matches!(
            forged.verify_signature(),
            Err(CredentialError::BadSignature { .. })
        ));
    }

    #[test]
    fn attr_lookup() {
        let cred = sample(&issuer_keys(), &subject_keys());
        assert_eq!(
            cred.attr("QualityRegulation"),
            Some(&AttrValue::Str("UNI EN ISO 9000".into()))
        );
        assert_eq!(cred.attr("Missing"), None);
    }
}
