//! X-TNL credentials and the credential infrastructure of Trust-X.
//!
//! In the paper (§4.1), a *credential* is "a set of identity attributes of a
//! party issued by a Credential Authority (CA)", all of a party's
//! credentials are collected into its *X-Profile*, and during the credential
//! exchange phase the receiver "verifies the satisfaction of the associated
//! policies, checks for revocation and validity dates, and authenticates
//! the ownership".
//!
//! This crate provides every piece of that infrastructure:
//!
//! * [`time`] — a wall-clock-free timestamp (civil date ↔ epoch seconds)
//!   so validity windows are reproducible in tests and benches,
//! * [`attribute`] — typed attribute values,
//! * [`types`] — credential-type schemas,
//! * [`credential`] — the X-TNL credential (`<header>`, `<content>`,
//!   `<signature>`) with canonical-XML signing,
//! * [`authority`] — credential authorities that issue and revoke,
//! * [`revocation`] — revocation lists,
//! * [`profile`] — X-Profiles with sensitivity labels (the paper's
//!   {low, medium, high} clustering input for Algorithm 1),
//! * [`chain`] — credential chains ("retrieving those credentials that are
//!   not immediately available through credentials chains", §4.2),
//! * [`x509`] — X.509 v2-style attribute certificates, the format the VO
//!   toolkit uses for membership certificates (§6.3),
//! * [`selective`] — the paper's §6.3 proposed extension: hash-commitment
//!   attributes enabling selective disclosure on attribute certificates,
//! * [`verified`] — the cross-negotiation verified-credential cache that
//!   memoizes *successful* signature checks (revocation and validity
//!   windows are never cached).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod authority;
pub mod chain;
pub mod credential;
pub mod error;
pub mod profile;
pub mod revocation;
pub mod selective;
pub mod sensitivity;
pub mod time;
pub mod types;
pub mod verified;
pub mod x509;

pub use attribute::{AttrValue, Attribute};
pub use authority::CredentialAuthority;
pub use credential::{Credential, CredentialId, Header};
pub use error::CredentialError;
pub use profile::XProfile;
pub use revocation::RevocationList;
pub use sensitivity::Sensitivity;
pub use time::{TimeRange, Timestamp};
pub use types::CredentialType;
pub use verified::{VerifiedCache, VerifiedCacheStats, VerifiedKey};
