//! Credential authorities.
//!
//! "A credential is a set of identity attributes of a party issued by a
//! Credential Authority (CA)" (§4.1). An authority owns a key pair,
//! validates content against the credential-type schema, assigns unique
//! credential ids, signs, and maintains the revocation list consulted at
//! exchange time. The paper's scenario features authorities such as INFN
//! (the ISO-9000 certifier) and the American Aircraft Association.

use crate::attribute::Attribute;
use crate::credential::{Credential, CredentialId, Header};
use crate::error::CredentialError;
use crate::revocation::RevocationList;
use crate::time::{TimeRange, Timestamp};
use crate::types::CredentialType;
use std::collections::HashMap;
use trust_vo_crypto::{KeyPair, PublicKey};

/// A credential authority: issues, tracks, and revokes credentials.
#[derive(Debug, Clone)]
pub struct CredentialAuthority {
    /// Display name, e.g. `"INFN"`.
    pub name: String,
    keys: KeyPair,
    /// Registered type schemas, by type name.
    schemas: HashMap<String, CredentialType>,
    /// Revocations published by this authority.
    crl: RevocationList,
    issued: u64,
}

impl CredentialAuthority {
    /// Create an authority with keys derived deterministically from its name.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let keys = KeyPair::from_seed(format!("authority:{name}").as_bytes());
        CredentialAuthority {
            name,
            keys,
            schemas: HashMap::new(),
            crl: RevocationList::new(),
            issued: 0,
        }
    }

    /// The authority's verification key, distributed to relying parties.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public
    }

    /// Register a credential-type schema this authority is willing to certify.
    pub fn register_type(&mut self, schema: CredentialType) {
        self.schemas.insert(schema.name.clone(), schema);
    }

    /// The authority's current revocation list.
    pub fn revocation_list(&self) -> &RevocationList {
        &self.crl
    }

    /// Issue a credential of `cred_type` to `subject`.
    ///
    /// If a schema is registered for the type the content is validated
    /// against it; unknown types are treated as open (the paper's scenario
    /// defines types informally).
    pub fn issue(
        &mut self,
        cred_type: &str,
        subject: &str,
        subject_key: PublicKey,
        content: Vec<Attribute>,
        validity: TimeRange,
    ) -> Result<Credential, CredentialError> {
        if let Some(schema) = self.schemas.get(cred_type) {
            schema.validate(&content)?;
        }
        self.issued += 1;
        let cred_id = CredentialId(format!("{}-{:06}", slug(&self.name), self.issued));
        let header = Header {
            cred_id,
            cred_type: cred_type.to_owned(),
            issuer: self.name.clone(),
            issuer_key: self.keys.public,
            subject: subject.to_owned(),
            subject_key,
            validity,
        };
        Ok(Credential::issue_signed(header, content, &self.keys))
    }

    /// Revoke a credential this authority issued.
    pub fn revoke(&mut self, id: CredentialId, at: Timestamp) {
        self.crl.revoke(id, at);
    }
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AttrKind;

    fn subject_keys() -> KeyPair {
        KeyPair::from_seed(b"subject")
    }

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 10, 26, 0, 0, 0))
    }

    #[test]
    fn issue_produces_verifiable_credential() {
        let mut ca = CredentialAuthority::new("INFN");
        let cred = ca
            .issue(
                "ISO9000Certified",
                "Aerospace Company",
                subject_keys().public,
                vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
                window(),
            )
            .unwrap();
        assert!(cred.verify_signature().is_ok());
        assert_eq!(cred.header.issuer, "INFN");
        assert_eq!(cred.header.issuer_key, ca.public_key());
    }

    #[test]
    fn ids_are_unique_and_prefixed() {
        let mut ca = CredentialAuthority::new("AAA Certifier");
        let c1 = ca
            .issue("T", "s", subject_keys().public, vec![], window())
            .unwrap();
        let c2 = ca
            .issue("T", "s", subject_keys().public, vec![], window())
            .unwrap();
        assert_ne!(c1.id(), c2.id());
        assert!(c1.id().0.starts_with("aaa-certifier-"));
    }

    #[test]
    fn schema_enforced_when_registered() {
        let mut ca = CredentialAuthority::new("INFN");
        ca.register_type(
            CredentialType::new("ISO9000Certified").required("QualityRegulation", AttrKind::Str),
        );
        let err = ca
            .issue(
                "ISO9000Certified",
                "s",
                subject_keys().public,
                vec![],
                window(),
            )
            .unwrap_err();
        assert!(matches!(err, CredentialError::SchemaViolation { .. }));
        // Unregistered types stay open.
        assert!(ca
            .issue(
                "SomethingElse",
                "s",
                subject_keys().public,
                vec![],
                window()
            )
            .is_ok());
    }

    #[test]
    fn revocation_flows_to_verification() {
        let mut ca = CredentialAuthority::new("INFN");
        let cred = ca
            .issue("T", "s", subject_keys().public, vec![], window())
            .unwrap();
        let at = window().not_before.plus_days(10);
        assert!(cred.verify(at, Some(ca.revocation_list())).is_ok());
        ca.revoke(cred.id().clone(), at);
        assert!(matches!(
            cred.verify(at, Some(ca.revocation_list())),
            Err(CredentialError::Revoked { .. })
        ));
    }

    #[test]
    fn different_authorities_have_different_keys() {
        let a = CredentialAuthority::new("A");
        let b = CredentialAuthority::new("B");
        assert_ne!(a.public_key(), b.public_key());
        // Deterministic: same name, same key.
        assert_eq!(a.public_key(), CredentialAuthority::new("A").public_key());
    }
}
