//! Revocation lists.
//!
//! During the credential exchange phase the receiver "checks for
//! revocation" (§4.2), and "if the failure is related to trust, for example
//! a party uses a revoked certificate, the negotiation fails". Authorities
//! publish a [`RevocationList`]; negotiation sessions consult the lists of
//! the issuers they trust.

use crate::credential::CredentialId;
use crate::time::Timestamp;
use std::collections::HashMap;

/// A list of revoked credential ids with their revocation instants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RevocationList {
    entries: HashMap<CredentialId, Timestamp>,
}

impl RevocationList {
    /// Create an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Revoke a credential as of `at`. Re-revoking keeps the earliest instant.
    pub fn revoke(&mut self, id: CredentialId, at: Timestamp) {
        self.entries
            .entry(id)
            .and_modify(|t| {
                if at < *t {
                    *t = at;
                }
            })
            .or_insert(at);
    }

    /// Is the credential revoked (at any time)?
    pub fn is_revoked(&self, id: &CredentialId) -> bool {
        self.entries.contains_key(id)
    }

    /// Was the credential already revoked at `at`?
    pub fn is_revoked_at(&self, id: &CredentialId, at: Timestamp) -> bool {
        self.entries.get(id).is_some_and(|&t| t <= at)
    }

    /// When was the credential revoked, if ever?
    pub fn revoked_at(&self, id: &CredentialId) -> Option<Timestamp> {
        self.entries.get(id).copied()
    }

    /// Remove a revocation (e.g. issued in error).
    pub fn reinstate(&mut self, id: &CredentialId) -> bool {
        self.entries.remove(id).is_some()
    }

    /// Number of revoked credentials.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is revoked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another list into this one (earliest instants win).
    pub fn merge(&mut self, other: &RevocationList) {
        for (id, &at) in &other.entries {
            self.revoke(id.clone(), at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> CredentialId {
        CredentialId(s.to_owned())
    }

    #[test]
    fn revoke_and_query() {
        let mut crl = RevocationList::new();
        assert!(!crl.is_revoked(&id("c1")));
        crl.revoke(id("c1"), Timestamp(100));
        assert!(crl.is_revoked(&id("c1")));
        assert_eq!(crl.revoked_at(&id("c1")), Some(Timestamp(100)));
        assert!(!crl.is_revoked(&id("c2")));
    }

    #[test]
    fn revoked_at_respects_time() {
        let mut crl = RevocationList::new();
        crl.revoke(id("c1"), Timestamp(100));
        assert!(!crl.is_revoked_at(&id("c1"), Timestamp(99)));
        assert!(crl.is_revoked_at(&id("c1"), Timestamp(100)));
        assert!(crl.is_revoked_at(&id("c1"), Timestamp(500)));
    }

    #[test]
    fn rerevoking_keeps_earliest() {
        let mut crl = RevocationList::new();
        crl.revoke(id("c1"), Timestamp(100));
        crl.revoke(id("c1"), Timestamp(200));
        assert_eq!(crl.revoked_at(&id("c1")), Some(Timestamp(100)));
        crl.revoke(id("c1"), Timestamp(50));
        assert_eq!(crl.revoked_at(&id("c1")), Some(Timestamp(50)));
    }

    #[test]
    fn reinstate() {
        let mut crl = RevocationList::new();
        crl.revoke(id("c1"), Timestamp(1));
        assert!(crl.reinstate(&id("c1")));
        assert!(!crl.is_revoked(&id("c1")));
        assert!(!crl.reinstate(&id("c1")));
    }

    #[test]
    fn merge_takes_earliest() {
        let mut a = RevocationList::new();
        a.revoke(id("c1"), Timestamp(10));
        let mut b = RevocationList::new();
        b.revoke(id("c1"), Timestamp(5));
        b.revoke(id("c2"), Timestamp(7));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.revoked_at(&id("c1")), Some(Timestamp(5)));
        assert_eq!(a.revoked_at(&id("c2")), Some(Timestamp(7)));
    }
}
