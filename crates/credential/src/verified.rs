//! The cross-negotiation verified-credential cache.
//!
//! Credential signature checking dominates the join-with-TN overhead
//! (Fig. 9), and the *same* credentials get re-verified across
//! negotiations: every admission re-discloses the same issuer-signed
//! certificates, chain links repeat across parties, and the operation
//! phase re-checks certifications on renewal. A signature check is a pure
//! function of `(credential content, issuer key, signature)` — so its
//! *successful* outcome can be memoized process-wide.
//!
//! # Soundness
//!
//! Only **signature validity** is cached, keyed by a collision-resistant
//! fingerprint of the full signed content plus the issuer key and the
//! signature bits. Everything time- or state-dependent — the validity
//! window and the revocation check — is *never* cached; callers
//! ([`crate::credential::Credential::verify`], chains, the negotiation
//! engine's `verify_disclosure`) still evaluate those on every call. A
//! revocation that lands after a cache hit is therefore still caught, and
//! a hit can never change a verification *result*, only its cost. Failed
//! checks are never inserted: a forged credential pays full price every
//! time and can never poison the cache.
//!
//! One probabilistic caveat: chain verification inserts links whose
//! signatures were accepted *as a batch* (see
//! [`crate::chain::verify_chain`]), so the batch test's ~2⁻³² per-item
//! false-accept bound persists for the process lifetime instead of one
//! call. Since the Fiat–Shamir coefficients are outside the attacker's
//! control, 2⁻³² already bounds the attack end-to-end; the cache changes
//! how long a freak acceptance would live, not how likely it is.
//!
//! The cache is sharded (16 ways) and capacity-bounded with per-shard
//! FIFO eviction; `credcache.*` counters (hits / misses / insertions /
//! evictions) are always-on [`trust_vo_obs::Counter`]s that bench
//! binaries export at dump time. The process-wide instance
//! ([`VerifiedCache::global`]) honours the `TRUST_VO_CRED_CACHE`
//! environment variable (`0` / `off` / `false` / `no` disables it) so CI
//! can prove results are bit-identical with the cache on and off.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{LazyLock, Mutex};
use trust_vo_crypto::{Digest, PublicKey, Signature};
use trust_vo_obs::Counter;

/// Cache key: what a successful signature check is a pure function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifiedKey {
    fingerprint: Digest,
    issuer_key: u64,
    sig: (u64, u64),
}

impl VerifiedKey {
    /// Build a key from a content fingerprint, the issuer key, and the
    /// signature. The fingerprint must cover *every* signed field (the
    /// credential formats each prepend a domain-separation tag so keys
    /// never collide across formats).
    pub fn new(fingerprint: Digest, issuer: PublicKey, sig: Signature) -> Self {
        VerifiedKey {
            fingerprint,
            issuer_key: issuer.0,
            sig: (sig.r, sig.s),
        }
    }

    /// Shard selector: the fingerprint is already uniform.
    fn shard(&self, shards: usize) -> usize {
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.fingerprint[..8]);
        (u64::from_be_bytes(w) ^ self.issuer_key) as usize % shards
    }
}

#[derive(Debug, Default)]
struct Shard {
    set: HashSet<VerifiedKey>,
    order: VecDeque<VerifiedKey>,
}

/// Point-in-time `credcache.*` counter totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifiedCacheStats {
    /// Signature checks answered from the cache.
    pub hits: u64,
    /// Signature checks that had to run the real verification.
    pub misses: u64,
    /// Successful checks inserted.
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl VerifiedCacheStats {
    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, capacity-bounded memo of *successful* signature checks.
#[derive(Debug)]
pub struct VerifiedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    enabled: AtomicBool,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

/// Shards in the global cache.
const GLOBAL_SHARDS: usize = 16;
/// Per-shard capacity of the global cache: 16 × 2048 = 32768 credentials,
/// ~3 MiB worst case — far beyond any scenario in the workspace, small
/// enough to never matter.
const GLOBAL_PER_SHARD: usize = 2048;

static GLOBAL: LazyLock<VerifiedCache> = LazyLock::new(|| {
    let cache = VerifiedCache::new(GLOBAL_SHARDS, GLOBAL_PER_SHARD);
    if let Ok(v) = std::env::var("TRUST_VO_CRED_CACHE") {
        if matches!(
            v.to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ) {
            cache.set_enabled(false);
        }
    }
    cache
});

impl VerifiedCache {
    /// A new enabled cache with `shards` shards of `per_shard_capacity`
    /// entries each.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        VerifiedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: per_shard_capacity.max(1),
            enabled: AtomicBool::new(true),
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// The process-wide cache every credential format verifies through.
    /// Disabled at first use when `TRUST_VO_CRED_CACHE` is `0`/`off`/
    /// `false`/`no`.
    pub fn global() -> &'static VerifiedCache {
        &GLOBAL
    }

    /// Toggle the cache. Disabled, every lookup misses silently (no
    /// counter movement) and inserts are dropped — verification results
    /// are identical either way, only the cost changes.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is the cache currently enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Was this exact (content, issuer, signature) triple verified
    /// successfully before? Counts a hit or a miss when enabled.
    pub fn check(&self, key: &VerifiedKey) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let shard = &self.shards[key.shard(self.shards.len())];
        let hit = shard.lock().expect("credcache lock").set.contains(key);
        if hit {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        hit
    }

    /// Record a *successful* verification. Callers must never insert a
    /// key whose verification failed.
    pub fn insert(&self, key: VerifiedKey) {
        if !self.is_enabled() {
            return;
        }
        let shard = &self.shards[key.shard(self.shards.len())];
        let mut guard = shard.lock().expect("credcache lock");
        if !guard.set.insert(key) {
            return; // racing verifier got there first
        }
        guard.order.push_back(key);
        if guard.order.len() > self.per_shard_capacity {
            if let Some(old) = guard.order.pop_front() {
                guard.set.remove(&old);
                self.evictions.inc();
            }
        }
        self.insertions.inc();
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("credcache lock").set.len())
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counter totals.
    pub fn stats(&self) -> VerifiedCacheStats {
        VerifiedCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8) -> VerifiedKey {
        let mut fp = [0u8; 32];
        fp[0] = tag;
        fp[9] = tag.wrapping_mul(31);
        VerifiedKey::new(fp, PublicKey(u64::from(tag) + 7), Signature { r: 9, s: 4 })
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let cache = VerifiedCache::new(4, 8);
        let k = key(1);
        assert!(!cache.check(&k));
        cache.insert(k);
        assert!(cache.check(&k));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_signatures_are_distinct_entries() {
        let cache = VerifiedCache::new(4, 8);
        let a = key(1);
        let b = VerifiedKey::new([1u8; 32], PublicKey(8), Signature { r: 9, s: 5 });
        cache.insert(a);
        assert!(!cache.check(&b));
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let cache = VerifiedCache::new(1, 3);
        for t in 1..=4 {
            cache.insert(key(t));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 1);
        assert!(!cache.check(&key(1)), "oldest entry evicted");
        assert!(cache.check(&key(4)));
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = VerifiedCache::new(2, 8);
        cache.set_enabled(false);
        let k = key(3);
        cache.insert(k);
        assert!(!cache.check(&k));
        assert_eq!(cache.stats(), VerifiedCacheStats::default());
        assert!(cache.is_empty());
        cache.set_enabled(true);
        cache.insert(k);
        assert!(cache.check(&k));
    }

    #[test]
    fn duplicate_insert_counts_once() {
        let cache = VerifiedCache::new(2, 8);
        cache.insert(key(5));
        cache.insert(key(5));
        assert_eq!(cache.stats().insertions, 1);
        assert_eq!(cache.len(), 1);
    }
}
