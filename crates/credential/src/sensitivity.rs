//! Credential sensitivity labels.
//!
//! Algorithm 1 in the paper assumes "sensitivity is … represented by means
//! of a label associated with each credential … the label takes values from
//! the set {low, medium, high}", and the `CredCluster` function groups a
//! party's credentials by label so the least-sensitive satisfying
//! credential is disclosed first.

/// A privacy label attached to a credential in a party's X-Profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Sensitivity {
    /// Freely disclosable.
    #[default]
    Low,
    /// Disclose only when a lower-sensitivity alternative is unavailable.
    Medium,
    /// Disclose last.
    High,
}

impl Sensitivity {
    /// All levels, least sensitive first — the probe order of Algorithm 1.
    pub const ALL: [Sensitivity; 3] = [Sensitivity::Low, Sensitivity::Medium, Sensitivity::High];

    /// Parse from the paper's lowercase label form.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "low" => Some(Sensitivity::Low),
            "medium" | "med" => Some(Sensitivity::Medium),
            "high" => Some(Sensitivity::High),
            _ => None,
        }
    }

    /// The lowercase label form.
    pub fn label(self) -> &'static str {
        match self {
            Sensitivity::Low => "low",
            Sensitivity::Medium => "medium",
            Sensitivity::High => "high",
        }
    }
}

impl std::fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_low_to_high() {
        assert!(Sensitivity::Low < Sensitivity::Medium);
        assert!(Sensitivity::Medium < Sensitivity::High);
        assert_eq!(Sensitivity::ALL.to_vec(), {
            let mut v = Sensitivity::ALL.to_vec();
            v.sort();
            v
        });
    }

    #[test]
    fn parse_and_label_roundtrip() {
        for s in Sensitivity::ALL {
            assert_eq!(Sensitivity::parse(s.label()), Some(s));
        }
        assert_eq!(Sensitivity::parse("med"), Some(Sensitivity::Medium));
        assert_eq!(Sensitivity::parse("HIGH"), None);
        assert_eq!(Sensitivity::parse(""), None);
    }

    #[test]
    fn default_is_low() {
        assert_eq!(Sensitivity::default(), Sensitivity::Low);
    }
}

/// Automatic sensitivity labeling.
///
/// The paper assumes the label "can be determined efficiently in an
/// automated fashion" (§4.3.1). This heuristic classifies a credential by
/// its type and attribute names: financial/medical/internal markers are
/// **high**, identity/affiliation markers are **medium**, everything else
/// (public certifications, SLAs) is **low**.
pub fn auto_label(
    cred_type: &str,
    attribute_names: impl Iterator<Item = impl AsRef<str>>,
) -> Sensitivity {
    const HIGH_MARKERS: [&str; 10] = [
        "balance", "salary", "income", "financ", "medical", "health", "internal", "risk",
        "revenue", "tax",
    ];
    const MEDIUM_MARKERS: [&str; 8] = [
        "passport", "license", "identity", "ssn", "birth", "address", "member", "employee",
    ];
    let mut tokens: Vec<String> = vec![cred_type.to_lowercase()];
    tokens.extend(attribute_names.map(|a| a.as_ref().to_lowercase()));
    if tokens
        .iter()
        .any(|t| HIGH_MARKERS.iter().any(|m| t.contains(m)))
    {
        Sensitivity::High
    } else if tokens
        .iter()
        .any(|t| MEDIUM_MARKERS.iter().any(|m| t.contains(m)))
    {
        Sensitivity::Medium
    } else {
        Sensitivity::Low
    }
}

#[cfg(test)]
mod auto_tests {
    use super::*;

    #[test]
    fn financial_credentials_are_high() {
        assert_eq!(
            auto_label("BalanceSheet", std::iter::empty::<&str>()),
            Sensitivity::High
        );
        assert_eq!(
            auto_label("EmploymentRecord", ["Salary"].into_iter()),
            Sensitivity::High
        );
        assert_eq!(
            auto_label("InternalAudit", std::iter::empty::<&str>()),
            Sensitivity::High
        );
    }

    #[test]
    fn identity_credentials_are_medium() {
        assert_eq!(
            auto_label("Passport", std::iter::empty::<&str>()),
            Sensitivity::Medium
        );
        assert_eq!(
            auto_label("DrivingLicense", ["sex"].into_iter()),
            Sensitivity::Medium
        );
        assert_eq!(
            auto_label("AAAMember", std::iter::empty::<&str>()),
            Sensitivity::Medium
        );
    }

    #[test]
    fn public_certifications_are_low() {
        assert_eq!(
            auto_label("ISO9000Certified", ["QualityRegulation"].into_iter()),
            Sensitivity::Low
        );
        assert_eq!(
            auto_label("HpcSla", ["Availability"].into_iter()),
            Sensitivity::Low
        );
    }

    #[test]
    fn high_wins_over_medium() {
        // A credential with both identity and financial markers is high.
        assert_eq!(
            auto_label("EmployeeRecord", ["Salary", "Address"].into_iter()),
            Sensitivity::High
        );
    }
}
