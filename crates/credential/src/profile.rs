//! X-Profiles: a party's credential portfolio.
//!
//! "All credentials associated with a party are collected into a unique XML
//! document, referred to as X-Profile" (§4.1). The profile also carries the
//! per-credential sensitivity labels Algorithm 1 clusters on, and the
//! `cred_cluster` operation itself (the paper's `CredCluster` function).

use crate::credential::{Credential, CredentialId};
use crate::sensitivity::Sensitivity;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use trust_vo_xmldoc::{Element, Node};

/// Process-unique profile identities (see [`XProfile::cache_id`]).
static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(1);

/// A party's X-Profile: its credentials plus sensitivity labels.
#[derive(Debug)]
pub struct XProfile {
    /// The owning party's display name.
    pub owner: String,
    credentials: Vec<Credential>,
    sensitivity: HashMap<CredentialId, Sensitivity>,
    /// Process-unique identity for memo keying; fresh per clone.
    cache_id: u64,
    /// Mutation counter; bumped whenever the credential set changes.
    generation: u64,
}

impl Default for XProfile {
    fn default() -> Self {
        XProfile {
            owner: String::new(),
            credentials: Vec::new(),
            sensitivity: HashMap::new(),
            cache_id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            generation: 0,
        }
    }
}

impl Clone for XProfile {
    fn clone(&self) -> Self {
        XProfile {
            owner: self.owner.clone(),
            credentials: self.credentials.clone(),
            sensitivity: self.sensitivity.clone(),
            // A fresh id: clones that later diverge must never alias in
            // caches keyed on `(cache_id, generation)`.
            cache_id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            generation: self.generation,
        }
    }
}

impl XProfile {
    /// Create an empty profile for `owner`.
    pub fn new(owner: impl Into<String>) -> Self {
        XProfile {
            owner: owner.into(),
            ..Default::default()
        }
    }

    /// Add a credential with an explicit sensitivity label.
    pub fn add_with_sensitivity(&mut self, cred: Credential, label: Sensitivity) {
        self.sensitivity.insert(cred.id().clone(), label);
        self.credentials.push(cred);
        self.generation += 1;
    }

    /// Add a credential with the default (low) sensitivity.
    pub fn add(&mut self, cred: Credential) {
        self.add_with_sensitivity(cred, Sensitivity::Low);
    }

    /// Remove a credential (e.g. when it expires and is re-issued).
    pub fn remove(&mut self, id: &CredentialId) -> Option<Credential> {
        let idx = self.credentials.iter().position(|c| c.id() == id)?;
        self.sensitivity.remove(id);
        self.generation += 1;
        Some(self.credentials.remove(idx))
    }

    /// The process-unique identity of this instance (fresh per clone),
    /// used with [`XProfile::generation`] to key caches on the profile's
    /// exact content state.
    pub fn cache_id(&self) -> u64 {
        self.cache_id
    }

    /// The mutation counter: bumped whenever the credential set changes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// All credentials.
    pub fn credentials(&self) -> &[Credential] {
        &self.credentials
    }

    /// Number of credentials held.
    pub fn len(&self) -> usize {
        self.credentials.len()
    }

    /// True when no credentials are held.
    pub fn is_empty(&self) -> bool {
        self.credentials.is_empty()
    }

    /// The sensitivity label of a credential (default low).
    pub fn sensitivity_of(&self, id: &CredentialId) -> Sensitivity {
        self.sensitivity.get(id).copied().unwrap_or_default()
    }

    /// All credentials of a given type.
    pub fn of_type<'a>(&'a self, cred_type: &'a str) -> impl Iterator<Item = &'a Credential> + 'a {
        self.credentials
            .iter()
            .filter(move |c| c.cred_type() == cred_type)
    }

    /// Does the profile hold at least one credential of this type?
    pub fn holds_type(&self, cred_type: &str) -> bool {
        self.of_type(cred_type).next().is_some()
    }

    /// Look up a credential by id.
    pub fn get(&self, id: &CredentialId) -> Option<&Credential> {
        self.credentials.iter().find(|c| c.id() == id)
    }

    /// The paper's `CredCluster`: among `candidates` (credential ids assumed
    /// to be in this profile), the subset whose sensitivity equals `level`.
    pub fn cred_cluster<'a>(
        &'a self,
        candidates: &'a [CredentialId],
        level: Sensitivity,
    ) -> impl Iterator<Item = &'a Credential> + 'a {
        candidates
            .iter()
            .filter(move |id| self.sensitivity_of(id) == level)
            .filter_map(|id| self.get(id))
    }

    /// Serialize the whole profile as the single XML document the paper
    /// describes.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("X-Profile").attr("owner", &self.owner);
        for cred in &self.credentials {
            let mut el = cred.to_xml();
            el.set_attr("sensitivity", self.sensitivity_of(cred.id()).label());
            root.children.push(Node::Element(el));
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::authority::CredentialAuthority;
    use crate::time::{TimeRange, Timestamp};
    use trust_vo_crypto::KeyPair;

    fn build_profile() -> (XProfile, Vec<CredentialId>) {
        let mut ca = CredentialAuthority::new("INFN");
        let subject = KeyPair::from_seed(b"aerospace");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut profile = XProfile::new("Aerospace Company");
        let mut ids = Vec::new();
        for (ty, label) in [
            ("ISO9000Certified", Sensitivity::Low),
            ("BalanceSheet", Sensitivity::High),
            ("AAAMember", Sensitivity::Medium),
            ("ISO9000Certified", Sensitivity::Medium),
        ] {
            let cred = ca
                .issue(
                    ty,
                    "Aerospace Company",
                    subject.public,
                    vec![Attribute::new("k", "v")],
                    window,
                )
                .unwrap();
            ids.push(cred.id().clone());
            profile.add_with_sensitivity(cred, label);
        }
        (profile, ids)
    }

    #[test]
    fn type_queries() {
        let (profile, _) = build_profile();
        assert_eq!(profile.len(), 4);
        assert_eq!(profile.of_type("ISO9000Certified").count(), 2);
        assert!(profile.holds_type("BalanceSheet"));
        assert!(!profile.holds_type("Nonexistent"));
    }

    #[test]
    fn sensitivity_lookup_defaults_low() {
        let (profile, ids) = build_profile();
        assert_eq!(profile.sensitivity_of(&ids[1]), Sensitivity::High);
        assert_eq!(
            profile.sensitivity_of(&CredentialId("missing".into())),
            Sensitivity::Low
        );
    }

    #[test]
    fn cred_cluster_filters_by_level() {
        let (profile, ids) = build_profile();
        let low: Vec<_> = profile.cred_cluster(&ids, Sensitivity::Low).collect();
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].id(), &ids[0]);
        let med: Vec<_> = profile.cred_cluster(&ids, Sensitivity::Medium).collect();
        assert_eq!(med.len(), 2);
        let high: Vec<_> = profile.cred_cluster(&ids, Sensitivity::High).collect();
        assert_eq!(high.len(), 1);
    }

    #[test]
    fn remove_credential() {
        let (mut profile, ids) = build_profile();
        assert!(profile.remove(&ids[0]).is_some());
        assert_eq!(profile.len(), 3);
        assert!(profile.remove(&ids[0]).is_none());
    }

    #[test]
    fn profile_xml_contains_all_credentials() {
        let (profile, _) = build_profile();
        let xml = profile.to_xml();
        assert_eq!(xml.name, "X-Profile");
        assert_eq!(xml.get_attr("owner"), Some("Aerospace Company"));
        assert_eq!(xml.all("credential").count(), 4);
        // Sensitivity labels serialized on each credential element.
        let labels: Vec<_> = xml
            .all("credential")
            .filter_map(|c| c.get_attr("sensitivity").map(str::to_owned))
            .collect();
        assert_eq!(labels.len(), 4);
        assert!(labels.contains(&"high".to_owned()));
    }
}

impl XProfile {
    /// Add a credential with an automatically determined sensitivity label
    /// (the §4.3.1 "automated fashion").
    pub fn add_auto(&mut self, cred: crate::credential::Credential) {
        let label = crate::sensitivity::auto_label(
            cred.cred_type(),
            cred.content.iter().map(|a| a.name.as_str()),
        );
        self.add_with_sensitivity(cred, label);
    }
}

#[cfg(test)]
mod auto_label_tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::authority::CredentialAuthority;
    use crate::time::{TimeRange, Timestamp};
    use trust_vo_crypto::KeyPair;

    #[test]
    fn add_auto_assigns_heuristic_labels() {
        let mut ca = CredentialAuthority::new("CA");
        let keys = KeyPair::from_seed(b"h");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut profile = XProfile::new("h");
        let sheet = ca
            .issue(
                "BalanceSheet",
                "h",
                keys.public,
                vec![Attribute::new("Year", 2009i64)],
                window,
            )
            .unwrap();
        let sheet_id = sheet.id().clone();
        profile.add_auto(sheet);
        let sla = ca
            .issue("HpcSla", "h", keys.public, vec![], window)
            .unwrap();
        let sla_id = sla.id().clone();
        profile.add_auto(sla);
        assert_eq!(profile.sensitivity_of(&sheet_id), Sensitivity::High);
        assert_eq!(profile.sensitivity_of(&sla_id), Sensitivity::Low);
    }
}
