//! Reproducible timestamps and validity windows.
//!
//! Credentials carry validity dates (the paper's Example 1 credential is
//! valid "from the 2009-10-26T21:32:52 to the 2010-10-26T21:32:52"). To keep
//! the whole system deterministic — negotiations, benches, and tests never
//! consult the wall clock — time is represented as seconds relative to the
//! Unix epoch and *supplied by the caller* (usually the simulation clock in
//! `trust-vo-soa`).

/// A point in time: seconds since 1970-01-01T00:00:00 (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Construct from a civil date and time (UTC).
    ///
    /// Uses Howard Hinnant's `days_from_civil` algorithm, exact over the
    /// whole proleptic Gregorian calendar.
    pub fn from_ymd_hms(year: i64, month: u8, day: u8, hour: u8, min: u8, sec: u8) -> Self {
        let y = if month <= 2 { year - 1 } else { year };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(month);
        let d = i64::from(day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        let days = era * 146_097 + doe - 719_468;
        Timestamp(days * 86_400 + i64::from(hour) * 3_600 + i64::from(min) * 60 + i64::from(sec))
    }

    /// Decompose into `(year, month, day, hour, minute, second)`.
    pub fn to_ymd_hms(self) -> (i64, u8, u8, u8, u8, u8) {
        let secs = self.0.rem_euclid(86_400);
        let days = (self.0 - secs) / 86_400;
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        let year = if m <= 2 { y + 1 } else { y };
        (
            year,
            m as u8,
            d as u8,
            (secs / 3_600) as u8,
            ((secs % 3_600) / 60) as u8,
            (secs % 60) as u8,
        )
    }

    /// Parse an ISO-8601 `YYYY-MM-DDTHH:MM:SS` string (the format the
    /// paper's credentials use in `<expiration_Date>` elements).
    pub fn parse_iso(text: &str) -> Option<Self> {
        let bytes = text.as_bytes();
        if bytes.len() != 19
            || bytes[4] != b'-'
            || bytes[7] != b'-'
            || bytes[10] != b'T'
            || bytes[13] != b':'
            || bytes[16] != b':'
        {
            return None;
        }
        let year: i64 = text[0..4].parse().ok()?;
        let month: u8 = text[5..7].parse().ok()?;
        let day: u8 = text[8..10].parse().ok()?;
        let hour: u8 = text[11..13].parse().ok()?;
        let min: u8 = text[14..16].parse().ok()?;
        let sec: u8 = text[17..19].parse().ok()?;
        if !(1..=12).contains(&month)
            || !(1..=days_in_month(year, month)).contains(&day)
            || hour > 23
            || min > 59
            || sec > 59
        {
            return None;
        }
        Some(Self::from_ymd_hms(year, month, day, hour, min, sec))
    }

    /// Format as ISO-8601 `YYYY-MM-DDTHH:MM:SS`.
    pub fn to_iso(self) -> String {
        let (y, mo, d, h, mi, s) = self.to_ymd_hms();
        format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}")
    }

    /// Shift by whole seconds.
    #[must_use]
    pub fn plus_seconds(self, secs: i64) -> Self {
        Timestamp(self.0 + secs)
    }

    /// Shift by whole days.
    #[must_use]
    pub fn plus_days(self, days: i64) -> Self {
        self.plus_seconds(days * 86_400)
    }
}

/// Days in `month` of `year`, proleptic Gregorian (leap-year aware).
fn days_in_month(year: i64, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
            if leap {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_iso())
    }
}

/// A half-open-at-neither-end validity window `[not_before, not_after]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// First instant at which the credential is valid.
    pub not_before: Timestamp,
    /// Last instant at which the credential is valid.
    pub not_after: Timestamp,
}

impl TimeRange {
    /// Build a range; panics if inverted (a programming error in scenario setup).
    pub fn new(not_before: Timestamp, not_after: Timestamp) -> Self {
        assert!(not_before <= not_after, "inverted validity range");
        TimeRange {
            not_before,
            not_after,
        }
    }

    /// A one-year window starting at `from` (the paper's running example).
    pub fn one_year_from(from: Timestamp) -> Self {
        Self::new(from, from.plus_days(365))
    }

    /// Is `at` inside the window?
    pub fn contains(&self, at: Timestamp) -> bool {
        self.not_before <= at && at <= self.not_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0).0, 0);
    }

    #[test]
    fn paper_example_dates() {
        // The Example 1 credential validity window.
        let from = Timestamp::parse_iso("2009-10-26T21:32:52").unwrap();
        let to = Timestamp::parse_iso("2010-10-26T21:32:52").unwrap();
        assert!(from < to);
        assert_eq!(from.to_iso(), "2009-10-26T21:32:52");
        assert_eq!(to.to_iso(), "2010-10-26T21:32:52");
        assert_eq!(to.0 - from.0, 365 * 86_400);
    }

    #[test]
    fn leap_year_handling() {
        let feb29 = Timestamp::from_ymd_hms(2008, 2, 29, 12, 0, 0);
        assert_eq!(feb29.to_iso(), "2008-02-29T12:00:00");
        // 2008-02-28 + 1 day == 2008-02-29
        let feb28 = Timestamp::from_ymd_hms(2008, 2, 28, 12, 0, 0);
        assert_eq!(feb28.plus_days(1), feb29);
        // Non-leap year: 2009-02-28 + 1 day == 2009-03-01
        assert_eq!(
            Timestamp::from_ymd_hms(2009, 2, 28, 0, 0, 0)
                .plus_days(1)
                .to_iso(),
            "2009-03-01T00:00:00"
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "2009-10-26",
            "2009/10/26T21:32:52",
            "2009-13-26T21:32:52",
            "2009-10-26T25:32:52",
            "2009-10-26T21:61:52",
            "garbage!!!!!!!!!!!!",
            "",
        ] {
            assert!(Timestamp::parse_iso(bad).is_none(), "{bad}");
        }
    }

    #[test]
    fn parse_rejects_calendar_invalid_days() {
        // Regression: the seed's flat 1..=31 day check accepted Feb 30,
        // which silently normalized to Mar 2 via days_from_civil.
        for bad in [
            "2009-02-30T00:00:00",
            "2009-02-29T00:00:00", // 2009 is not a leap year
            "2100-02-29T00:00:00", // century non-leap
            "2009-04-31T00:00:00",
            "2009-06-31T12:30:00",
            "2009-09-31T00:00:00",
            "2009-11-31T00:00:00",
            "2009-01-32T00:00:00",
            "2009-01-00T00:00:00",
        ] {
            assert!(Timestamp::parse_iso(bad).is_none(), "{bad}");
        }
        // Valid calendar boundaries still parse.
        for good in [
            "2008-02-29T00:00:00", // leap year
            "2000-02-29T00:00:00", // 400-year leap
            "2009-01-31T23:59:59",
            "2009-04-30T00:00:00",
            "2009-12-31T23:59:59",
        ] {
            let t = Timestamp::parse_iso(good).expect(good);
            assert_eq!(t.to_iso(), good);
        }
    }

    #[test]
    fn range_contains() {
        let r = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 10, 26, 0, 0, 0));
        assert!(r.contains(Timestamp::from_ymd_hms(2010, 1, 1, 0, 0, 0)));
        assert!(r.contains(r.not_before));
        assert!(r.contains(r.not_after));
        assert!(!r.contains(r.not_before.plus_seconds(-1)));
        assert!(!r.contains(r.not_after.plus_seconds(1)));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        TimeRange::new(Timestamp(10), Timestamp(5));
    }

    proptest! {
        #[test]
        fn ymd_roundtrip(secs in -30_000_000_000i64..30_000_000_000i64) {
            let t = Timestamp(secs);
            let (y, mo, d, h, mi, s) = t.to_ymd_hms();
            prop_assert_eq!(Timestamp::from_ymd_hms(y, mo, d, h, mi, s), t);
        }

        #[test]
        fn iso_roundtrip(secs in 0i64..10_000_000_000i64) {
            let t = Timestamp(secs);
            prop_assert_eq!(Timestamp::parse_iso(&t.to_iso()), Some(t));
        }

        #[test]
        fn parse_accepts_iff_calendar_valid(
            year in 1i64..9999,
            month in 0u8..15,
            day in 0u8..35,
        ) {
            let text = format!("{year:04}-{month:02}-{day:02}T12:00:00");
            let valid = (1..=12).contains(&month)
                && (1..=days_in_month(year, month)).contains(&day);
            let parsed = Timestamp::parse_iso(&text);
            prop_assert_eq!(parsed.is_some(), valid, "{}", text);
            if let Some(t) = parsed {
                // A valid date must round-trip to the same civil form —
                // the seed's Feb-30 bug normalized instead.
                prop_assert_eq!(t.to_iso(), text);
            }
        }
    }
}
