//! X.509 v2-style attribute certificates.
//!
//! The VO Management toolkit "supports X.509 identity credentials to
//! identify the VO members during the VO operational phase", and the
//! integration upgraded the TN web service "to support both our XML
//! proprietary format and the X.509 v2 format for attribute certificates"
//! (§6.3). The VO membership credential issued at the end of a successful
//! formation negotiation "is an X509 credential … the membership token
//! contains the public key of the VO".
//!
//! This module models the attribute-certificate profile with a
//! deterministic TLV (tag-length-value) encoding standing in for DER: the
//! semantics the workspace needs — canonical bytes to sign, holder/issuer
//! binding, validity, attribute list — are identical.

use crate::error::CredentialError;
use crate::revocation::RevocationList;
use crate::time::{TimeRange, Timestamp};
use crate::verified::{VerifiedCache, VerifiedKey};
use trust_vo_crypto::sha256::Sha256;
use trust_vo_crypto::{KeyPair, PublicKey, Signature};

/// Field tags for the TLV encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Tag {
    Serial = 1,
    Holder = 2,
    HolderKey = 3,
    Issuer = 4,
    IssuerKey = 5,
    NotBefore = 6,
    NotAfter = 7,
    AttrName = 8,
    AttrValue = 9,
}

/// An X.509 v2-style attribute certificate.
///
/// Attributes are name/value pairs **in the clear** — which is exactly why
/// the paper notes that only the *standard* and *trusting* negotiation
/// strategies can be used with this format (§6.3); see
/// [`crate::selective`] for the hash-commitment extension that lifts that
/// restriction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeCertificate {
    /// Serial number unique per issuer.
    pub serial: u64,
    /// Holder display name.
    pub holder: String,
    /// Holder public key (binds the certificate to a key holder).
    pub holder_key: PublicKey,
    /// Issuer display name.
    pub issuer: String,
    /// Issuer verification key.
    pub issuer_key: PublicKey,
    /// Validity window.
    pub validity: TimeRange,
    /// Attributes in the clear, e.g. `("role", "DesignPartnerWebPortal")`.
    pub attributes: Vec<(String, String)>,
    /// Issuer signature over the TLV encoding of all other fields.
    pub signature: Signature,
}

fn push_tlv(out: &mut Vec<u8>, tag: Tag, payload: &[u8]) {
    out.push(tag as u8);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// The canonical to-be-signed bytes.
pub fn tbs_bytes(
    serial: u64,
    holder: &str,
    holder_key: PublicKey,
    issuer: &str,
    issuer_key: PublicKey,
    validity: TimeRange,
    attributes: &[(String, String)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(96 + attributes.len() * 32);
    push_tlv(&mut out, Tag::Serial, &serial.to_be_bytes());
    push_tlv(&mut out, Tag::Holder, holder.as_bytes());
    push_tlv(&mut out, Tag::HolderKey, &holder_key.0.to_be_bytes());
    push_tlv(&mut out, Tag::Issuer, issuer.as_bytes());
    push_tlv(&mut out, Tag::IssuerKey, &issuer_key.0.to_be_bytes());
    push_tlv(
        &mut out,
        Tag::NotBefore,
        &validity.not_before.0.to_be_bytes(),
    );
    push_tlv(&mut out, Tag::NotAfter, &validity.not_after.0.to_be_bytes());
    for (name, value) in attributes {
        push_tlv(&mut out, Tag::AttrName, name.as_bytes());
        push_tlv(&mut out, Tag::AttrValue, value.as_bytes());
    }
    out
}

impl AttributeCertificate {
    /// Issue (sign) a new attribute certificate.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        serial: u64,
        holder: impl Into<String>,
        holder_key: PublicKey,
        issuer: impl Into<String>,
        issuer_keys: &KeyPair,
        validity: TimeRange,
        attributes: Vec<(String, String)>,
    ) -> Self {
        let holder = holder.into();
        let issuer = issuer.into();
        let tbs = tbs_bytes(
            serial,
            &holder,
            holder_key,
            &issuer,
            issuer_keys.public,
            validity,
            &attributes,
        );
        let signature = issuer_keys.sign(&tbs);
        AttributeCertificate {
            serial,
            holder,
            holder_key,
            issuer,
            issuer_key: issuer_keys.public,
            validity,
            attributes,
            signature,
        }
    }

    /// A stable identifier for revocation purposes: `issuer/serial`.
    pub fn revocation_id(&self) -> crate::credential::CredentialId {
        crate::credential::CredentialId(format!("x509:{}:{}", self.issuer, self.serial))
    }

    /// Look up an attribute value.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The canonical to-be-signed bytes of this certificate.
    pub fn tbs(&self) -> Vec<u8> {
        tbs_bytes(
            self.serial,
            &self.holder,
            self.holder_key,
            &self.issuer,
            self.issuer_key,
            self.validity,
            &self.attributes,
        )
    }

    /// The [`VerifiedCache`] key for this certificate's signature check:
    /// a domain-tagged digest of the TLV to-be-signed bytes (which cover
    /// every field), plus issuer key and signature.
    pub(crate) fn verified_key(&self) -> VerifiedKey {
        let mut h = Sha256::new();
        h.update(&[0x02]); // domain tag: X.509 attribute certificate
        h.update(&self.tbs());
        VerifiedKey::new(h.finalize(), self.issuer_key, self.signature)
    }

    /// Verify the issuer signature only. Successful checks are memoized
    /// in the process-wide [`VerifiedCache`]; failures never are.
    pub fn verify_signature(&self) -> Result<(), CredentialError> {
        let cache = VerifiedCache::global();
        let key = self.verified_key();
        if cache.check(&key) {
            return Ok(());
        }
        if self.issuer_key.verify(&self.tbs(), &self.signature) {
            cache.insert(key);
            Ok(())
        } else {
            Err(CredentialError::BadSignature {
                cred_id: self.revocation_id().0,
            })
        }
    }

    /// Full verification: signature, validity at `at`, and revocation.
    pub fn verify(
        &self,
        at: Timestamp,
        crl: Option<&RevocationList>,
    ) -> Result<(), CredentialError> {
        self.verify_signature()?;
        if !self.validity.contains(at) {
            return Err(CredentialError::Expired {
                cred_id: self.revocation_id().0,
                at,
            });
        }
        if let Some(crl) = crl {
            if crl.is_revoked(&self.revocation_id()) {
                return Err(CredentialError::Revoked {
                    cred_id: self.revocation_id().0,
                });
            }
        }
        Ok(())
    }

    /// Authenticate that the presenter holds the certificate's holder key:
    /// the presenter signs `nonce` with it.
    pub fn authenticate_holder(
        &self,
        nonce: &[u8],
        proof: &Signature,
    ) -> Result<(), CredentialError> {
        if self.holder_key.verify(nonce, proof) {
            Ok(())
        } else {
            Err(CredentialError::NotOwner {
                cred_id: self.revocation_id().0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    fn sample() -> (AttributeCertificate, KeyPair, KeyPair) {
        let issuer = KeyPair::from_seed(b"Aircraft Company");
        let holder = KeyPair::from_seed(b"Aerospace Company");
        let cert = AttributeCertificate::issue(
            7,
            "Aerospace Company",
            holder.public,
            "Aircraft Company",
            &issuer,
            window(),
            vec![
                ("vo".into(), "AircraftOptimization".into()),
                ("role".into(), "DesignPartnerWebPortal".into()),
            ],
        );
        (cert, issuer, holder)
    }

    #[test]
    fn issue_verify_roundtrip() {
        let (cert, _, _) = sample();
        assert!(cert.verify(at(), None).is_ok());
        assert_eq!(cert.attr("role"), Some("DesignPartnerWebPortal"));
        assert_eq!(cert.attr("missing"), None);
    }

    #[test]
    fn tampered_attribute_rejected() {
        let (mut cert, _, _) = sample();
        cert.attributes[1].1 = "Initiator".into();
        assert!(matches!(
            cert.verify_signature(),
            Err(CredentialError::BadSignature { .. })
        ));
    }

    #[test]
    fn tampered_serial_rejected() {
        let (mut cert, _, _) = sample();
        cert.serial = 8;
        assert!(cert.verify_signature().is_err());
    }

    #[test]
    fn tlv_is_injective_across_field_moves() {
        // ("ab","c") vs ("a","bc") must encode differently — length prefixes
        // prevent concatenation ambiguity.
        let k = KeyPair::from_seed(b"k");
        let a = tbs_bytes(
            1,
            "h",
            k.public,
            "i",
            k.public,
            window(),
            &[("ab".into(), "c".into())],
        );
        let b = tbs_bytes(
            1,
            "h",
            k.public,
            "i",
            k.public,
            window(),
            &[("a".into(), "bc".into())],
        );
        assert_ne!(a, b);
    }

    #[test]
    fn expiry_and_revocation() {
        let (cert, _, _) = sample();
        let late = window().not_after.plus_days(1);
        assert!(matches!(
            cert.verify(late, None),
            Err(CredentialError::Expired { .. })
        ));
        let mut crl = RevocationList::new();
        crl.revoke(cert.revocation_id(), at());
        assert!(matches!(
            cert.verify(at(), Some(&crl)),
            Err(CredentialError::Revoked { .. })
        ));
    }

    #[test]
    fn holder_authentication() {
        let (cert, _, holder) = sample();
        let proof = holder.sign(b"nonce");
        assert!(cert.authenticate_holder(b"nonce", &proof).is_ok());
        let other = KeyPair::from_seed(b"other");
        assert!(cert
            .authenticate_holder(b"nonce", &other.sign(b"nonce"))
            .is_err());
    }

    #[test]
    fn revocation_id_distinguishes_issuers() {
        let (cert, _, _) = sample();
        let other_issuer = KeyPair::from_seed(b"Other");
        let cert2 = AttributeCertificate::issue(
            7,
            cert.holder.clone(),
            cert.holder_key,
            "Other",
            &other_issuer,
            window(),
            vec![],
        );
        assert_ne!(cert.revocation_id(), cert2.revocation_id());
    }
}
