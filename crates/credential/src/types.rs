//! Credential-type schemas.
//!
//! Trust-X assumes parties "have a common understanding of the type of
//! credentials supported, and know their internal structure" (§4.3). A
//! [`CredentialType`] records that structure: the type name plus the set of
//! attributes a credential of the type may (or must) carry. Authorities
//! validate content against the schema at issuance time.

use crate::attribute::{AttrValue, Attribute};
use crate::error::CredentialError;

/// The kind of an attribute in a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Free text.
    Str,
    /// Integer.
    Int,
    /// Boolean.
    Bool,
    /// Date/time.
    Date,
}

impl AttrKind {
    /// Does `value` have this kind?
    pub fn admits(self, value: &AttrValue) -> bool {
        matches!(
            (self, value),
            (AttrKind::Str, AttrValue::Str(_))
                | (AttrKind::Int, AttrValue::Int(_))
                | (AttrKind::Bool, AttrValue::Bool(_))
                | (AttrKind::Date, AttrValue::Date(_))
        )
    }
}

/// One attribute slot in a credential-type schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Expected value kind.
    pub kind: AttrKind,
    /// Whether issuance fails if the attribute is missing.
    pub required: bool,
}

/// A credential type: a name plus an attribute schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CredentialType {
    /// The type name, e.g. `ISO9000Certified` or `AAAccreditation`.
    pub name: String,
    /// The attribute slots. Empty means "any attributes allowed".
    pub attrs: Vec<AttrSpec>,
}

impl CredentialType {
    /// A schema-less type that accepts any content.
    pub fn open(name: impl Into<String>) -> Self {
        CredentialType {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// Start building a typed schema.
    pub fn new(name: impl Into<String>) -> Self {
        Self::open(name)
    }

    /// Builder: add a required attribute.
    #[must_use]
    pub fn required(mut self, name: impl Into<String>, kind: AttrKind) -> Self {
        self.attrs.push(AttrSpec {
            name: name.into(),
            kind,
            required: true,
        });
        self
    }

    /// Builder: add an optional attribute.
    #[must_use]
    pub fn optional(mut self, name: impl Into<String>, kind: AttrKind) -> Self {
        self.attrs.push(AttrSpec {
            name: name.into(),
            kind,
            required: false,
        });
        self
    }

    /// Validate credential content against this schema.
    ///
    /// Schema-less (open) types accept anything. Typed schemas require every
    /// required slot to be present with the right kind, and reject unknown
    /// or wrongly-typed attributes.
    pub fn validate(&self, content: &[Attribute]) -> Result<(), CredentialError> {
        if self.attrs.is_empty() {
            return Ok(());
        }
        for spec in &self.attrs {
            match content.iter().find(|a| a.name == spec.name) {
                Some(attr) if !spec.kind.admits(&attr.value) => {
                    return Err(CredentialError::SchemaViolation {
                        cred_type: self.name.clone(),
                        detail: format!(
                            "attribute '{}' has the wrong kind (expected {:?})",
                            spec.name, spec.kind
                        ),
                    });
                }
                None if spec.required => {
                    return Err(CredentialError::SchemaViolation {
                        cred_type: self.name.clone(),
                        detail: format!("missing required attribute '{}'", spec.name),
                    });
                }
                _ => {}
            }
        }
        for attr in content {
            if !self.attrs.iter().any(|s| s.name == attr.name) {
                return Err(CredentialError::SchemaViolation {
                    cred_type: self.name.clone(),
                    detail: format!("unknown attribute '{}'", attr.name),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iso_type() -> CredentialType {
        CredentialType::new("ISO9000Certified")
            .required("QualityRegulation", AttrKind::Str)
            .optional("AuditScore", AttrKind::Int)
    }

    #[test]
    fn open_type_accepts_anything() {
        let t = CredentialType::open("Anything");
        assert!(t.validate(&[Attribute::new("x", 1i64)]).is_ok());
        assert!(t.validate(&[]).is_ok());
    }

    #[test]
    fn valid_content_passes() {
        let t = iso_type();
        assert!(t
            .validate(&[Attribute::new("QualityRegulation", "UNI EN ISO 9000")])
            .is_ok());
        assert!(t
            .validate(&[
                Attribute::new("QualityRegulation", "UNI EN ISO 9000"),
                Attribute::new("AuditScore", 97i64),
            ])
            .is_ok());
    }

    #[test]
    fn missing_required_fails() {
        let err = iso_type().validate(&[]).unwrap_err();
        assert!(err.to_string().contains("QualityRegulation"));
    }

    #[test]
    fn wrong_kind_fails() {
        let err = iso_type()
            .validate(&[Attribute::new("QualityRegulation", 9i64)])
            .unwrap_err();
        assert!(err.to_string().contains("wrong kind"));
    }

    #[test]
    fn unknown_attribute_fails() {
        let err = iso_type()
            .validate(&[
                Attribute::new("QualityRegulation", "ok"),
                Attribute::new("Bogus", "x"),
            ])
            .unwrap_err();
        assert!(err.to_string().contains("unknown attribute 'Bogus'"));
    }

    #[test]
    fn admits_matrix() {
        assert!(AttrKind::Str.admits(&AttrValue::Str("x".into())));
        assert!(!AttrKind::Str.admits(&AttrValue::Int(1)));
        assert!(AttrKind::Date.admits(&AttrValue::Date(crate::time::Timestamp(0))));
        assert!(!AttrKind::Bool.admits(&AttrValue::Str("true".into())));
    }
}
