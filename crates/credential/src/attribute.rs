//! Typed credential attributes.
//!
//! X-TNL credentials "encode properties, of different natures" (§1); the
//! `<content>` element "contains all the attributes that characterize the
//! credential type" (§6.2). Attribute values are typed so that policy
//! conditions can compare them numerically or as strings.

use crate::time::Timestamp;

/// The value of a credential attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrValue {
    /// Free text (e.g. `QualityRegulation = "UNI EN ISO 9000"`).
    Str(String),
    /// Integer (e.g. a salary, an employee count).
    Int(i64),
    /// Boolean flag.
    Bool(bool),
    /// A date/time value (e.g. an accreditation date).
    Date(Timestamp),
}

impl AttrValue {
    /// The canonical string form (used in XML content and XPath comparisons).
    pub fn canonical(&self) -> String {
        match self {
            AttrValue::Str(s) => s.clone(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Bool(b) => b.to_string(),
            AttrValue::Date(t) => t.to_iso(),
        }
    }

    /// The X-TNL type tag for the XML `type` attribute.
    pub fn type_tag(&self) -> &'static str {
        match self {
            AttrValue::Str(_) => "string",
            AttrValue::Int(_) => "integer",
            AttrValue::Bool(_) => "boolean",
            AttrValue::Date(_) => "date",
        }
    }

    /// Parse a value from its tag and canonical form.
    pub fn from_tagged(tag: &str, text: &str) -> Option<Self> {
        match tag {
            "string" => Some(AttrValue::Str(text.to_owned())),
            "integer" => text.parse().ok().map(AttrValue::Int),
            "boolean" => text.parse().ok().map(AttrValue::Bool),
            "date" => Timestamp::parse_iso(text).map(AttrValue::Date),
            _ => None,
        }
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// A named attribute inside a credential's `<content>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// The attribute name (an XML element name, e.g. `QualityRegulation`).
    pub name: String,
    /// The typed value.
    pub value: AttrValue,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_forms() {
        assert_eq!(AttrValue::Str("x".into()).canonical(), "x");
        assert_eq!(AttrValue::Int(-5).canonical(), "-5");
        assert_eq!(AttrValue::Bool(true).canonical(), "true");
        assert_eq!(
            AttrValue::Date(Timestamp::from_ymd_hms(2009, 10, 26, 21, 32, 52)).canonical(),
            "2009-10-26T21:32:52"
        );
    }

    #[test]
    fn tagged_roundtrip() {
        for v in [
            AttrValue::Str("hello world".into()),
            AttrValue::Int(42),
            AttrValue::Bool(false),
            AttrValue::Date(Timestamp(1_234_567)),
        ] {
            let back = AttrValue::from_tagged(v.type_tag(), &v.canonical()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn from_tagged_rejects_garbage() {
        assert!(AttrValue::from_tagged("integer", "abc").is_none());
        assert!(AttrValue::from_tagged("boolean", "yes").is_none());
        assert!(AttrValue::from_tagged("date", "2009").is_none());
        assert!(AttrValue::from_tagged("unknown", "x").is_none());
    }

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from("a"), AttrValue::Str("a".into()));
        assert_eq!(AttrValue::from(7i64), AttrValue::Int(7));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        let a = Attribute::new("Salary", 60_000i64);
        assert_eq!(a.name, "Salary");
        assert_eq!(a.value, AttrValue::Int(60_000));
    }
}
