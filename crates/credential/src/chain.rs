//! Credential chains.
//!
//! During the credential exchange phase, parties may need to "eventually
//! retrieve those credentials that are not immediately available through
//! credentials chains" (§4.2): the issuer of a presented credential may
//! itself be certified by another credential, and so on up to an authority
//! the verifier trusts directly.
//!
//! A chain `c₀, c₁, …, cₙ` is **well-formed** when `c₀` is issued by a
//! trusted root key and, for each subsequent link, the issuer key of `cᵢ`
//! equals the subject key of `cᵢ₋₁` (the previous credential certifies the
//! next issuer). Every link must also pass the ordinary per-credential
//! checks (signature, validity, revocation).

use crate::credential::{signing_bytes, Credential};
use crate::error::CredentialError;
use crate::revocation::RevocationList;
use crate::time::Timestamp;
use crate::verified::VerifiedCache;
use std::collections::{HashMap, HashSet, VecDeque};
use trust_vo_crypto::{verify_batch, PublicKey, Signature};

/// Verify a chain ending at the target credential (`chain.last()`).
///
/// `crl` is consulted for every link; pass the union of the relevant
/// authorities' lists.
///
/// Structural, validity, and revocation checks run per link first (these
/// are cheap and never cached); the remaining signature checks are then
/// answered from the [`VerifiedCache`] where possible and batch-verified
/// in a single multi-exponentiation otherwise. A failing batch falls back
/// to individual verification so the error still names the bad link.
///
/// Batch-accepted links are inserted into the [`VerifiedCache`], so the
/// batch test's per-item false-accept bound (~2⁻³² coefficient
/// cancellation, see [`verify_batch`]) is extended from one call to the
/// process lifetime: a signature the batch wrongly accepted would keep
/// hitting the cache instead of being re-tested. This is a deliberate
/// trade — the attacker cannot influence the Fiat–Shamir coefficients,
/// so 2⁻³² bounds the *attack's* success probability whether the accept
/// is remembered or not; re-verifying every link individually before
/// caching would erase the batch speedup entirely.
pub fn verify_chain(
    chain: &[Credential],
    trusted_roots: &[PublicKey],
    at: Timestamp,
    crl: Option<&RevocationList>,
) -> Result<(), CredentialError> {
    let first = chain
        .first()
        .ok_or_else(|| CredentialError::BrokenChain("empty chain".into()))?;
    if !trusted_roots.contains(&first.header.issuer_key) {
        return Err(CredentialError::BrokenChain(format!(
            "chain root issuer '{}' is not trusted",
            first.header.issuer
        )));
    }
    for (i, cred) in chain.iter().enumerate() {
        cred.verify_nonsig(at, crl)?;
        if i > 0 {
            let prev = &chain[i - 1];
            if cred.header.issuer_key != prev.header.subject_key {
                return Err(CredentialError::BrokenChain(format!(
                    "link {i}: issuer of '{}' is not certified by '{}'",
                    cred.id(),
                    prev.id()
                )));
            }
        }
    }
    // Signature pass: cache hits are free, the misses share one batch.
    let cache = VerifiedCache::global();
    let mut pending: Vec<(&Credential, Vec<u8>)> = Vec::new();
    for cred in chain {
        if !cache.check(&cred.verified_key()) {
            pending.push((cred, signing_bytes(&cred.header, &cred.content)));
        }
    }
    if pending.len() == 1 {
        return pending[0].0.verify_signature();
    }
    let items: Vec<(PublicKey, &[u8], Signature)> = pending
        .iter()
        .map(|(cred, bytes)| (cred.header.issuer_key, bytes.as_slice(), cred.signature))
        .collect();
    if verify_batch(&items) {
        for (cred, _) in &pending {
            cache.insert(cred.verified_key());
        }
        return Ok(());
    }
    // At least one signature is bad; re-verify individually for a
    // precise error naming the first failing link.
    for (cred, _) in &pending {
        cred.verify_signature()?;
    }
    // Unreachable in practice (the batch rejects iff some individual
    // check rejects), but fail closed rather than trust the batch alone.
    Err(CredentialError::BrokenChain(
        "batch signature verification failed".into(),
    ))
}

/// A directory of credentials known to a party, used to build chains for
/// credentials whose issuers are not directly trusted.
#[derive(Debug, Clone, Default)]
pub struct ChainDirectory {
    creds: Vec<Credential>,
}

impl ChainDirectory {
    /// Create an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a credential that can serve as an intermediate link.
    pub fn add(&mut self, cred: Credential) {
        self.creds.push(cred);
    }

    /// Number of directory entries.
    pub fn len(&self) -> usize {
        self.creds.len()
    }

    /// True when the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.creds.is_empty()
    }

    /// Find the shortest chain from a trusted root to `target` by breadth-
    /// first search over "subject-key certifies issuer-key" edges. The
    /// returned chain includes `target` as its last element. Returns `None`
    /// when no chain exists.
    ///
    /// Candidate links are found through a subject-key index built once
    /// per call and visited keys are tracked in hash sets, so resolution
    /// is linear in the credentials actually reachable rather than
    /// quadratic in the directory size.
    pub fn resolve(
        &self,
        target: &Credential,
        trusted_roots: &[PublicKey],
    ) -> Option<Vec<Credential>> {
        // Trivial case: the target's issuer is directly trusted.
        if trusted_roots.contains(&target.header.issuer_key) {
            return Some(vec![target.clone()]);
        }
        // Index once: subject key → directory entries certifying it.
        let mut by_subject: HashMap<u64, Vec<usize>> = HashMap::new();
        for (idx, cred) in self.creds.iter().enumerate() {
            by_subject
                .entry(cred.header.subject_key.0)
                .or_default()
                .push(idx);
        }
        let roots: HashSet<u64> = trusted_roots.iter().map(|k| k.0).collect();
        // BFS backwards: we need a credential whose subject key is the
        // target's issuer key; its own issuer then needs certification, etc.
        struct State {
            need: PublicKey,
            suffix: Vec<usize>, // indices into self.creds, target-most last
            suffix_members: HashSet<usize>, // same indices, for O(1) cycle checks
        }
        let mut queue = VecDeque::new();
        queue.push_back(State {
            need: target.header.issuer_key,
            suffix: Vec::new(),
            suffix_members: HashSet::new(),
        });
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(target.header.issuer_key.0);
        while let Some(state) = queue.pop_front() {
            let Some(candidates) = by_subject.get(&state.need.0) else {
                continue;
            };
            for &idx in candidates {
                let cred = &self.creds[idx];
                if state.suffix_members.contains(&idx) {
                    continue;
                }
                let mut suffix = state.suffix.clone();
                suffix.push(idx);
                if roots.contains(&cred.header.issuer_key.0) {
                    // Found a root-issued link; assemble root → … → target.
                    let mut chain: Vec<Credential> = suffix
                        .iter()
                        .rev()
                        .map(|&i| self.creds[i].clone())
                        .collect();
                    chain.push(target.clone());
                    return Some(chain);
                }
                if seen.insert(cred.header.issuer_key.0) {
                    let mut suffix_members = state.suffix_members.clone();
                    suffix_members.insert(idx);
                    queue.push_back(State {
                        need: cred.header.issuer_key,
                        suffix,
                        suffix_members,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::credential::{CredentialId, Header};
    use crate::time::TimeRange;
    use trust_vo_crypto::KeyPair;

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    /// Issue a credential from `issuer` keys to `subject` keys.
    fn issue(
        id: &str,
        ty: &str,
        issuer: &KeyPair,
        issuer_name: &str,
        subject: &KeyPair,
        subject_name: &str,
    ) -> Credential {
        let header = Header {
            cred_id: CredentialId(id.into()),
            cred_type: ty.into(),
            issuer: issuer_name.into(),
            issuer_key: issuer.public,
            subject: subject_name.into(),
            subject_key: subject.public,
            validity: window(),
        };
        Credential::issue_signed(header, vec![Attribute::new("k", "v")], issuer)
    }

    #[test]
    fn single_link_chain_with_trusted_root() {
        let root = KeyPair::from_seed(b"root");
        let holder = KeyPair::from_seed(b"holder");
        let cred = issue("c1", "T", &root, "Root CA", &holder, "Holder");
        assert!(verify_chain(&[cred], &[root.public], at(), None).is_ok());
    }

    #[test]
    fn untrusted_root_rejected() {
        let rogue = KeyPair::from_seed(b"rogue");
        let holder = KeyPair::from_seed(b"holder");
        let cred = issue("c1", "T", &rogue, "Rogue", &holder, "Holder");
        let err =
            verify_chain(&[cred], &[KeyPair::from_seed(b"root").public], at(), None).unwrap_err();
        assert!(matches!(err, CredentialError::BrokenChain(_)));
    }

    #[test]
    fn two_link_chain() {
        let root = KeyPair::from_seed(b"root");
        let intermediate = KeyPair::from_seed(b"intermediate");
        let holder = KeyPair::from_seed(b"holder");
        // Root certifies the intermediate CA; intermediate issues to holder.
        let link = issue(
            "ca-cert",
            "CACert",
            &root,
            "Root CA",
            &intermediate,
            "Mid CA",
        );
        let target = issue("c1", "T", &intermediate, "Mid CA", &holder, "Holder");
        assert!(verify_chain(&[link.clone(), target.clone()], &[root.public], at(), None).is_ok());
        // Out of order is broken.
        assert!(verify_chain(&[target, link], &[root.public], at(), None).is_err());
    }

    #[test]
    fn gap_in_chain_rejected() {
        let root = KeyPair::from_seed(b"root");
        let other = KeyPair::from_seed(b"other");
        let holder = KeyPair::from_seed(b"holder");
        let link = issue("ca-cert", "CACert", &root, "Root CA", &other, "Other");
        // Target's issuer is NOT `other`.
        let stranger = KeyPair::from_seed(b"stranger");
        let target = issue("c1", "T", &stranger, "Stranger", &holder, "Holder");
        let err = verify_chain(&[link, target], &[root.public], at(), None).unwrap_err();
        assert!(matches!(err, CredentialError::BrokenChain(_)));
    }

    #[test]
    fn revoked_link_breaks_chain() {
        let root = KeyPair::from_seed(b"root");
        let mid = KeyPair::from_seed(b"mid");
        let holder = KeyPair::from_seed(b"holder");
        let link = issue("ca-cert", "CACert", &root, "Root CA", &mid, "Mid");
        let target = issue("c1", "T", &mid, "Mid", &holder, "Holder");
        let mut crl = RevocationList::new();
        crl.revoke(link.id().clone(), Timestamp(0));
        let err = verify_chain(&[link, target], &[root.public], at(), Some(&crl)).unwrap_err();
        assert!(matches!(err, CredentialError::Revoked { .. }));
    }

    #[test]
    fn resolver_finds_multi_link_chain() {
        let root = KeyPair::from_seed(b"root");
        let mid1 = KeyPair::from_seed(b"mid1");
        let mid2 = KeyPair::from_seed(b"mid2");
        let holder = KeyPair::from_seed(b"holder");
        let mut dir = ChainDirectory::new();
        dir.add(issue("l1", "CACert", &root, "Root", &mid1, "Mid1"));
        dir.add(issue("l2", "CACert", &mid1, "Mid1", &mid2, "Mid2"));
        // Noise entry that leads nowhere.
        dir.add(issue(
            "noise",
            "CACert",
            &KeyPair::from_seed(b"x"),
            "X",
            &KeyPair::from_seed(b"y"),
            "Y",
        ));
        let target = issue("c1", "T", &mid2, "Mid2", &holder, "Holder");
        let chain = dir.resolve(&target, &[root.public]).expect("chain found");
        assert_eq!(chain.len(), 3);
        assert!(verify_chain(&chain, &[root.public], at(), None).is_ok());
    }

    #[test]
    fn resolver_trivial_when_directly_trusted() {
        let root = KeyPair::from_seed(b"root");
        let holder = KeyPair::from_seed(b"holder");
        let target = issue("c1", "T", &root, "Root", &holder, "Holder");
        let chain = ChainDirectory::new()
            .resolve(&target, &[root.public])
            .unwrap();
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn resolver_returns_none_when_unreachable() {
        let root = KeyPair::from_seed(b"root");
        let stranger = KeyPair::from_seed(b"stranger");
        let holder = KeyPair::from_seed(b"holder");
        let target = issue("c1", "T", &stranger, "Stranger", &holder, "Holder");
        assert!(ChainDirectory::new()
            .resolve(&target, &[root.public])
            .is_none());
    }

    #[test]
    fn resolver_handles_cycles() {
        // a certifies b, b certifies a — must not loop forever.
        let a = KeyPair::from_seed(b"a");
        let b = KeyPair::from_seed(b"b");
        let holder = KeyPair::from_seed(b"holder");
        let mut dir = ChainDirectory::new();
        dir.add(issue("ab", "CACert", &a, "A", &b, "B"));
        dir.add(issue("ba", "CACert", &b, "B", &a, "A"));
        let target = issue("c1", "T", &a, "A", &holder, "Holder");
        assert!(dir
            .resolve(&target, &[KeyPair::from_seed(b"root").public])
            .is_none());
    }
}
