//! Error type for credential operations.

use crate::time::Timestamp;

/// Errors raised while issuing, encoding, or verifying credentials.
#[derive(Debug, Clone, PartialEq)]
pub enum CredentialError {
    /// Credential content does not match the type schema.
    SchemaViolation {
        /// The credential type whose schema was violated.
        cred_type: String,
        /// What went wrong.
        detail: String,
    },
    /// The signature did not verify against the issuer key.
    BadSignature {
        /// The credential id.
        cred_id: String,
    },
    /// The credential is outside its validity window.
    Expired {
        /// The credential id.
        cred_id: String,
        /// The instant at which validity was checked.
        at: Timestamp,
    },
    /// The credential appears on a revocation list.
    Revoked {
        /// The credential id.
        cred_id: String,
    },
    /// Ownership authentication failed (the presenter does not hold the
    /// subject key).
    NotOwner {
        /// The credential id.
        cred_id: String,
    },
    /// An XML document could not be interpreted as a credential.
    Malformed(String),
    /// A credential chain is broken (issuer of a link is not certified by
    /// the previous link, or no trusted root is reached).
    BrokenChain(String),
    /// The issuer is not known/trusted in the current context.
    UnknownIssuer(String),
}

impl std::fmt::Display for CredentialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SchemaViolation { cred_type, detail } => {
                write!(
                    f,
                    "schema violation for credential type '{cred_type}': {detail}"
                )
            }
            Self::BadSignature { cred_id } => {
                write!(
                    f,
                    "signature verification failed for credential '{cred_id}'"
                )
            }
            Self::Expired { cred_id, at } => {
                write!(f, "credential '{cred_id}' is not valid at {at}")
            }
            Self::Revoked { cred_id } => write!(f, "credential '{cred_id}' has been revoked"),
            Self::NotOwner { cred_id } => {
                write!(
                    f,
                    "ownership authentication failed for credential '{cred_id}'"
                )
            }
            Self::Malformed(detail) => write!(f, "malformed credential document: {detail}"),
            Self::BrokenChain(detail) => write!(f, "broken credential chain: {detail}"),
            Self::UnknownIssuer(name) => write!(f, "unknown or untrusted issuer '{name}'"),
        }
    }
}

impl std::error::Error for CredentialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<(CredentialError, &str)> = vec![
            (
                CredentialError::BadSignature {
                    cred_id: "c1".into(),
                },
                "signature verification failed",
            ),
            (
                CredentialError::Expired {
                    cred_id: "c1".into(),
                    at: Timestamp(0),
                },
                "not valid at 1970-01-01T00:00:00",
            ),
            (
                CredentialError::Revoked {
                    cred_id: "c1".into(),
                },
                "revoked",
            ),
            (
                CredentialError::NotOwner {
                    cred_id: "c1".into(),
                },
                "ownership",
            ),
            (CredentialError::Malformed("no header".into()), "no header"),
            (CredentialError::BrokenChain("gap".into()), "gap"),
            (
                CredentialError::UnknownIssuer("X".into()),
                "untrusted issuer 'X'",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
