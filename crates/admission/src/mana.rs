//! Per-party regenerating flow budgets ("mana").
//!
//! A token bucket per party identity: each gated call costs tokens, the
//! bucket refills continuously at a configured rate of the *sim* clock,
//! and the burst capacity bounds how many calls a party can fire
//! back-to-back. A party that floods bogus negotiation starts drains its
//! own bucket and gets typed
//! [`budget_exhausted`](trust_vo_soa::envelope::Fault::budget_exhausted)
//! refusals with a retry-after hint — honest parties' buckets are
//! untouched, so one identity cannot starve the bus for everyone else.
//!
//! All arithmetic is sequential per bucket under one mutex and driven by
//! caller-supplied sim-times, so a deterministic workload produces
//! bit-identical budget trajectories on every run.
//!
//! Internally the bucket counts **integer micro-tokens** (1 token =
//! 1 000 000 µtokens). The public API stays `f64`, but refill, charge,
//! and the retry-after hint are all exact integer arithmetic: a refused
//! caller that advances sim-time by exactly the hint is *always* admitted
//! — no ULP of float accumulation can push the bucket one rounding error
//! short of the cost (the bug the old `f64` bucket had).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use trust_vo_journal::{Fact, Journal};
use trust_vo_obs::Collector;
use trust_vo_soa::simclock::SimDuration;

/// Token-bucket parameters, shared by every party.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManaConfig {
    /// Bucket capacity: the burst a party can spend instantly. New
    /// parties start full.
    pub capacity: f64,
    /// Tokens regenerated per sim-second.
    pub refill_per_sec: f64,
    /// Tokens one gated call costs.
    pub cost_per_call: f64,
}

impl ManaConfig {
    /// Defaults sized for formation traffic: a burst of 8 negotiation
    /// starts, regenerating 2 per sim-second — far above what any honest
    /// formation driver issues per party, throttling only floods.
    pub fn standard() -> Self {
        ManaConfig {
            capacity: 8.0,
            refill_per_sec: 2.0,
            cost_per_call: 1.0,
        }
    }
}

impl Default for ManaConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Micro-tokens per token: the integer accounting granularity.
const MICRO: u64 = 1_000_000;

/// A token count (f64 config surface) as integer micro-tokens.
fn to_micro(tokens: f64) -> u64 {
    (tokens.max(0.0) * MICRO as f64).round() as u64
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Remaining budget in micro-tokens (1 token = 10⁶ µtokens).
    tokens_micro: u64,
    /// Regeneration anchor: sim-time of the last mutation.
    last_us: u64,
}

/// The per-party bucket map.
#[derive(Debug)]
pub struct ManaLedger {
    config: ManaConfig,
    /// Integer images of the config, fixed at construction.
    capacity_micro: u64,
    refill_micro_per_sec: u64,
    cost_micro: u64,
    buckets: Mutex<BTreeMap<String, Bucket>>,
    journal: OnceLock<Arc<Journal>>,
    obs: OnceLock<Collector>,
}

impl ManaLedger {
    /// A ledger with the given bucket parameters. The `f64` config is
    /// quantized to micro-tokens once, here; everything after is integer.
    pub fn new(config: ManaConfig) -> Self {
        ManaLedger {
            config,
            capacity_micro: to_micro(config.capacity),
            refill_micro_per_sec: to_micro(config.refill_per_sec),
            cost_micro: to_micro(config.cost_per_call),
            buckets: Mutex::new(BTreeMap::new()),
            journal: OnceLock::new(),
            obs: OnceLock::new(),
        }
    }

    /// The ledger's configuration.
    pub fn config(&self) -> &ManaConfig {
        &self.config
    }

    /// `ceil(n / d)` with the intermediate widened so huge deficits cannot
    /// overflow, saturating at `u64::MAX`.
    fn div_ceil_saturating(n: u128, d: u128) -> u64 {
        let q = n.div_ceil(d);
        u64::try_from(q).unwrap_or(u64::MAX)
    }

    /// Attach a journal: every bucket mutation spills a [`Fact::Mana`]
    /// with the resulting level and anchor. First attachment wins.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        let _ = self.journal.set(journal);
    }

    /// Attach an obs collector: charges and refusals emit `mana.charged` /
    /// `mana.rejected` counters. First attachment wins.
    pub fn attach_obs(&self, collector: &Collector) {
        let _ = self.obs.set(collector.clone());
    }

    /// The party's token level as of sim-time `now` (refilled read; does
    /// not mutate state).
    pub fn tokens(&self, party: &str, now: SimDuration) -> f64 {
        let guard = self.buckets.lock();
        let micro = match guard.get(party) {
            Some(b) => self.refilled_micro(b, now),
            None => self.capacity_micro,
        };
        micro as f64 / MICRO as f64
    }

    /// The bucket's level at `now`, in micro-tokens. Regeneration is
    /// `⌊refill_µ · dt_µs / 10⁶⌋`: exact whenever the product divides
    /// evenly, and under-credits by strictly less than one µtoken
    /// otherwise — the conservative direction, so the retry-after hint
    /// below can guarantee sufficiency with a matching ceiling division.
    fn refilled_micro(&self, bucket: &Bucket, now: SimDuration) -> u64 {
        let dt_us = now.0.saturating_sub(bucket.last_us);
        let regen = self.refill_micro_per_sec as u128 * dt_us as u128 / MICRO as u128;
        let total = bucket.tokens_micro as u128 + regen;
        u64::try_from(total.min(self.capacity_micro as u128)).expect("capped at capacity")
    }

    /// Charge one call to `party` at sim-time `now`. `Ok(remaining)` when
    /// the bucket covers the cost; `Err(retry_after)` — the sim-time until
    /// the bucket regenerates enough — when it does not. Both paths
    /// advance the regeneration anchor.
    ///
    /// The hint is exact: `retry_after = ⌈deficit_µ · 10⁶ / refill_µ⌉`
    /// µs, so `⌊refill_µ · retry_after / 10⁶⌋ ≥ deficit_µ` and a caller
    /// retrying at `now + retry_after` is always admitted (integer
    /// arithmetic throughout — no float accumulation can undercut it).
    pub fn try_charge(&self, party: &str, now: SimDuration) -> Result<f64, SimDuration> {
        let mut guard = self.buckets.lock();
        let bucket = guard.entry(party.to_owned()).or_insert(Bucket {
            tokens_micro: self.capacity_micro,
            last_us: now.0,
        });
        let refilled = self.refilled_micro(bucket, now);
        let result = if refilled >= self.cost_micro {
            bucket.tokens_micro = refilled - self.cost_micro;
            bucket.last_us = now.0;
            Ok(bucket.tokens_micro as f64 / MICRO as f64)
        } else {
            bucket.tokens_micro = refilled;
            bucket.last_us = now.0;
            let deficit = self.cost_micro - refilled;
            let retry_after =
                if self.refill_micro_per_sec == 0 || self.cost_micro > self.capacity_micro {
                    // Never regenerates, or the cost exceeds the bucket's
                    // ceiling so no wait can ever cover it: an effectively-
                    // infinite hint (the retry layer's budget check fails it
                    // immediately) instead of a finite lie.
                    SimDuration(u64::MAX)
                } else {
                    SimDuration(Self::div_ceil_saturating(
                        deficit as u128 * MICRO as u128,
                        self.refill_micro_per_sec as u128,
                    ))
                };
            Err(retry_after)
        };
        let (tokens_micro, last_us) = (bucket.tokens_micro, bucket.last_us);
        drop(guard);
        if let Some(journal) = self.journal.get() {
            journal.append(&Fact::Mana {
                party: party.to_owned(),
                // The µtoken count as an integral f64 — exact below 2⁵³,
                // so restore round-trips bit-for-bit.
                tokens_bits: (tokens_micro as f64).to_bits(),
                at_us: last_us,
            });
        }
        if let Some(obs) = self.obs.get() {
            if obs.is_enabled() {
                obs.counter_add(
                    if result.is_ok() {
                        "mana.charged"
                    } else {
                        "mana.rejected"
                    },
                    1,
                );
            }
        }
        result
    }

    /// Rebuild bucket state from replayed [`Fact::Mana`] facts (last fact
    /// per party wins). Other fact kinds are skipped.
    pub fn restore_from_facts<'a>(&self, facts: impl IntoIterator<Item = &'a Fact>) {
        let mut guard = self.buckets.lock();
        for fact in facts {
            if let Fact::Mana {
                party,
                tokens_bits,
                at_us,
            } = fact
            {
                guard.insert(
                    party.clone(),
                    Bucket {
                        tokens_micro: f64::from_bits(*tokens_bits).max(0.0) as u64,
                        last_us: *at_us,
                    },
                );
            }
        }
    }

    /// All known parties and their raw (un-refilled) token levels, in
    /// party order — for digests and tests.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.buckets
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.tokens_micro as f64 / MICRO as f64))
            .collect()
    }
}

impl Default for ManaLedger {
    fn default() -> Self {
        Self::new(ManaConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ledger() -> ManaLedger {
        ManaLedger::new(ManaConfig::standard())
    }

    #[test]
    fn fresh_party_has_a_full_burst() {
        let m = ledger();
        let now = SimDuration::ZERO;
        assert_eq!(m.tokens("A", now), 8.0);
        for i in 0..8 {
            let left = m.try_charge("A", now).expect("burst");
            assert!((left - (7 - i) as f64).abs() < 1e-9);
        }
        let retry = m.try_charge("A", now).unwrap_err();
        // 1 token at 2/sec = 500 ms.
        assert_eq!(retry, SimDuration::from_millis(500));
    }

    #[test]
    fn bucket_regenerates_with_sim_time_and_caps_at_capacity() {
        let m = ledger();
        let now = SimDuration::ZERO;
        for _ in 0..8 {
            m.try_charge("A", now).unwrap();
        }
        // After 1 sim-second: 2 tokens back.
        let later = SimDuration::from_millis(1_000);
        assert!((m.tokens("A", later) - 2.0).abs() < 1e-9);
        assert!(m.try_charge("A", later).is_ok());
        // After an hour idle the bucket is full again, not overflowing.
        let much_later = SimDuration::from_millis(3_600_000);
        assert_eq!(m.tokens("A", much_later), 8.0);
    }

    #[test]
    fn retry_hint_is_sufficient() {
        let m = ledger();
        let now = SimDuration::ZERO;
        for _ in 0..8 {
            m.try_charge("A", now).unwrap();
        }
        let retry = m.try_charge("A", now).unwrap_err();
        // Retrying exactly at the hint succeeds.
        assert!(m.try_charge("A", now + retry).is_ok());
    }

    #[test]
    fn one_party_cannot_drain_another() {
        let m = ledger();
        let now = SimDuration::ZERO;
        for _ in 0..100 {
            let _ = m.try_charge("Flooder", now);
        }
        assert_eq!(m.tokens("Honest", now), 8.0);
        assert!(m.try_charge("Honest", now).is_ok());
    }

    #[test]
    fn zero_refill_hints_forever() {
        let m = ManaLedger::new(ManaConfig {
            capacity: 1.0,
            refill_per_sec: 0.0,
            cost_per_call: 1.0,
        });
        let now = SimDuration::ZERO;
        assert!(m.try_charge("A", now).is_ok());
        assert_eq!(m.try_charge("A", now).unwrap_err(), SimDuration(u64::MAX));
    }

    #[test]
    fn exact_hint_regression_non_dyadic_rates() {
        // Pinned ISSUE-10 counterexample: with refill 0.001/s and cost
        // 1.3, the old f64 bucket's anchor resets accumulated rounding
        // error so that after burn@0, refusals at t=1µs and t=13332µs,
        // waiting *exactly* the issued hint still got refused by one ULP.
        // Integer micro-token accounting admits it exactly at the hint.
        let m = ManaLedger::new(ManaConfig {
            capacity: 2.0,
            refill_per_sec: 0.001,
            cost_per_call: 1.3,
        });
        assert!(m.try_charge("A", SimDuration(0)).is_ok());
        assert!(m.try_charge("A", SimDuration(1)).is_err());
        let hint = m.try_charge("A", SimDuration(13_332)).unwrap_err();
        assert!(hint.0 < u64::MAX);
        assert!(
            m.try_charge("A", SimDuration(13_332 + hint.0)).is_ok(),
            "waiting exactly the hint ({}µs) must admit the call",
            hint.0,
        );
        // One µs earlier must still refuse — the hint is tight, not padded.
        let m2 = ManaLedger::new(ManaConfig {
            capacity: 2.0,
            refill_per_sec: 0.001,
            cost_per_call: 1.3,
        });
        assert!(m2.try_charge("A", SimDuration(0)).is_ok());
        assert!(m2.try_charge("A", SimDuration(1)).is_err());
        let hint2 = m2.try_charge("A", SimDuration(13_332)).unwrap_err();
        assert!(m2
            .try_charge("A", SimDuration(13_332 + hint2.0 - 1))
            .is_err());
    }

    #[test]
    fn uncoverable_cost_hints_forever() {
        // Cost above capacity: no wait ever suffices, so the hint is the
        // same effectively-infinite sentinel the zero-refill path uses.
        let m = ManaLedger::new(ManaConfig {
            capacity: 1.0,
            refill_per_sec: 2.0,
            cost_per_call: 1.5,
        });
        assert_eq!(
            m.try_charge("A", SimDuration::ZERO).unwrap_err(),
            SimDuration(u64::MAX)
        );
    }

    #[test]
    fn journal_spill_and_restore_round_trip() {
        let journal = Arc::new(Journal::in_memory());
        let m = ledger();
        m.attach_journal(journal.clone());
        let t = SimDuration::from_millis(3);
        m.try_charge("A", t).unwrap();
        m.try_charge("B", t).unwrap();
        m.try_charge("A", SimDuration::from_millis(7)).unwrap();
        let replay = journal.replay();
        assert_eq!(replay.facts.len(), 3);
        let restored = ledger();
        restored.restore_from_facts(&replay.facts);
        assert_eq!(restored.snapshot(), m.snapshot());
        // The restored ledger regenerates from the same anchor.
        let later = SimDuration::from_millis(1_007);
        assert_eq!(restored.tokens("A", later), m.tokens("A", later));
    }

    proptest! {
        /// Tokens never go negative and never exceed capacity, for any
        /// charge schedule.
        #[test]
        fn tokens_stay_bounded(
            steps in proptest::collection::vec((0u64..5_000_000, any::<bool>()), 0..80),
        ) {
            let m = ledger();
            let mut now = 0u64;
            for (dt, other_party) in steps {
                now += dt;
                let party = if other_party { "B" } else { "A" };
                let _ = m.try_charge(party, SimDuration(now));
                for p in ["A", "B"] {
                    let level = m.tokens(p, SimDuration(now));
                    prop_assert!((0.0..=8.0 + 1e-9).contains(&level));
                }
            }
        }

        /// The ISSUE-10 regression: with non-dyadic rates (1/3 token
        /// calls against a 0.3-ish refill) and an arbitrary charge/wait
        /// schedule, a refused party that advances sim-time by *exactly*
        /// the hint is always admitted. The old `f64` bucket violated
        /// this: float accumulation across anchor resets could leave the
        /// refilled level one ULP short of the cost at `now + hint`.
        #[test]
        fn exact_hint_wait_is_always_admitted(
            refill_milli in 1u64..4_000,
            cost_milli in 1u64..3_000,
            steps in proptest::collection::vec(0u64..700_000, 1..40),
        ) {
            let m = ManaLedger::new(ManaConfig {
                capacity: 2.0,
                refill_per_sec: refill_milli as f64 / 1_000.0,
                cost_per_call: cost_milli as f64 / 1_000.0,
            });
            let mut now = 0u64;
            for dt in steps {
                now += dt;
                if let Err(hint) = m.try_charge("A", SimDuration(now)) {
                    if cost_milli > 2_000 {
                        // Cost above capacity: uncoverable, hinted as such.
                        prop_assert_eq!(hint.0, u64::MAX);
                        break;
                    }
                    prop_assert!(hint.0 < u64::MAX);
                    now += hint.0;
                    prop_assert!(
                        m.try_charge("A", SimDuration(now)).is_ok(),
                        "refused at {}µs with hint {}µs, still refused after the exact wait",
                        now - hint.0,
                        hint.0,
                    );
                }
            }
        }

        /// The retry-after hint is always sufficient: charging again at
        /// `now + hint` succeeds.
        #[test]
        fn hint_is_always_sufficient(
            burn in 1usize..20,
            start_ms in 0u64..10_000,
        ) {
            let m = ledger();
            let now = SimDuration::from_millis(start_ms);
            let mut hint = None;
            for _ in 0..burn + 8 {
                if let Err(h) = m.try_charge("A", now) {
                    hint = Some(h);
                }
            }
            if let Some(h) = hint {
                prop_assert!(m.try_charge("A", now + h).is_ok());
            }
        }
    }
}
