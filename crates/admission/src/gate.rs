//! The bus-boundary admission gate.
//!
//! Installed on the `ServiceBus` via
//! [`set_gate`](trust_vo_soa::ServiceBus::set_gate), the gate charges each
//! *negotiation-starting* call to the requesting party's mana bucket and
//! refuses exhausted parties with a typed
//! [`budget_exhausted`](Fault::budget_exhausted) fault *before* any
//! simulated latency is charged and before a single byte is encoded —
//! `ServiceBus::call` consults the gate ahead of the binary wire codec,
//! so a refused message never occupied the wire (nor paid its own
//! serialization) and a flood throttles only itself.
//!
//! Determinism contract: the gate sits *inside* the netsim wrapper (it
//! gates the real bus that netsim delivers to), and netsim's fault
//! decisions are keyed purely on `(seed, service, operation,
//! idempotency-key, attempt)` — so admission decisions cannot perturb the
//! fault decision stream, and a seeded chaos run replays bit-for-bit with
//! or without budgets enabled.

use crate::admission_enabled;
use crate::mana::ManaLedger;
use std::sync::Arc;
use trust_vo_soa::envelope::{Envelope, Fault};
use trust_vo_soa::simclock::SimClock;
use trust_vo_soa::CallGate;

/// Operations that open a new negotiation session and are therefore
/// charged to the requester's flow budget. Per-session follow-ups
/// (`PolicyExchange`, `CredentialExchange`…) ride free: the budget prices
/// *session admission*, not chattiness within an admitted session.
pub const GATED_OPERATIONS: [&str; 1] = ["StartNegotiation"];

/// The body child element naming the requesting party on gated
/// operations (see `soa::client`'s `StartNegotiation` shape).
pub const REQUESTER_ELEMENT: &str = "requester";

/// The per-party flow-budget gate.
pub struct AdmissionGate {
    mana: Arc<ManaLedger>,
    clock: SimClock,
}

impl AdmissionGate {
    /// A gate charging `mana`, reading sim-time (and emitting obs) from
    /// `clock` — pass the same clock the bus runs on.
    pub fn new(mana: Arc<ManaLedger>, clock: SimClock) -> Self {
        AdmissionGate { mana, clock }
    }

    /// The ledger this gate charges.
    pub fn mana(&self) -> &Arc<ManaLedger> {
        &self.mana
    }
}

impl CallGate for AdmissionGate {
    fn admit(&self, service: &str, request: &Envelope) -> Result<(), Fault> {
        // Kill-switch: disabled, the gate vanishes — no charge, no
        // counters, no spans, byte-identical behavior to an ungated bus.
        if !admission_enabled() {
            return Ok(());
        }
        if !GATED_OPERATIONS.contains(&request.operation.as_str()) {
            return Ok(());
        }
        // No requester identity ⇒ nothing to charge. Anonymous starts are
        // admitted: the TN service itself rejects malformed requests.
        let Some(party) = request.body.child_text(REQUESTER_ELEMENT) else {
            return Ok(());
        };
        let now = self.clock.elapsed();
        let obs = self.clock.collector();
        let span = match &request.trace {
            Some(trace) if obs.is_enabled() => {
                let mut span = obs.span_linked("admission.gate", trace.link());
                span.field("service", service);
                span.field("party", party.as_str());
                Some(span)
            }
            _ => None,
        };
        let result = match self.mana.try_charge(&party, now) {
            Ok(_remaining) => Ok(()),
            Err(retry_after) => Err(Fault::budget_exhausted(&party, retry_after.0)),
        };
        if let Some(mut span) = span {
            span.field("admitted", result.is_ok());
        }
        if obs.is_enabled() {
            obs.counter_add(
                if result.is_ok() {
                    "admission.allowed"
                } else {
                    "admission.rejected"
                },
                1,
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mana::ManaConfig;
    use trust_vo_soa::simclock::{CostKind, CostModel};
    use trust_vo_soa::{ServiceBus, ServiceEndpoint};
    use trust_vo_xmldoc::Element;

    struct Ok200;
    impl ServiceEndpoint for Ok200 {
        fn handle(&self, request: &Envelope) -> Result<Envelope, Fault> {
            Ok(Envelope::request(
                format!("{}Response", request.operation),
                Element::new("ok"),
            ))
        }
        fn operations(&self) -> Vec<String> {
            vec!["StartNegotiation".into()]
        }
    }

    fn start_request(party: &str) -> Envelope {
        Envelope::request(
            "StartNegotiation",
            Element::new("StartNegotiationRequest")
                .child(Element::new(REQUESTER_ELEMENT).text(party)),
        )
    }

    fn gated_bus(config: ManaConfig) -> (ServiceBus, Arc<ManaLedger>) {
        let clock = SimClock::new(
            CostModel::paper_testbed(),
            trust_vo_credential::Timestamp(0),
        );
        let bus = ServiceBus::new(clock);
        bus.register("tn", Arc::new(Ok200));
        let mana = Arc::new(ManaLedger::new(config));
        bus.set_gate(Arc::new(AdmissionGate::new(
            mana.clone(),
            bus.clock().clone(),
        )));
        (bus, mana)
    }

    #[test]
    fn flood_is_refused_free_while_honest_parties_pass() {
        let (bus, _mana) = gated_bus(ManaConfig {
            capacity: 2.0,
            refill_per_sec: 0.0,
            cost_per_call: 1.0,
        });
        assert!(bus.call("tn", &start_request("Flooder")).is_ok());
        assert!(bus.call("tn", &start_request("Flooder")).is_ok());
        let spent = bus.clock().elapsed();
        let err = bus.call("tn", &start_request("Flooder")).unwrap_err();
        assert!(err.is_budget_exhausted());
        // The refusal charged no sim-time — the message never hit the
        // wire — and other parties still go through.
        assert_eq!(bus.clock().elapsed(), spent);
        assert!(bus.call("tn", &start_request("Honest")).is_ok());
    }

    #[test]
    fn non_start_operations_and_anonymous_starts_ride_free() {
        let (bus, mana) = gated_bus(ManaConfig {
            capacity: 1.0,
            refill_per_sec: 0.0,
            cost_per_call: 1.0,
        });
        bus.call("tn", &start_request("A")).unwrap();
        // Budget is gone, but follow-up operations are not gated…
        let follow_up = Envelope::request("PolicyExchange", Element::new("x"));
        assert!(bus.call("tn", &follow_up).is_ok());
        // …and a start without a requester element is admitted unharmed.
        let anon = Envelope::request("StartNegotiation", Element::new("x"));
        assert!(bus.call("tn", &anon).is_ok());
        assert_eq!(mana.tokens("A", bus.clock().elapsed()), 0.0);
    }

    #[test]
    fn refusal_precedes_encoding() {
        // The gate sits before the wire boundary: a refused request is
        // never framed (its canonical bytes are never produced), while an
        // admitted one crosses the codec and caches its encoding.
        let (bus, _mana) = gated_bus(ManaConfig {
            capacity: 1.0,
            refill_per_sec: 0.0,
            cost_per_call: 1.0,
        });
        bus.set_wire(true);
        let admitted = start_request("A");
        bus.call("tn", &admitted).unwrap();
        assert!(admitted.wire_cached(), "admitted call crossed the codec");
        let refused = start_request("A");
        assert!(bus.call("tn", &refused).unwrap_err().is_budget_exhausted());
        assert!(
            !refused.wire_cached(),
            "a refusal must cost zero encode work"
        );
    }

    #[test]
    fn refused_call_retries_after_regeneration() {
        let (bus, _mana) = gated_bus(ManaConfig {
            capacity: 1.0,
            refill_per_sec: 2.0,
            cost_per_call: 1.0,
        });
        bus.call("tn", &start_request("A")).unwrap();
        let err = bus.call("tn", &start_request("A")).unwrap_err();
        let hint = err.retry_after_us.expect("hint");
        // Advance sim-time past the hint: the same request is admitted.
        bus.clock()
            .advance(trust_vo_soa::simclock::SimDuration(hint));
        assert!(bus.call("tn", &start_request("A")).is_ok());
        // And the admitted call paid its round trip.
        assert!(
            bus.clock().elapsed().0 > hint + bus.clock().model().cost_of(CostKind::SoapRoundTrip).0
        );
    }
}
