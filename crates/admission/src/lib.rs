//! Reputation-gated admission control and per-party flow budgets.
//!
//! The paper establishes that "each member will have an associated
//! reputation, established on the basis of past transactions" (§2) and
//! that "the failed TN may affect the parties' reputation" (§5.1), but its
//! reputation is write-only: nothing at admission time *reads* it. This
//! crate closes the loop, in three layers:
//!
//! * [`score`] — a [`ScoringEngine`] fed every negotiation outcome
//!   (success, violation, failed TN, abandonment, transport fault-timeout)
//!   with configurable deltas and sim-time decay toward the prior;
//! * [`band`] — coordinators map the counterpart's score to a trust band
//!   that selects the `negotiation::Strategy` (trusting ↔ standard ↔
//!   suspicious ↔ strong-suspicious) and the admission-queue priority;
//! * [`mana`] + [`gate`] — a regenerating per-party token bucket enforced
//!   at the service-bus boundary: a party flooding negotiation starts is
//!   refused with a typed `BudgetExhausted` fault (retry-after hinted)
//!   before any simulated latency is charged, so the flood throttles
//!   itself and honest parties keep their latency.
//!
//! Reputation and budget mutations spill as journal facts
//! (`Fact::Reputation` / `Fact::Mana`), surviving the journal's
//! kill-at-any-byte-prefix recovery contract; `admission.*` / `mana.*`
//! counters and `admission.gate` spans land in the causal trace tree.
//!
//! # Kill-switch
//!
//! Set `TRUST_VO_ADMISSION=0` (or `off`/`false`/`no`) to disable the whole
//! subsystem at first use: the gate admits everything silently, and the
//! admission-aware formation drivers in `vo` fall back to their fixed
//! strategy — behavior, obs output, and Perfetto exports are byte-identical
//! to a build without admission (ci.sh pins this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod band;
pub mod gate;
pub mod mana;
pub mod score;

pub use band::{BandConfig, QueueKey, TrustBand, REPLACEMENT_THRESHOLD};
pub use gate::{AdmissionGate, GATED_OPERATIONS, REQUESTER_ELEMENT};
pub use mana::{ManaConfig, ManaLedger};
pub use score::{Outcome, ScoringConfig, ScoringEngine};

use std::sync::LazyLock;

/// Is the admission subsystem enabled? Reads `TRUST_VO_ADMISSION` once at
/// first use; `0`/`off`/`false`/`no` disables (same contract as
/// `TRUST_VO_CRED_CACHE` and `TRUST_VO_MAP_CACHE`). Disabled, the gate,
/// banding, and scoring hooks all become inert no-ops.
pub fn admission_enabled() -> bool {
    static ENABLED: LazyLock<bool> = LazyLock::new(|| match std::env::var("TRUST_VO_ADMISSION") {
        Ok(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => true,
    });
    *ENABLED
}
