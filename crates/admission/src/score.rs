//! The outcome-fed scoring engine.
//!
//! "Each member will have an associated reputation, established on the
//! basis of past transactions" (§2) and "the failed TN may affect the
//! parties' reputation" (§5.1). The `vo` crate's `ReputationLedger`
//! implements the paper's write-side; this engine closes the loop: every
//! negotiation *outcome* — including transport-level ones the ledger never
//! sees, such as a netsim-injected fault timeout — moves a per-party score
//! that then drives strategy selection and admission priority (see
//! [`crate::band`]).
//!
//! Scores live in `[0, 1]`, start at a configurable prior, move by
//! per-outcome deltas, and decay toward the prior with a configurable
//! half-life in *sim-time* — old evidence fades, matching the
//! nonmonotonic-trust position that decisions must be revisable as
//! evidence ages. All time is the shared
//! [`SimDuration`] sim-clock, so a
//! fixed workload produces bit-identical scores on every run.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use trust_vo_journal::{Fact, Journal};
use trust_vo_obs::Collector;
use trust_vo_soa::simclock::SimDuration;

/// One recorded negotiation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The negotiation succeeded (trust established, member admitted).
    Success,
    /// The member violated the VO contract during operation.
    Violation,
    /// The trust negotiation terminated with a failure (§5.1).
    FailedNegotiation,
    /// The counterpart walked away mid-negotiation (declined invitation,
    /// abandoned session).
    Abandonment,
    /// The negotiation died to transport faults (netsim-injected drops,
    /// crashes, exhausted retries) — weak negative evidence: the party may
    /// be unlucky, not malicious.
    FaultTimeout,
}

impl Outcome {
    /// Stable lower-case name, used in obs counter suffixes and event
    /// fields.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Success => "success",
            Outcome::Violation => "violation",
            Outcome::FailedNegotiation => "failed_tn",
            Outcome::Abandonment => "abandonment",
            Outcome::FaultTimeout => "fault_timeout",
        }
    }
}

/// How outcomes move scores and how scores age.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringConfig {
    /// Score for a never-seen party, and the value decay relaxes toward.
    pub prior: f64,
    /// Signed delta per [`Outcome::Success`].
    pub success_delta: f64,
    /// Signed delta per [`Outcome::Violation`].
    pub violation_delta: f64,
    /// Signed delta per [`Outcome::FailedNegotiation`].
    pub failed_tn_delta: f64,
    /// Signed delta per [`Outcome::Abandonment`].
    pub abandonment_delta: f64,
    /// Signed delta per [`Outcome::FaultTimeout`].
    pub fault_timeout_delta: f64,
    /// Sim-time for half the distance to the prior to fade.
    /// [`SimDuration::ZERO`] disables decay entirely.
    pub half_life: SimDuration,
}

impl ScoringConfig {
    /// The default configuration: the `ReputationLedger` deltas for the
    /// outcomes the paper names, mild penalties for the transport-era
    /// outcomes it could not, and no decay (scores behave exactly like the
    /// ledger unless decay is opted into).
    pub fn paper_defaults() -> Self {
        ScoringConfig {
            prior: 0.5,
            success_delta: 0.05,
            violation_delta: -0.2,
            failed_tn_delta: -0.1,
            abandonment_delta: -0.05,
            fault_timeout_delta: -0.02,
            half_life: SimDuration::ZERO,
        }
    }

    /// The signed score delta for one outcome.
    pub fn delta_for(&self, outcome: Outcome) -> f64 {
        match outcome {
            Outcome::Success => self.success_delta,
            Outcome::Violation => self.violation_delta,
            Outcome::FailedNegotiation => self.failed_tn_delta,
            Outcome::Abandonment => self.abandonment_delta,
            Outcome::FaultTimeout => self.fault_timeout_delta,
        }
    }

    /// `score` aged by `dt` of decay toward the prior:
    /// `prior + (score - prior) · 2^(−dt/half_life)`. Identity when decay
    /// is disabled (`half_life == ZERO`) or no time passed.
    pub fn decayed(&self, score: f64, dt: SimDuration) -> f64 {
        if self.half_life == SimDuration::ZERO || dt == SimDuration::ZERO {
            return score;
        }
        let factor = 0.5_f64.powf(dt.0 as f64 / self.half_life.0 as f64);
        self.prior + (score - self.prior) * factor
    }
}

impl Default for ScoringConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[derive(Debug, Clone, Copy)]
struct PartyScore {
    score: f64,
    events: u64,
    /// Decay anchor: sim-time of the last mutation.
    last_us: u64,
}

/// The engine: per-party scores fed by [`ScoringEngine::record`], read by
/// the banding layer. Thread-safe (one mutex; record rates are formation
/// rates, not packet rates) and shareable via `Arc`.
#[derive(Debug, Default)]
pub struct ScoringEngine {
    config: ScoringConfig,
    inner: Mutex<BTreeMap<String, PartyScore>>,
    journal: OnceLock<Arc<Journal>>,
    obs: OnceLock<Collector>,
}

impl ScoringEngine {
    /// An empty engine with the given configuration.
    pub fn new(config: ScoringConfig) -> Self {
        ScoringEngine {
            config,
            inner: Mutex::new(BTreeMap::new()),
            journal: OnceLock::new(),
            obs: OnceLock::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ScoringConfig {
        &self.config
    }

    /// Attach a journal: every effective score mutation spills a
    /// [`Fact::Reputation`] carrying the *resulting* state, so a replayed
    /// prefix restores exact scores regardless of configuration drift.
    /// First attachment wins.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        let _ = self.journal.set(journal);
    }

    /// Attach an obs collector: each recorded outcome emits
    /// `admission.outcomes` and `admission.outcome.<name>` counters.
    /// First attachment wins.
    pub fn attach_obs(&self, collector: &Collector) {
        let _ = self.obs.set(collector.clone());
    }

    /// The current score of `party` as of sim-time `now` (decayed read;
    /// does not mutate state). Unknown parties sit at the prior.
    pub fn score(&self, party: &str, now: SimDuration) -> f64 {
        let guard = self.inner.lock();
        match guard.get(party) {
            Some(p) => self
                .config
                .decayed(p.score, SimDuration(now.0.saturating_sub(p.last_us))),
            None => self.config.prior,
        }
    }

    /// Effective (score-moving) events recorded for `party`. Fully-clamped
    /// no-op updates — e.g. a violation against a party already at the
    /// floor — do not count, matching `ReputationLedger::events_for`.
    pub fn events_for(&self, party: &str) -> u64 {
        self.inner.lock().get(party).map(|p| p.events).unwrap_or(0)
    }

    /// Record one outcome for `party` at sim-time `now`; returns the new
    /// score. The stored score is first aged to `now`, then moved by the
    /// outcome's delta and clamped to `[0, 1]`.
    pub fn record(&self, party: &str, outcome: Outcome, now: SimDuration) -> f64 {
        let mut guard = self.inner.lock();
        let entry = guard.entry(party.to_owned()).or_insert(PartyScore {
            score: self.config.prior,
            events: 0,
            last_us: now.0,
        });
        let before = entry.score;
        let aged = self
            .config
            .decayed(before, SimDuration(now.0.saturating_sub(entry.last_us)));
        let after = (aged + self.config.delta_for(outcome)).clamp(0.0, 1.0);
        entry.score = after;
        entry.last_us = now.0;
        // A fully-clamped no-op (e.g. a violation against a party already
        // at the floor, with no decay pending) is not an *event* — but the
        // decay anchor still advanced, so the journal spills every record:
        // replaying a prefix must restore the exact (score, anchor) pair,
        // not just the score.
        let effective = after.to_bits() != before.to_bits();
        if effective {
            entry.events += 1;
        }
        let (events, last_us) = (entry.events, entry.last_us);
        drop(guard);
        if let Some(journal) = self.journal.get() {
            journal.append(&Fact::Reputation {
                party: party.to_owned(),
                score_bits: after.to_bits(),
                events,
                at_us: last_us,
            });
        }
        if let Some(obs) = self.obs.get() {
            if obs.is_enabled() {
                obs.counter_add("admission.outcomes", 1);
                obs.counter_add(&format!("admission.outcome.{}", outcome.name()), 1);
            }
        }
        after
    }

    /// Seed scores (e.g. from an existing `ReputationLedger` snapshot) at
    /// sim-time `now`. Seeding is not an event and does not spill.
    pub fn seed<I, S>(&self, scores: I, now: SimDuration)
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let mut guard = self.inner.lock();
        for (party, score) in scores {
            guard.insert(
                party.into(),
                PartyScore {
                    score: score.clamp(0.0, 1.0),
                    events: 0,
                    last_us: now.0,
                },
            );
        }
    }

    /// Rebuild state from replayed [`Fact::Reputation`] facts (last fact
    /// per party wins — facts carry resulting state, so replay is a plain
    /// overwrite). Other fact kinds are skipped.
    pub fn restore_from_facts<'a>(&self, facts: impl IntoIterator<Item = &'a Fact>) {
        let mut guard = self.inner.lock();
        for fact in facts {
            if let Fact::Reputation {
                party,
                score_bits,
                events,
                at_us,
            } = fact
            {
                guard.insert(
                    party.clone(),
                    PartyScore {
                        score: f64::from_bits(*score_bits),
                        events: *events,
                        last_us: *at_us,
                    },
                );
            }
        }
    }

    /// All known parties and their raw (un-decayed) stored scores, in
    /// party order — for digests and tests.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.score))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engine() -> ScoringEngine {
        ScoringEngine::new(ScoringConfig::paper_defaults())
    }

    #[test]
    fn unknown_party_sits_at_prior() {
        assert_eq!(engine().score("Ghost", SimDuration::ZERO), 0.5);
    }

    #[test]
    fn outcomes_move_scores_like_the_ledger() {
        let e = engine();
        let now = SimDuration::ZERO;
        assert!((e.record("A", Outcome::Success, now) - 0.55).abs() < 1e-12);
        assert!((e.record("A", Outcome::Violation, now) - 0.35).abs() < 1e-12);
        assert!((e.record("A", Outcome::FailedNegotiation, now) - 0.25).abs() < 1e-12);
        assert!((e.record("A", Outcome::Abandonment, now) - 0.20).abs() < 1e-12);
        assert!((e.record("A", Outcome::FaultTimeout, now) - 0.18).abs() < 1e-12);
        assert_eq!(e.events_for("A"), 5);
    }

    #[test]
    fn clamped_noop_is_not_an_event() {
        let e = engine();
        let now = SimDuration::ZERO;
        for _ in 0..10 {
            e.record("V", Outcome::Violation, now);
        }
        assert_eq!(e.score("V", now), 0.0);
        let floor_events = e.events_for("V");
        // Already at the floor with no decay: another violation is a
        // fully-clamped no-op and must not count.
        e.record("V", Outcome::Violation, now);
        assert_eq!(e.events_for("V"), floor_events);
    }

    #[test]
    fn decay_relaxes_toward_prior_from_both_sides() {
        let mut config = ScoringConfig::paper_defaults();
        config.half_life = SimDuration::from_millis(1_000);
        let e = ScoringEngine::new(config);
        e.record("Good", Outcome::Success, SimDuration::ZERO); // 0.55
        e.record("Bad", Outcome::Violation, SimDuration::ZERO); // 0.30
        let later = SimDuration::from_millis(1_000); // one half-life
        assert!((e.score("Good", later) - 0.525).abs() < 1e-12);
        assert!((e.score("Bad", later) - 0.40).abs() < 1e-12);
        // Reads do not mutate: same answer twice.
        assert_eq!(e.score("Good", later), e.score("Good", later));
        // Far future: both sides converge to the prior.
        let far = SimDuration::from_millis(1_000_000);
        assert!((e.score("Good", far) - 0.5).abs() < 1e-9);
        assert!((e.score("Bad", far) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn journal_spill_and_restore_round_trip() {
        let journal = Arc::new(Journal::in_memory());
        let e = engine();
        e.attach_journal(journal.clone());
        let t = SimDuration::from_millis(5);
        e.record("A", Outcome::Success, t);
        e.record("B", Outcome::FailedNegotiation, t);
        e.record("A", Outcome::Success, SimDuration::from_millis(9));
        let replay = journal.replay();
        assert_eq!(replay.facts.len(), 3);
        let restored = engine();
        restored.restore_from_facts(&replay.facts);
        assert_eq!(restored.snapshot(), e.snapshot());
        assert_eq!(restored.events_for("A"), 2);
        assert_eq!(restored.events_for("B"), 1);
    }

    #[test]
    fn seeding_is_not_an_event_and_clamps() {
        let e = engine();
        e.seed([("L", 0.9), ("M", 7.0)], SimDuration::ZERO);
        assert_eq!(e.score("L", SimDuration::ZERO), 0.9);
        assert_eq!(e.score("M", SimDuration::ZERO), 1.0);
        assert_eq!(e.events_for("L"), 0);
    }

    proptest! {
        /// Bounds: any outcome sequence at any times keeps every score in
        /// [0, 1], with or without decay.
        #[test]
        fn scores_stay_bounded(
            ops in proptest::collection::vec((0u8..5, 0u64..10_000_000), 0..60),
            half_life_ms in 0u64..5_000,
        ) {
            let mut config = ScoringConfig::paper_defaults();
            config.half_life = SimDuration::from_millis(half_life_ms);
            let e = ScoringEngine::new(config);
            let mut now = 0u64;
            for (op, dt) in ops {
                now += dt;
                let outcome = match op {
                    0 => Outcome::Success,
                    1 => Outcome::Violation,
                    2 => Outcome::FailedNegotiation,
                    3 => Outcome::Abandonment,
                    _ => Outcome::FaultTimeout,
                };
                let score = e.record("X", outcome, SimDuration(now));
                prop_assert!((0.0..=1.0).contains(&score));
                let read = e.score("X", SimDuration(now + dt));
                prop_assert!((0.0..=1.0).contains(&read));
            }
        }

        /// Decay is a contraction toward the prior: it never overshoots
        /// and never increases the distance, and it is monotone in time.
        #[test]
        fn decay_contracts_toward_prior(
            score_milli in 0u32..=1_000,
            dt1 in 0u64..100_000_000,
            dt2 in 0u64..100_000_000,
            half_life_ms in 1u64..10_000,
        ) {
            let score = f64::from(score_milli) / 1_000.0;
            let mut config = ScoringConfig::paper_defaults();
            config.half_life = SimDuration::from_millis(half_life_ms);
            let d1 = config.decayed(score, SimDuration(dt1));
            prop_assert!((d1 - config.prior).abs() <= (score - config.prior).abs() + 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
            // Longer wait ⇒ closer to the prior.
            let (near, far) = (dt1.min(dt2), dt1.max(dt2));
            let dn = config.decayed(score, SimDuration(near));
            let df = config.decayed(score, SimDuration(far));
            prop_assert!((df - config.prior).abs() <= (dn - config.prior).abs() + 1e-12);
        }

        /// With decay disabled the engine reproduces the ledger: a pure
        /// fold of clamped deltas, independent of timestamps.
        #[test]
        fn no_decay_matches_plain_delta_fold(
            ops in proptest::collection::vec((0u8..5, 0u64..1_000_000), 0..40),
        ) {
            let e = engine();
            let mut expected = 0.5f64;
            let mut now = 0u64;
            for (op, dt) in ops {
                now += dt;
                let outcome = match op {
                    0 => Outcome::Success,
                    1 => Outcome::Violation,
                    2 => Outcome::FailedNegotiation,
                    3 => Outcome::Abandonment,
                    _ => Outcome::FaultTimeout,
                };
                let got = e.record("X", outcome, SimDuration(now));
                expected = (expected + e.config().delta_for(outcome)).clamp(0.0, 1.0);
                prop_assert!((got - expected).abs() < 1e-12);
            }
        }
    }
}
