//! Score → trust band → negotiation strategy and admission priority.
//!
//! The TN web service "supports the operations to carry on a TN according
//! to the standard, the strong suspicious, the suspicious and the trusting
//! negotiation strategies" (§6.2) — but the paper leaves *choosing* among
//! them to the coordinator. This module closes that gap: the counterpart's
//! reputation score selects the strategy (high trust ⇒ cheap trusting
//! negotiation; low trust ⇒ strong-suspicious with ownership proofs) and
//! an admission-queue priority, so well-reputed candidates are processed
//! first.
//!
//! Boundary semantics are pinned to match
//! `ReputationLedger::needs_replacement`, which uses a strict `<`: a party
//! *exactly at* a threshold clears it. Here too, `score == band minimum`
//! lands in the higher (more trusted) band.

use trust_vo_negotiation::Strategy;

/// A trust band, ordered from most to least trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrustBand {
    /// High reputation: negotiate with the cheap, disclosing
    /// [`Strategy::Trusting`].
    Trusting,
    /// Ordinary reputation (the prior lands here): [`Strategy::Standard`].
    Standard,
    /// Damaged reputation: [`Strategy::Suspicious`] — ownership proofs,
    /// no missing-credential disclosure.
    Suspicious,
    /// Near-floor reputation: [`Strategy::StrongSuspicious`] — minimal
    /// term disclosure on top.
    StrongSuspicious,
}

impl TrustBand {
    /// The negotiation strategy a coordinator uses against a counterpart
    /// in this band.
    pub fn strategy(self) -> Strategy {
        match self {
            TrustBand::Trusting => Strategy::Trusting,
            TrustBand::Standard => Strategy::Standard,
            TrustBand::Suspicious => Strategy::Suspicious,
            TrustBand::StrongSuspicious => Strategy::StrongSuspicious,
        }
    }

    /// Admission-queue rank: 0 is served first. More trusted ⇒ earlier.
    pub fn rank(self) -> u8 {
        match self {
            TrustBand::Trusting => 0,
            TrustBand::Standard => 1,
            TrustBand::Suspicious => 2,
            TrustBand::StrongSuspicious => 3,
        }
    }

    /// Stable lower-case name for obs fields and reports.
    pub fn name(self) -> &'static str {
        match self {
            TrustBand::Trusting => "trusting",
            TrustBand::Standard => "standard",
            TrustBand::Suspicious => "suspicious",
            TrustBand::StrongSuspicious => "strong_suspicious",
        }
    }
}

/// Band thresholds: the minimum score (inclusive — see the module docs on
/// boundary semantics) for each band above the bottom one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandConfig {
    /// `score >= trusting_min` ⇒ [`TrustBand::Trusting`].
    pub trusting_min: f64,
    /// `score >= standard_min` ⇒ at least [`TrustBand::Standard`].
    pub standard_min: f64,
    /// `score >= suspicious_min` ⇒ at least [`TrustBand::Suspicious`];
    /// below it, [`TrustBand::StrongSuspicious`].
    pub suspicious_min: f64,
}

impl BandConfig {
    /// Defaults placing the 0.5 prior in the Standard band: one success
    /// short of Trusting at 0.75 is deliberate — trust is *earned* by
    /// transacting, 0.4 keeps a party Standard through one failed TN, and
    /// 0.2 is the paper-exercised replacement threshold reused as the
    /// strong-suspicious floor.
    pub fn paper_defaults() -> Self {
        BandConfig {
            trusting_min: 0.75,
            standard_min: 0.4,
            suspicious_min: 0.2,
        }
    }

    /// The band for a score. Exact-threshold scores land in the higher
    /// band (strict-`<` demotion, matching `needs_replacement`).
    pub fn band_for(&self, score: f64) -> TrustBand {
        if score >= self.trusting_min {
            TrustBand::Trusting
        } else if score >= self.standard_min {
            TrustBand::Standard
        } else if score >= self.suspicious_min {
            TrustBand::Suspicious
        } else {
            TrustBand::StrongSuspicious
        }
    }

    /// The strategy for a score: [`BandConfig::band_for`] composed with
    /// [`TrustBand::strategy`].
    pub fn strategy_for(&self, score: f64) -> Strategy {
        self.band_for(score).strategy()
    }
}

impl Default for BandConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// A sortable admission-queue key: band rank first (more trusted bands
/// drain first), then descending weight (e.g. `quality × score`), with the
/// party name as the deterministic tiebreak. Build one per candidate and
/// sort ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueKey {
    /// The candidate's band rank ([`TrustBand::rank`]).
    pub rank: u8,
    /// Descending-order weight, stored negated-for-sort as raw bits.
    weight_bits: u64,
    /// The candidate's name (final tiebreak).
    pub party: String,
}

impl QueueKey {
    /// A key for a candidate with the given band and weight. NaN weights
    /// sort as the lowest weight in the band.
    pub fn new(band: TrustBand, weight: f64, party: impl Into<String>) -> Self {
        let w = if weight.is_nan() {
            f64::NEG_INFINITY
        } else {
            weight
        };
        // Total-order trick: map f64 to a u64 that sorts ascending
        // (negative values have the sign bit set, so invert all their
        // bits; non-negatives just get the sign bit flipped), then invert
        // once more so *bigger* weights sort first within a band.
        let bits = w.to_bits();
        let ascending = if bits >> 63 == 1 {
            !bits
        } else {
            bits ^ (1u64 << 63)
        };
        QueueKey {
            rank: band.rank(),
            weight_bits: !ascending,
            party: party.into(),
        }
    }
}

impl Eq for QueueKey {}

impl Ord for QueueKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.rank, self.weight_bits, &self.party).cmp(&(
            other.rank,
            other.weight_bits,
            &other.party,
        ))
    }
}

impl PartialOrd for QueueKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The default replacement threshold (paper §5.1 exercise: two violations
/// from the prior cross it). Documented here because admission banding
/// reuses the same strict-`<` comparison.
pub const REPLACEMENT_THRESHOLD: f64 = 0.2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_the_score_range() {
        let c = BandConfig::paper_defaults();
        assert_eq!(c.band_for(1.0), TrustBand::Trusting);
        assert_eq!(c.band_for(0.8), TrustBand::Trusting);
        assert_eq!(c.band_for(0.5), TrustBand::Standard);
        assert_eq!(c.band_for(0.3), TrustBand::Suspicious);
        assert_eq!(c.band_for(0.1), TrustBand::StrongSuspicious);
        assert_eq!(c.band_for(0.0), TrustBand::StrongSuspicious);
    }

    #[test]
    fn exact_threshold_lands_in_the_higher_band() {
        // Pinned boundary semantics: score == threshold clears it, the
        // same strict-`<` the replacement check uses.
        let c = BandConfig::paper_defaults();
        assert_eq!(c.band_for(0.75), TrustBand::Trusting);
        assert_eq!(c.band_for(0.4), TrustBand::Standard);
        assert_eq!(c.band_for(0.2), TrustBand::Suspicious);
        assert_eq!(c.band_for(0.75 - 1e-12), TrustBand::Standard);
        assert_eq!(c.band_for(0.2 - 1e-12), TrustBand::StrongSuspicious);
    }

    #[test]
    fn band_maps_to_strategy_and_rank() {
        assert_eq!(TrustBand::Trusting.strategy(), Strategy::Trusting);
        assert_eq!(TrustBand::Standard.strategy(), Strategy::Standard);
        assert_eq!(TrustBand::Suspicious.strategy(), Strategy::Suspicious);
        assert_eq!(
            TrustBand::StrongSuspicious.strategy(),
            Strategy::StrongSuspicious
        );
        assert!(TrustBand::Trusting.rank() < TrustBand::StrongSuspicious.rank());
        assert_eq!(BandConfig::default().strategy_for(0.5), Strategy::Standard);
    }

    #[test]
    fn queue_orders_by_band_then_weight_then_name() {
        let mut keys = [
            QueueKey::new(TrustBand::Standard, 0.9, "B"),
            QueueKey::new(TrustBand::Trusting, 0.1, "C"),
            QueueKey::new(TrustBand::Standard, 0.9, "A"),
            QueueKey::new(TrustBand::Standard, 1.5, "D"),
            QueueKey::new(TrustBand::StrongSuspicious, 9.0, "E"),
        ];
        keys.sort();
        let order: Vec<&str> = keys.iter().map(|k| k.party.as_str()).collect();
        // Trusting first despite tiny weight; within Standard the bigger
        // weight wins; ties break by name; bottom band drains last.
        assert_eq!(order, ["C", "D", "A", "B", "E"]);
    }
}
