//! Trust-sequence caching.
//!
//! Long-lived VOs repeat negotiations: the operation phase re-checks
//! certifications, members re-authorize flows, replacements re-run the
//! formation join (§5.1). The policy-evaluation phase is the expensive
//! part (AND-OR search over both policy sets), and — as long as neither
//! party's policies or profile changed — its result is deterministic. The
//! [`SequenceCache`] memoizes the agreed trust sequence per
//! `(requester, controller, resource, strategy)` and invalidates on a
//! fingerprint of both parties' negotiation state.
//!
//! Unlike [`crate::ticket`], caching is a *local* optimization: the
//! credential exchange phase (and all its verification) still runs, so a
//! revocation that happened since the last negotiation is still caught.

use crate::engine::{
    evaluate_policies, exchange_credentials, NegotiationConfig, NegotiationOutcome, PolicyPhase,
};
use crate::error::NegotiationError;
use crate::party::Party;
use crate::strategy::Strategy;
use crate::view::TrustSequence;
use std::collections::HashMap;
use trust_vo_crypto::sha256::Sha256;
use trust_vo_crypto::Digest;

/// A fingerprint of everything phase 1 depends on for one party.
fn party_fingerprint(party: &Party) -> Digest {
    let mut h = Sha256::new();
    h.update(party.name.as_bytes());
    h.update(&[0]);
    for cred in party.profile.credentials() {
        h.update(cred.id().0.as_bytes());
        h.update(&[1]);
        h.update(cred.cred_type().as_bytes());
        h.update(&[2]);
        h.update(party.profile.sensitivity_of(cred.id()).label().as_bytes());
        h.update(&[3]);
        h.update(&cred.header.validity.not_after.0.to_be_bytes());
    }
    h.update(&[0xff]);
    for policy in party.policies.iter() {
        h.update(policy.to_string().as_bytes());
        h.update(&[4]);
    }
    h.finalize()
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    requester: String,
    controller: String,
    resource: String,
    strategy: Strategy,
}

#[derive(Debug, Clone)]
struct Entry {
    requester_fp: Digest,
    controller_fp: Digest,
    sequence: TrustSequence,
}

/// Statistics for the cache ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Phase-1 computations skipped.
    pub hits: u64,
    /// Full phase-1 runs (cold or invalidated).
    pub misses: u64,
    /// Entries dropped because a fingerprint changed.
    pub invalidations: u64,
}

/// A memo of agreed trust sequences.
#[derive(Debug, Default)]
pub struct SequenceCache {
    entries: HashMap<Key, Entry>,
    stats: CacheStats,
}

impl SequenceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached sequences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Negotiate with sequence reuse: on a fingerprint-valid hit, phase 1
    /// is skipped and the cached sequence goes straight to the credential
    /// exchange phase; otherwise the full protocol runs and the resulting
    /// sequence is cached.
    pub fn negotiate(
        &mut self,
        requester: &Party,
        controller: &Party,
        resource: &str,
        cfg: &NegotiationConfig,
    ) -> Result<NegotiationOutcome, NegotiationError> {
        let key = Key {
            requester: requester.name.clone(),
            controller: controller.name.clone(),
            resource: resource.to_owned(),
            strategy: cfg.strategy,
        };
        let requester_fp = party_fingerprint(requester);
        let controller_fp = party_fingerprint(controller);
        if let Some(entry) = self.entries.get(&key) {
            if entry.requester_fp == requester_fp && entry.controller_fp == controller_fp {
                self.stats.hits += 1;
                let phase = PolicyPhase {
                    resource: resource.to_owned(),
                    sequence: entry.sequence.clone(),
                    transcript: crate::transcript::Transcript::new(),
                    tree: crate::tree::NegotiationTree::new(
                        resource,
                        crate::message::Side::Controller,
                    ),
                };
                return exchange_credentials(requester, controller, phase, cfg);
            }
            self.stats.invalidations += 1;
            self.entries.remove(&key);
        }
        self.stats.misses += 1;
        let phase = evaluate_policies(requester, controller, resource, cfg)?;
        self.entries.insert(
            key,
            Entry { requester_fp, controller_fp, sequence: phase.sequence.clone() },
        );
        exchange_credentials(requester, controller, phase, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{CredentialAuthority, CredentialError, TimeRange, Timestamp};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    fn parties() -> (Party, Party) {
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        let cred = ca.issue("Quality", "R", requester.keys.public, vec![], window()).unwrap();
        requester.profile.add(cred);
        controller.policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("Svc"),
            vec![Term::of_type("Quality")],
        ));
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());
        (requester, controller)
    }

    #[test]
    fn second_run_hits_and_produces_same_sequence() {
        let (requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        let first = cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        let second = cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        assert_eq!(first.sequence, second.sequence);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, invalidations: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn profile_change_invalidates() {
        let (mut requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        // The requester's profile changes (new credential) — the cached
        // sequence may no longer be optimal/valid.
        let mut ca = CredentialAuthority::new("CA2");
        let extra = ca.issue("Extra", "R", requester.keys.public, vec![], window()).unwrap();
        requester.profile.add(extra);
        cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn policy_change_invalidates() {
        let (requester, mut controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        controller
            .policies
            .add(DisclosurePolicy::deliv("extra", Resource::credential("Whatever")));
        cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn cached_exchange_still_detects_revocation() {
        let (requester, mut controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        // A revocation arrives at the controller (its own fingerprint is
        // unchanged — CRLs are not part of the phase-1 state).
        let victim = requester.profile.credentials()[0].id().clone();
        controller.crl.revoke(victim, at());
        let err = cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap_err();
        assert!(matches!(
            err,
            NegotiationError::TrustFailure { cause: CredentialError::Revoked { .. } }
        ));
        // The hit was counted — the cache worked; safety came from phase 2.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn different_strategies_cached_separately() {
        let (requester, controller) = parties();
        let mut cache = SequenceCache::new();
        for strategy in Strategy::ALL {
            let cfg = NegotiationConfig::new(strategy, at());
            cache.negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
    }
}
