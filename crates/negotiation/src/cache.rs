//! Trust-sequence caching.
//!
//! Long-lived VOs repeat negotiations: the operation phase re-checks
//! certifications, members re-authorize flows, replacements re-run the
//! formation join (§5.1). The policy-evaluation phase is the expensive
//! part (AND-OR search over both policy sets), and — as long as neither
//! party's policies or profile changed — its result is deterministic. The
//! [`SequenceCache`] memoizes the agreed trust sequence per
//! `(requester, controller, resource, strategy)` and invalidates on a
//! fingerprint of both parties' negotiation state.
//!
//! Unlike [`crate::ticket`], caching is a *local* optimization: the
//! credential exchange phase (and all its verification) still runs, so a
//! revocation that happened since the last negotiation is still caught.

use crate::engine::{
    evaluate_policies, exchange_credentials, NegotiationConfig, NegotiationOutcome, PolicyPhase,
};
use crate::error::NegotiationError;
use crate::party::Party;
use crate::strategy::Strategy;
use crate::view::TrustSequence;
use std::collections::{BTreeMap, HashMap};
use trust_vo_crypto::sha256::Sha256;
use trust_vo_crypto::Digest;
use trust_vo_obs::{Counter, Registry};

/// A fingerprint of everything phase 1 depends on for one party.
///
/// Each credential contributes its *full canonical XML encoding*
/// (header incl. issuer/subject keys and both validity bounds, every
/// content attribute, and the issuer signature), not just a projection
/// of selected header fields. A credential reissued under the same id —
/// new subject key, changed attributes, shifted `not_before` — therefore
/// changes the fingerprint and invalidates cached sequences instead of
/// serving a stale hit.
fn party_fingerprint(party: &Party) -> Digest {
    let mut h = Sha256::new();
    h.update(party.name.as_bytes());
    h.update(&[0]);
    for cred in party.profile.credentials() {
        // Field-by-field hashing covers the same content as the canonical
        // XML encoding (it is built from exactly these fields) without
        // materializing an element tree per negotiation — fingerprints run
        // on every cache access, and the parallel formation path is
        // sensitive to their cost.
        cred.hash_into(&mut h);
        h.update(&[1]);
        // Sensitivity lives in the profile, not the credential encoding.
        h.update(party.profile.sensitivity_of(cred.id()).label().as_bytes());
        h.update(&[2]);
    }
    h.update(&[0xff]);
    let mut sink = HashWrite(&mut h);
    for policy in party.policies.iter() {
        use std::fmt::Write;
        let _ = write!(sink, "{policy}");
        sink.0.update(&[3]);
    }
    h.finalize()
}

/// A `fmt::Write` adapter feeding formatted output straight into a hasher.
struct HashWrite<'a>(&'a mut Sha256);

impl std::fmt::Write for HashWrite<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.update(s.as_bytes());
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    requester: String,
    controller: String,
    resource: String,
    strategy: Strategy,
}

#[derive(Debug, Clone)]
struct Entry {
    requester_fp: Digest,
    controller_fp: Digest,
    sequence: TrustSequence,
    last_used: u64,
}

/// Statistics for the cache ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Phase-1 computations skipped.
    pub hits: u64,
    /// Full phase-1 runs (cold or invalidated).
    pub misses: u64,
    /// Entries dropped because a fingerprint changed.
    pub invalidations: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Element-wise sum (kept as a façade for external aggregation; the
    /// caches themselves now share atomic [`CacheMetrics`] instead of
    /// folding per-shard stats).
    pub fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// Atomic counters backing [`CacheStats`].
///
/// Cloning shares the underlying counters, which is how all shards of a
/// [`ConcurrentSequenceCache`] report into one set of totals — the old
/// per-shard `CacheStats` fold is gone. Counters work whether or not an
/// observability [`Registry`] is attached; [`CacheMetrics::in_registry`]
/// additionally publishes them under `cache.*` metric names.
#[derive(Debug, Clone, Default)]
pub struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
    evictions: Counter,
}

impl CacheMetrics {
    /// Fresh counters not published to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Counters registered in `registry` as `cache.hits`, `cache.misses`,
    /// `cache.invalidations`, and `cache.evictions`. Calling this twice
    /// with the same registry yields handles to the same counters.
    pub fn in_registry(registry: &Registry) -> Self {
        CacheMetrics {
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            invalidations: registry.counter("cache.invalidations"),
            evictions: registry.counter("cache.evictions"),
        }
    }

    /// Current totals as the plain [`CacheStats`] façade.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get(),
        }
    }
}

/// Default number of cached sequences per [`SequenceCache`].
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// A memo of agreed trust sequences, bounded by a least-recently-used
/// eviction policy.
#[derive(Debug)]
pub struct SequenceCache {
    entries: HashMap<Key, Entry>,
    /// LRU side index: `last_used` tick → key. Ticks are unique, so this
    /// is a total order; the first entry is the eviction victim.
    lru: BTreeMap<u64, Key>,
    capacity: usize,
    tick: u64,
    metrics: CacheMetrics,
}

impl Default for SequenceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SequenceCache {
    /// An empty cache with [`DEFAULT_CACHE_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache holding at most `capacity` sequences (`>= 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_metrics(capacity, CacheMetrics::detached())
    }

    /// An empty cache reporting into the given (possibly shared) metrics.
    pub fn with_metrics(capacity: usize, metrics: CacheMetrics) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        SequenceCache {
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            capacity,
            tick: 0,
            metrics,
        }
    }

    /// An empty cache publishing its metrics as `cache.*` in `registry`.
    pub fn observed(registry: &Registry) -> Self {
        Self::with_metrics(DEFAULT_CACHE_CAPACITY, CacheMetrics::in_registry(registry))
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.metrics.snapshot()
    }

    /// The configured maximum number of cached sequences.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached sequences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mark `key` as most recently used.
    fn touch(&mut self, key: &Key) {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(key) {
            self.lru.remove(&entry.last_used);
            entry.last_used = self.tick;
            self.lru.insert(self.tick, key.clone());
        }
    }

    /// Drop the least-recently-used entry to make room.
    fn evict_one(&mut self) {
        if let Some((&oldest, _)) = self.lru.iter().next() {
            if let Some(victim) = self.lru.remove(&oldest) {
                self.entries.remove(&victim);
                self.metrics.evictions.inc();
            }
        }
    }

    /// Look up a fingerprint-valid cached sequence, updating statistics:
    /// a valid entry counts a hit (and is touched), a stale entry counts
    /// an invalidation and is dropped, and absence counts a miss.
    fn lookup(
        &mut self,
        key: &Key,
        requester_fp: &Digest,
        controller_fp: &Digest,
    ) -> Option<TrustSequence> {
        if let Some(entry) = self.entries.get(key) {
            if entry.requester_fp == *requester_fp && entry.controller_fp == *controller_fp {
                self.metrics.hits.inc();
                let sequence = entry.sequence.clone();
                self.touch(key);
                return Some(sequence);
            }
            self.metrics.invalidations.inc();
            if let Some(old) = self.entries.remove(key) {
                self.lru.remove(&old.last_used);
            }
        }
        self.metrics.misses.inc();
        None
    }

    /// Insert a freshly computed sequence, evicting if at capacity.
    fn store(
        &mut self,
        key: Key,
        requester_fp: Digest,
        controller_fp: Digest,
        sequence: TrustSequence,
    ) {
        if self.entries.len() >= self.capacity {
            self.evict_one();
        }
        self.tick += 1;
        self.lru.insert(self.tick, key.clone());
        self.entries.insert(
            key,
            Entry {
                requester_fp,
                controller_fp,
                sequence,
                last_used: self.tick,
            },
        );
    }

    /// Negotiate with sequence reuse: on a fingerprint-valid hit, phase 1
    /// is skipped and the cached sequence goes straight to the credential
    /// exchange phase; otherwise the full protocol runs and the resulting
    /// sequence is cached.
    pub fn negotiate(
        &mut self,
        requester: &Party,
        controller: &Party,
        resource: &str,
        cfg: &NegotiationConfig,
    ) -> Result<NegotiationOutcome, NegotiationError> {
        let key = Key {
            requester: requester.name.clone(),
            controller: controller.name.clone(),
            resource: resource.to_owned(),
            strategy: cfg.strategy,
        };
        let requester_fp = party_fingerprint(requester);
        let controller_fp = party_fingerprint(controller);
        if let Some(sequence) = self.lookup(&key, &requester_fp, &controller_fp) {
            let phase = cached_phase(resource, sequence);
            return exchange_credentials(requester, controller, phase, cfg);
        }
        let phase = evaluate_policies(requester, controller, resource, cfg)?;
        self.store(key, requester_fp, controller_fp, phase.sequence.clone());
        exchange_credentials(requester, controller, phase, cfg)
    }
}

/// A [`PolicyPhase`] reconstructed from a cached sequence: an empty
/// transcript (phase 1 was skipped) and a fresh tree.
fn cached_phase(resource: &str, sequence: TrustSequence) -> PolicyPhase {
    PolicyPhase {
        resource: resource.to_owned(),
        sequence,
        transcript: crate::transcript::Transcript::new(),
        tree: crate::tree::NegotiationTree::new(resource, crate::message::Side::Controller),
    }
}

/// Default shard count for [`ConcurrentSequenceCache`].
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// A sharded, thread-safe sequence cache for parallel batch admission.
///
/// Keys are distributed over N independently locked [`SequenceCache`]
/// shards by hash, so concurrent negotiations over different pairs rarely
/// contend. The expensive work — phase-1 policy evaluation and phase-2
/// credential exchange — always runs *outside* the shard lock; a shard is
/// only held for the memo lookup or insert itself.
#[derive(Debug)]
pub struct ConcurrentSequenceCache {
    shards: Vec<parking_lot::Mutex<SequenceCache>>,
    /// Shared by every shard, so totals are exact under concurrency
    /// without ever folding per-shard snapshots.
    metrics: CacheMetrics,
}

impl Default for ConcurrentSequenceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSequenceCache {
    /// [`DEFAULT_CACHE_SHARDS`] shards of [`DEFAULT_CACHE_CAPACITY`] each.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_CACHE_SHARDS, DEFAULT_CACHE_CAPACITY)
    }

    /// `shards` independently locked caches of `capacity_per_shard` each.
    pub fn with_shards(shards: usize, capacity_per_shard: usize) -> Self {
        Self::with_shards_and_metrics(shards, capacity_per_shard, CacheMetrics::detached())
    }

    /// Default-sized cache publishing `cache.*` metrics in `registry`.
    pub fn observed(registry: &Registry) -> Self {
        Self::with_shards_and_metrics(
            DEFAULT_CACHE_SHARDS,
            DEFAULT_CACHE_CAPACITY,
            CacheMetrics::in_registry(registry),
        )
    }

    /// Full control: shard count, per-shard capacity, and the metrics all
    /// shards report into.
    pub fn with_shards_and_metrics(
        shards: usize,
        capacity_per_shard: usize,
        metrics: CacheMetrics,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ConcurrentSequenceCache {
            shards: (0..shards)
                .map(|_| {
                    parking_lot::Mutex::new(SequenceCache::with_metrics(
                        capacity_per_shard,
                        metrics.clone(),
                    ))
                })
                .collect(),
            metrics,
        }
    }

    fn shard_for(&self, key: &Key) -> &parking_lot::Mutex<SequenceCache> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    /// Negotiate with sequence reuse, safe to call from many threads.
    /// Semantics match [`SequenceCache::negotiate`]; two threads missing
    /// on the same key may both run phase 1 (last insert wins), which is
    /// wasteful but correct — the memo only ever holds computed results.
    pub fn negotiate(
        &self,
        requester: &Party,
        controller: &Party,
        resource: &str,
        cfg: &NegotiationConfig,
    ) -> Result<NegotiationOutcome, NegotiationError> {
        let key = Key {
            requester: requester.name.clone(),
            controller: controller.name.clone(),
            resource: resource.to_owned(),
            strategy: cfg.strategy,
        };
        let requester_fp = party_fingerprint(requester);
        let controller_fp = party_fingerprint(controller);
        let cached = self
            .shard_for(&key)
            .lock()
            .lookup(&key, &requester_fp, &controller_fp);
        if let Some(sequence) = cached {
            let phase = cached_phase(resource, sequence);
            return exchange_credentials(requester, controller, phase, cfg);
        }
        let phase = evaluate_policies(requester, controller, resource, cfg)?;
        self.shard_for(&key).lock().store(
            key.clone(),
            requester_fp,
            controller_fp,
            phase.sequence.clone(),
        );
        exchange_credentials(requester, controller, phase, cfg)
    }

    /// Aggregate statistics over all shards. Exact even under concurrent
    /// access: shards share one [`CacheMetrics`], so nothing is lost to a
    /// racy per-shard fold.
    pub fn stats(&self) -> CacheStats {
        self.metrics.snapshot()
    }

    /// Total cached sequences across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{CredentialAuthority, CredentialError, TimeRange, Timestamp};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    fn parties() -> (Party, Party) {
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        let cred = ca
            .issue("Quality", "R", requester.keys.public, vec![], window())
            .unwrap();
        requester.profile.add(cred);
        controller.policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("Svc"),
            vec![Term::of_type("Quality")],
        ));
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());
        (requester, controller)
    }

    #[test]
    fn second_run_hits_and_produces_same_sequence() {
        let (requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        let first = cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        let second = cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        assert_eq!(first.sequence, second.sequence);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reissued_credential_with_same_id_invalidates() {
        use trust_vo_credential::Credential;
        use trust_vo_crypto::KeyPair;

        let (mut requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();

        // Reissue the credential under the SAME id, type, sensitivity, and
        // not_after — only the subject key differs. A fingerprint built from
        // selected header fields would treat this as unchanged and serve a
        // stale hit; the full-encoding fingerprint must invalidate.
        let old = requester.profile.credentials()[0].clone();
        let rogue_keys = KeyPair::from_seed(b"rogue-subject");
        let mut header = old.header.clone();
        header.subject_key = rogue_keys.public;
        let ca_keys = KeyPair::from_seed(b"authority:CA");
        let reissued = Credential::issue_signed(header, old.content.clone(), &ca_keys);
        assert_eq!(reissued.id(), old.id());
        assert_eq!(
            reissued.header.validity.not_after,
            old.header.validity.not_after
        );
        requester.profile.remove(old.id());
        requester.profile.add(reissued);

        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0, "stale cache hit on a reissued credential");
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let (requester, controller) = parties();
        let mut cache = SequenceCache::with_capacity(2);
        let cfg_of = |s| NegotiationConfig::new(s, at());
        let [a, b, c, _] = Strategy::ALL;

        cache
            .negotiate(&requester, &controller, "Svc", &cfg_of(a))
            .unwrap();
        cache
            .negotiate(&requester, &controller, "Svc", &cfg_of(b))
            .unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        cache
            .negotiate(&requester, &controller, "Svc", &cfg_of(a))
            .unwrap();
        // Inserting `c` exceeds capacity and evicts `b`.
        cache
            .negotiate(&requester, &controller, "Svc", &cfg_of(c))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);

        // `a` survived the eviction...
        cache
            .negotiate(&requester, &controller, "Svc", &cfg_of(a))
            .unwrap();
        assert_eq!(cache.stats().hits, 2);
        // ...while `b` was dropped and must recompute.
        let misses_before = cache.stats().misses;
        cache
            .negotiate(&requester, &controller, "Svc", &cfg_of(b))
            .unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn concurrent_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentSequenceCache>();
    }

    #[test]
    fn concurrent_cache_matches_serial_semantics() {
        let (requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let cache = ConcurrentSequenceCache::new();
        let first = cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        let second = cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        assert_eq!(first.sequence, second.sequence);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_cache_invalidates_on_reissue() {
        let (mut requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let cache = ConcurrentSequenceCache::new();
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        let mut ca = CredentialAuthority::new("CA2");
        let extra = ca
            .issue("Extra", "R", requester.keys.public, vec![], window())
            .unwrap();
        requester.profile.add(extra);
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn concurrent_cache_shared_across_threads() {
        let (requester, controller) = parties();
        let cache = ConcurrentSequenceCache::new();
        // 4 strategies × 4 repeats each, all through one shared cache.
        crossbeam::thread::scope(|s| {
            for strategy in Strategy::ALL {
                for _ in 0..4 {
                    let (cache, requester, controller) = (&cache, &requester, &controller);
                    s.spawn(move |_| {
                        let cfg = NegotiationConfig::new(strategy, at());
                        cache.negotiate(requester, controller, "Svc", &cfg).unwrap();
                    });
                }
            }
        })
        .unwrap();
        let stats = cache.stats();
        // Every negotiation either hit or missed; at least one miss per
        // strategy, and no entry was ever stale or evicted.
        assert_eq!(stats.hits + stats.misses, 16);
        assert!(stats.misses >= 4, "{stats:?}");
        assert_eq!(stats.invalidations, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn stats_conserved_across_16_shards_under_concurrent_access() {
        // Satellite regression: the old `stats()` folded per-shard
        // `CacheStats`, which was only exact by luck of timing. The shared
        // CacheMetrics must conserve every event: each negotiate() call is
        // exactly one hit or one miss, and evictions are forced by giving
        // each shard a capacity of 1.
        let (requester, controller) = parties();
        let cache = ConcurrentSequenceCache::with_shards(16, 1);
        const THREADS: usize = 8;
        const CALLS_PER_THREAD: usize = 24;
        crossbeam::thread::scope(|s| {
            for t in 0..THREADS {
                let (cache, requester, controller) = (&cache, &requester, &controller);
                s.spawn(move |_| {
                    for i in 0..CALLS_PER_THREAD {
                        // Ungoverned resources (no policy matches ⇒ trivially
                        // granted) keep each negotiation cheap while still
                        // exercising lookup/store on many keys.
                        let resource = format!("R{}", (t * CALLS_PER_THREAD + i) % 40);
                        let cfg = NegotiationConfig::new(Strategy::Standard, at());
                        cache
                            .negotiate(requester, controller, &resource, &cfg)
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let stats = cache.stats();
        let total = (THREADS * CALLS_PER_THREAD) as u64;
        assert_eq!(stats.hits + stats.misses, total, "{stats:?}");
        assert_eq!(stats.invalidations, 0, "{stats:?}");
        assert!(
            stats.evictions > 0,
            "capacity 1/shard must evict: {stats:?}"
        );
        // Evicted entries were inserted by misses and no longer resident.
        assert_eq!(
            cache.len() as u64,
            stats.misses - stats.evictions,
            "{stats:?}"
        );
    }

    #[test]
    fn observed_cache_publishes_registry_counters() {
        let (requester, controller) = parties();
        let registry = Registry::new();
        let cache = ConcurrentSequenceCache::observed(&registry);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cache.hits"), 1);
        assert_eq!(snap.counter("cache.misses"), 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn stats_merge_sums_fields() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            invalidations: 3,
            evictions: 4,
        };
        let b = CacheStats {
            hits: 10,
            misses: 20,
            invalidations: 30,
            evictions: 40,
        };
        assert_eq!(
            a.merge(b),
            CacheStats {
                hits: 11,
                misses: 22,
                invalidations: 33,
                evictions: 44
            }
        );
    }

    #[test]
    fn profile_change_invalidates() {
        let (mut requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        // The requester's profile changes (new credential) — the cached
        // sequence may no longer be optimal/valid.
        let mut ca = CredentialAuthority::new("CA2");
        let extra = ca
            .issue("Extra", "R", requester.keys.public, vec![], window())
            .unwrap();
        requester.profile.add(extra);
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn policy_change_invalidates() {
        let (requester, mut controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        controller.policies.add(DisclosurePolicy::deliv(
            "extra",
            Resource::credential("Whatever"),
        ));
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn cached_exchange_still_detects_revocation() {
        let (requester, mut controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let mut cache = SequenceCache::new();
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        // A revocation arrives at the controller (its own fingerprint is
        // unchanged — CRLs are not part of the phase-1 state).
        let victim = requester.profile.credentials()[0].id().clone();
        controller.crl.revoke(victim, at());
        let err = cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap_err();
        assert!(matches!(
            err,
            NegotiationError::TrustFailure {
                cause: CredentialError::Revoked { .. }
            }
        ));
        // The hit was counted — the cache worked; safety came from phase 2.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn abandoned_phase1_leaves_no_phantom_entry() {
        // Satellite: a negotiation abandoned mid-flight — phase 1 never
        // produces a sequence — must not leave a phantom cache entry, and
        // the stats must still account for every attempt.
        let (mut requester, controller) = parties();
        let id = requester.profile.credentials()[0].id().clone();
        requester.profile.remove(&id);
        let cache = ConcurrentSequenceCache::with_shards(16, 1);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        for _ in 0..5 {
            let err = cache
                .negotiate(&requester, &controller, "Svc", &cfg)
                .unwrap_err();
            assert!(matches!(err, NegotiationError::NoTrustSequence { .. }));
        }
        assert!(cache.is_empty(), "phantom entry after abandoned phase 1");
        let stats = cache.stats();
        // Every attempt was a miss (nothing was ever stored to hit on),
        // and nothing was invalidated or evicted.
        assert_eq!(
            stats,
            CacheStats {
                hits: 0,
                misses: 5,
                invalidations: 0,
                evictions: 0
            }
        );
    }

    #[test]
    fn abandoned_phase2_keeps_valid_sequence_without_double_entry() {
        // A negotiation that agrees a sequence but dies in phase 2 (here:
        // a revocation discovered mid-exchange) keeps the — still valid —
        // memoized sequence, and retries hit it instead of duplicating it.
        let (requester, mut controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let cache = ConcurrentSequenceCache::new();
        cache
            .negotiate(&requester, &controller, "Svc", &cfg)
            .unwrap();
        let victim = requester.profile.credentials()[0].id().clone();
        controller.crl.revoke(victim, at());
        for _ in 0..3 {
            let err = cache
                .negotiate(&requester, &controller, "Svc", &cfg)
                .unwrap_err();
            assert!(matches!(err, NegotiationError::TrustFailure { .. }));
        }
        assert_eq!(
            cache.len(),
            1,
            "phase-2 failures must not duplicate entries"
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn stat_conservation_holds_with_concurrent_abandonment() {
        // Mixed workload: one requester succeeds, one abandons every
        // negotiation in phase 1. Residency and stats must still conserve:
        // hits + misses == attempts, and every resident entry was stored
        // by a *successful* phase 1 (failures store nothing).
        let (good, controller) = parties();
        let (mut bad, _) = parties();
        bad.name = "R-bad".into();
        let id = bad.profile.credentials()[0].id().clone();
        bad.profile.remove(&id);

        const RESOURCES: usize = 10;
        const REPEATS: usize = 4;
        let cache = ConcurrentSequenceCache::with_shards(16, DEFAULT_CACHE_CAPACITY);
        crossbeam::thread::scope(|s| {
            for r in 0..RESOURCES {
                for _ in 0..REPEATS {
                    let (cache, good, bad, controller) = (&cache, &good, &bad, &controller);
                    s.spawn(move |_| {
                        let cfg = NegotiationConfig::new(Strategy::Standard, at());
                        // Ungoverned resources: trivially granted for the
                        // good requester; `Svc` fails for the bad one.
                        let resource = format!("R{r}");
                        cache.negotiate(good, controller, &resource, &cfg).unwrap();
                        cache.negotiate(bad, controller, "Svc", &cfg).unwrap_err();
                    });
                }
            }
        })
        .unwrap();
        let stats = cache.stats();
        let attempts = (RESOURCES * REPEATS * 2) as u64;
        assert_eq!(stats.hits + stats.misses, attempts, "{stats:?}");
        assert_eq!(stats.invalidations, 0, "{stats:?}");
        assert_eq!(stats.evictions, 0, "{stats:?}");
        // Exactly one resident entry per successful key; the bad
        // requester's 40 abandoned attempts left nothing behind.
        assert_eq!(cache.len(), RESOURCES);
        // All abandoned attempts missed (their key never gets an entry).
        assert!(stats.misses >= (RESOURCES * REPEATS) as u64, "{stats:?}");
    }

    #[test]
    fn different_strategies_cached_separately() {
        let (requester, controller) = parties();
        let mut cache = SequenceCache::new();
        for strategy in Strategy::ALL {
            let cfg = NegotiationConfig::new(strategy, at());
            cache
                .negotiate(&requester, &controller, "Svc", &cfg)
                .unwrap();
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
    }
}
