//! The Trust-X negotiation strategies.
//!
//! Trust-X offers "a number of negotiation strategies catering to different
//! levels of confidentiality that may be required by the negotiation
//! parties" (§1), and the TN web service "supports the operations to carry
//! on a TN according to the standard, the strong suspicious, the suspicious
//! and the trusting negotiation strategies" (§6.2).
//!
//! The strategies differ in *what is revealed while negotiating*, not in
//! whether a satisfiable negotiation succeeds (all four are complete):
//!
//! | strategy          | reveals "I lack X" | batches alternatives | ownership proofs | policies for unheld creds |
//! |-------------------|--------------------|----------------------|------------------|---------------------------|
//! | Trusting          | yes                | yes (all at once)    | no               | disclosed                 |
//! | Standard          | yes                | no (one at a time)   | no               | disclosed                 |
//! | Suspicious        | no                 | no                   | yes              | withheld                  |
//! | StrongSuspicious  | no                 | no                   | yes              | withheld + minimal terms  |
//!
//! §6.3 adds a format constraint: "A drawback of using X509 v2 credentials
//! is that only the standard and trusting negotiation strategies can be
//! adopted, because this standard does not support partial hiding of the
//! credential contents" — lifted by the selective-disclosure extension.

/// The credential wire format a negotiation runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CredentialFormat {
    /// The proprietary X-TNL XML format (full Trust-X feature set).
    Xtnl,
    /// Plain X.509 v2 attribute certificates (attributes in the clear).
    X509v2,
    /// X.509 v2 with hash-commitment attributes (the §6.3 extension).
    SelectiveX509,
}

/// A Trust-X negotiation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Disclose policies freely and batch all alternatives per resource:
    /// fastest, least confidential.
    Trusting,
    /// The default: alternatives offered one at a time.
    Standard,
    /// Never reveal which credentials the party lacks; require ownership
    /// proofs on received credentials.
    Suspicious,
    /// Suspicious, plus minimal term disclosure (one term per message).
    StrongSuspicious,
}

impl Strategy {
    /// All strategies, in the order the paper lists them in §6.2.
    pub const ALL: [Strategy; 4] = [
        Strategy::Standard,
        Strategy::StrongSuspicious,
        Strategy::Suspicious,
        Strategy::Trusting,
    ];

    /// Does the strategy tell the counterpart *which* requested credential
    /// it does not possess ("the receiver informs the other party that it
    /// does not possess the requested credentials", §4.2)? The suspicious
    /// variants decline without detail instead.
    pub fn reveals_missing(self) -> bool {
        matches!(self, Strategy::Trusting | Strategy::Standard)
    }

    /// Does the strategy send every alternative policy for a resource in
    /// one message (fewer rounds, more disclosure)?
    pub fn batches_alternatives(self) -> bool {
        matches!(self, Strategy::Trusting)
    }

    /// Does the strategy demand an ownership proof with every disclosed
    /// credential?
    pub fn requires_ownership_proof(self) -> bool {
        matches!(self, Strategy::Suspicious | Strategy::StrongSuspicious)
    }

    /// Does the strategy withhold disclosure policies that protect
    /// credentials the party does not actually hold (avoiding the leak
    /// "party P has a policy about X ⇒ P probably has X")?
    pub fn withholds_unheld_policies(self) -> bool {
        matches!(self, Strategy::Suspicious | Strategy::StrongSuspicious)
    }

    /// Messages per policy disclosure: strong-suspicious sends one term per
    /// message; the others send whole policies.
    pub fn terms_per_message(self) -> usize {
        match self {
            Strategy::StrongSuspicious => 1,
            _ => usize::MAX,
        }
    }

    /// Can the strategy run over the given credential format (§6.3)?
    pub fn compatible_with(self, format: CredentialFormat) -> bool {
        match format {
            CredentialFormat::Xtnl | CredentialFormat::SelectiveX509 => true,
            CredentialFormat::X509v2 => {
                matches!(self, Strategy::Standard | Strategy::Trusting)
            }
        }
    }

    /// Lowercase wire name (used in `StartNegotiationRequest`).
    pub fn wire_name(self) -> &'static str {
        match self {
            Strategy::Trusting => "trusting",
            Strategy::Standard => "standard",
            Strategy::Suspicious => "suspicious",
            Strategy::StrongSuspicious => "strong-suspicious",
        }
    }

    /// Parse the wire name.
    pub fn from_wire_name(text: &str) -> Option<Self> {
        match text {
            "trusting" => Some(Strategy::Trusting),
            "standard" => Some(Strategy::Standard),
            "suspicious" => Some(Strategy::Suspicious),
            "strong-suspicious" => Some(Strategy::StrongSuspicious),
            _ => None,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidentiality_ordering() {
        // Trusting reveals the most, strong-suspicious the least.
        assert!(Strategy::Trusting.reveals_missing());
        assert!(Strategy::Standard.reveals_missing());
        assert!(!Strategy::Suspicious.reveals_missing());
        assert!(!Strategy::StrongSuspicious.reveals_missing());
        assert!(Strategy::Trusting.batches_alternatives());
        assert!(!Strategy::Standard.batches_alternatives());
    }

    #[test]
    fn x509_restriction_matches_paper() {
        // §6.3: plain X.509v2 supports only standard and trusting.
        for s in Strategy::ALL {
            let ok = s.compatible_with(CredentialFormat::X509v2);
            assert_eq!(
                ok,
                matches!(s, Strategy::Standard | Strategy::Trusting),
                "{s}"
            );
            // Every strategy works on X-TNL and on the selective extension.
            assert!(s.compatible_with(CredentialFormat::Xtnl));
            assert!(s.compatible_with(CredentialFormat::SelectiveX509));
        }
    }

    #[test]
    fn wire_names_roundtrip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_wire_name(s.wire_name()), Some(s));
        }
        assert_eq!(Strategy::from_wire_name("bogus"), None);
    }

    #[test]
    fn strong_suspicious_minimizes_terms_per_message() {
        assert_eq!(Strategy::StrongSuspicious.terms_per_message(), 1);
        assert_eq!(Strategy::Standard.terms_per_message(), usize::MAX);
    }
}
