//! Failure taxonomy for negotiations.
//!
//! "The process ends with the disclosure of the requested resource or, if
//! any unforeseen event happens, an interruption. If the failure is related
//! to trust, for example a party uses a revoked certificate, the
//! negotiation fails." (§4.2)

use trust_vo_credential::CredentialError;

/// Why a negotiation did not succeed.
#[derive(Debug, Clone, PartialEq)]
pub enum NegotiationError {
    /// The policy evaluation phase found no satisfiable view: no trust
    /// sequence exists for the requested resource.
    NoTrustSequence {
        /// The requested resource.
        resource: String,
    },
    /// A trust failure during the credential exchange phase (revoked,
    /// expired, forged, or not-owned credential).
    TrustFailure {
        /// The underlying credential error.
        cause: CredentialError,
    },
    /// The chosen strategy is incompatible with the credential format in
    /// use (§6.3: suspicious strategies require partial hiding, which plain
    /// X.509 v2 does not support).
    IncompatibleFormat {
        /// Human-readable explanation.
        detail: String,
    },
    /// The counterpart interrupted the negotiation.
    Interrupted {
        /// Reason given, if any.
        reason: String,
    },
}

impl std::fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoTrustSequence { resource } => {
                write!(f, "no trust sequence exists for resource '{resource}'")
            }
            Self::TrustFailure { cause } => write!(f, "trust failure: {cause}"),
            Self::IncompatibleFormat { detail } => {
                write!(f, "strategy/format incompatibility: {detail}")
            }
            Self::Interrupted { reason } => write!(f, "negotiation interrupted: {reason}"),
        }
    }
}

impl std::error::Error for NegotiationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::TrustFailure { cause } => Some(cause),
            _ => None,
        }
    }
}

impl From<CredentialError> for NegotiationError {
    fn from(cause: CredentialError) -> Self {
        NegotiationError::TrustFailure { cause }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NegotiationError::NoTrustSequence {
            resource: "VoMembership".into(),
        };
        assert!(e.to_string().contains("VoMembership"));
        let e: NegotiationError = CredentialError::Revoked {
            cred_id: "c1".into(),
        }
        .into();
        assert!(e.to_string().contains("revoked"));
        assert!(std::error::Error::source(&e).is_some());
        let e = NegotiationError::Interrupted {
            reason: "timeout".into(),
        };
        assert!(std::error::Error::source(&e).is_none());
    }
}
