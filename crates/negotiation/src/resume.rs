//! Suspend/resume for interrupted negotiations.
//!
//! The paper motivates trust tickets so that repeated or *interrupted*
//! negotiations between the same parties need not restart from scratch
//! (§5.1). This module provides the controller-side machinery: when a
//! phase-2 credential exchange dies mid-flight (transport loss, endpoint
//! crash), the controller has already **checkpointed** the agreed trust
//! sequence and its progress cursor to durable storage, and every progress
//! response carries a signed, `TrustTicket`-style **resume token**. A
//! re-connecting requester presents the token; the controller verifies it
//! (signature, half-open validity window — see
//! [`crate::ticket::session_window_contains`] — and party binding), reloads
//! the checkpoint, and the exchange continues from the cursor instead of
//! re-running phase 1.
//!
//! Wire format: both artifacts serialize to XML so they ride inside the
//! SOAP-style envelopes of the `trust-vo-soa` crate.

use crate::engine::PolicyPhase;
use crate::message::Side;
use crate::strategy::Strategy;
use crate::ticket::session_window_contains;
use crate::transcript::Transcript;
use crate::tree::NegotiationTree;
use crate::view::{Disclosure, TrustSequence};
use trust_vo_credential::{CredentialError, CredentialId, TimeRange, Timestamp};
use trust_vo_crypto::{hex, sha256, Digest, KeyPair, PublicKey, Signature};
use trust_vo_xmldoc::Element;

fn side_wire_name(side: Side) -> &'static str {
    match side {
        Side::Requester => "requester",
        Side::Controller => "controller",
    }
}

fn side_from_wire(text: &str) -> Option<Side> {
    match text {
        "requester" => Some(Side::Requester),
        "controller" => Some(Side::Controller),
        _ => None,
    }
}

/// A durable snapshot of an in-flight negotiation, taken by the controller
/// after phase 1 and after every verified phase-2 disclosure. The
/// checkpoint is everything needed to rebuild the session: the agreed
/// trust sequence and how far into it the exchange has progressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeCheckpoint {
    /// The requesting party.
    pub requester: String,
    /// The controlling party (checkpoint owner).
    pub controller: String,
    /// The negotiated resource.
    pub resource: String,
    /// The strategy the negotiation runs under.
    pub strategy: Strategy,
    /// The agreed trust sequence from phase 1.
    pub sequence: TrustSequence,
    /// Index of the next disclosure to execute (everything before it has
    /// been disclosed *and verified*).
    pub next: usize,
}

impl ResumeCheckpoint {
    /// Snapshot a negotiation at cursor `next`.
    pub fn new(
        requester: impl Into<String>,
        controller: impl Into<String>,
        resource: impl Into<String>,
        strategy: Strategy,
        sequence: TrustSequence,
        next: usize,
    ) -> Self {
        ResumeCheckpoint {
            requester: requester.into(),
            controller: controller.into(),
            resource: resource.into(),
            strategy,
            sequence,
            next,
        }
    }

    /// Disclosures still to run.
    pub fn remaining(&self) -> usize {
        self.sequence.len().saturating_sub(self.next)
    }

    /// Serialize for durable storage.
    pub fn to_xml(&self) -> Element {
        let mut seq = Element::new("sequence");
        for d in self.sequence.disclosures() {
            seq = seq.child(
                Element::new("disclosure")
                    .attr("by", side_wire_name(d.by))
                    .attr("id", &d.cred_id.0)
                    .attr("type", &d.cred_type),
            );
        }
        Element::new("ResumeCheckpoint")
            .attr("requester", &self.requester)
            .attr("controller", &self.controller)
            .attr("resource", &self.resource)
            .attr("strategy", self.strategy.wire_name())
            .attr("next", self.next.to_string())
            .child(seq)
    }

    /// Parse a stored checkpoint. Returns `None` on any malformation.
    pub fn from_xml(root: &Element) -> Option<Self> {
        if root.name != "ResumeCheckpoint" {
            return None;
        }
        let strategy = Strategy::from_wire_name(root.get_attr("strategy")?)?;
        let next = root.get_attr("next")?.parse().ok()?;
        let mut sequence = TrustSequence::new();
        for d in root.first("sequence")?.elements() {
            if d.name != "disclosure" {
                return None;
            }
            sequence.push(Disclosure {
                by: side_from_wire(d.get_attr("by")?)?,
                cred_id: CredentialId(d.get_attr("id")?.to_string()),
                cred_type: d.get_attr("type")?.to_string(),
            });
        }
        if next > sequence.len() {
            return None;
        }
        Some(ResumeCheckpoint {
            requester: root.get_attr("requester")?.to_string(),
            controller: root.get_attr("controller")?.to_string(),
            resource: root.get_attr("resource")?.to_string(),
            strategy,
            sequence,
            next,
        })
    }

    /// Content digest, bound into the [`ResumeToken`] signature so a token
    /// cannot be replayed against a different negotiation's checkpoint.
    pub fn digest(&self) -> Digest {
        sha256(trust_vo_xmldoc::to_string(&self.to_xml()).as_bytes())
    }

    /// Rebuild the phase-1 result this checkpoint snapshotted, ready to be
    /// handed back to the phase-2 executor.
    pub fn into_phase(self) -> PolicyPhase {
        let tree = NegotiationTree::new(self.resource.clone(), Side::Controller);
        PolicyPhase {
            resource: self.resource,
            sequence: self.sequence,
            transcript: Transcript::new(),
            tree,
        }
    }
}

/// Why a presented [`ResumeToken`] was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The issuer signature over the token fields does not verify.
    BadSignature,
    /// The token is outside its validity window at the presented instant
    /// (start-inclusive, end-exclusive).
    Expired {
        /// The instant the token was presented at.
        at: Timestamp,
    },
    /// The token names different parties or a different resource than the
    /// session being resumed.
    WrongScope,
    /// The token's checkpoint digest does not match the stored checkpoint.
    CheckpointMismatch,
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::BadSignature => f.write_str("resume token signature invalid"),
            ResumeError::Expired { at } => write!(f, "resume token expired at {at:?}"),
            ResumeError::WrongScope => f.write_str("resume token names a different session"),
            ResumeError::CheckpointMismatch => {
                f.write_str("resume token bound to a different checkpoint")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<ResumeError> for CredentialError {
    fn from(e: ResumeError) -> Self {
        match e {
            ResumeError::Expired { at } => CredentialError::Expired {
                cred_id: "resume-token".into(),
                at,
            },
            _ => CredentialError::BadSignature {
                cred_id: "resume-token".into(),
            },
        }
    }
}

/// A signed, short-lived session token — the [`crate::ticket::TrustTicket`]
/// idea applied to an *unfinished* negotiation. It binds (holder, issuer,
/// resource, checkpoint digest, validity) under the issuer's signature; the
/// validity window is half-open exactly like a trust ticket's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeToken {
    /// Checkpoint slot id at the issuing controller.
    pub token_id: u64,
    /// The requester the token was granted to.
    pub holder: String,
    /// The holder's public key (the resumed session re-binds to it).
    pub holder_key: PublicKey,
    /// The controller that issued the token.
    pub issuer: String,
    /// The issuer's verification key.
    pub issuer_key: PublicKey,
    /// The negotiated resource.
    pub resource: String,
    /// Digest of the checkpoint the token resumes from.
    pub checkpoint: Digest,
    /// Validity window (start-inclusive, end-exclusive).
    pub validity: TimeRange,
    /// Issuer signature over all the above.
    pub signature: Signature,
}

#[allow(clippy::too_many_arguments)]
fn token_bytes(
    token_id: u64,
    holder: &str,
    holder_key: PublicKey,
    issuer: &str,
    issuer_key: PublicKey,
    resource: &str,
    checkpoint: &Digest,
    validity: TimeRange,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(96 + holder.len() + issuer.len() + resource.len());
    out.extend_from_slice(&token_id.to_be_bytes());
    out.extend_from_slice(&(holder.len() as u32).to_be_bytes());
    out.extend_from_slice(holder.as_bytes());
    out.extend_from_slice(&holder_key.0.to_be_bytes());
    out.extend_from_slice(&(issuer.len() as u32).to_be_bytes());
    out.extend_from_slice(issuer.as_bytes());
    out.extend_from_slice(&issuer_key.0.to_be_bytes());
    out.extend_from_slice(&(resource.len() as u32).to_be_bytes());
    out.extend_from_slice(resource.as_bytes());
    out.extend_from_slice(checkpoint);
    out.extend_from_slice(&validity.not_before.0.to_be_bytes());
    out.extend_from_slice(&validity.not_after.0.to_be_bytes());
    out
}

impl ResumeToken {
    /// Issue a token over a checkpoint digest; the controller signs with
    /// its own keys.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        token_id: u64,
        holder: impl Into<String>,
        holder_key: PublicKey,
        issuer: impl Into<String>,
        issuer_keys: &KeyPair,
        resource: impl Into<String>,
        checkpoint: Digest,
        validity: TimeRange,
    ) -> Self {
        let holder = holder.into();
        let issuer = issuer.into();
        let resource = resource.into();
        let bytes = token_bytes(
            token_id,
            &holder,
            holder_key,
            &issuer,
            issuer_keys.public,
            &resource,
            &checkpoint,
            validity,
        );
        ResumeToken {
            token_id,
            holder,
            holder_key,
            issuer,
            issuer_key: issuer_keys.public,
            resource,
            checkpoint,
            validity,
            signature: issuer_keys.sign(&bytes),
        }
    }

    /// Verify signature and validity at instant `at`. The end boundary is
    /// exclusive: a token presented exactly at `validity.not_after` is
    /// rejected.
    pub fn verify(&self, at: Timestamp) -> Result<(), ResumeError> {
        let bytes = token_bytes(
            self.token_id,
            &self.holder,
            self.holder_key,
            &self.issuer,
            self.issuer_key,
            &self.resource,
            &self.checkpoint,
            self.validity,
        );
        if !self.issuer_key.verify(&bytes, &self.signature) {
            return Err(ResumeError::BadSignature);
        }
        if !session_window_contains(&self.validity, at) {
            return Err(ResumeError::Expired { at });
        }
        Ok(())
    }

    /// Serialize for transport inside an envelope body.
    pub fn to_xml(&self) -> Element {
        Element::new("ResumeToken")
            .attr("tokenId", self.token_id.to_string())
            .attr("holder", &self.holder)
            .attr("holderKey", self.holder_key.0.to_string())
            .attr("issuer", &self.issuer)
            .attr("issuerKey", self.issuer_key.0.to_string())
            .attr("resource", &self.resource)
            .attr("checkpoint", hex::encode(&self.checkpoint))
            .attr("notBefore", self.validity.not_before.0.to_string())
            .attr("notAfter", self.validity.not_after.0.to_string())
            .attr("sigR", self.signature.r.to_string())
            .attr("sigS", self.signature.s.to_string())
    }

    /// Parse a transported token. Returns `None` on any malformation; the
    /// cryptographic checks happen separately in [`ResumeToken::verify`].
    pub fn from_xml(root: &Element) -> Option<Self> {
        if root.name != "ResumeToken" {
            return None;
        }
        let digest_bytes = hex::decode(root.get_attr("checkpoint")?)?;
        let checkpoint: Digest = digest_bytes.try_into().ok()?;
        let not_before = Timestamp(root.get_attr("notBefore")?.parse().ok()?);
        let not_after = Timestamp(root.get_attr("notAfter")?.parse().ok()?);
        if not_before > not_after {
            return None;
        }
        Some(ResumeToken {
            token_id: root.get_attr("tokenId")?.parse().ok()?,
            holder: root.get_attr("holder")?.to_string(),
            holder_key: PublicKey(root.get_attr("holderKey")?.parse().ok()?),
            issuer: root.get_attr("issuer")?.to_string(),
            issuer_key: PublicKey(root.get_attr("issuerKey")?.parse().ok()?),
            resource: root.get_attr("resource")?.to_string(),
            checkpoint,
            validity: TimeRange::new(not_before, not_after),
            signature: Signature {
                r: root.get_attr("sigR")?.parse().ok()?,
                s: root.get_attr("sigS")?.parse().ok()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sequence() -> TrustSequence {
        let mut seq = TrustSequence::new();
        for (i, by) in [Side::Requester, Side::Controller, Side::Requester]
            .into_iter()
            .enumerate()
        {
            seq.push(Disclosure {
                by,
                cred_id: CredentialId(format!("c{i}")),
                cred_type: format!("T{i}"),
            });
        }
        seq
    }

    fn checkpoint() -> ResumeCheckpoint {
        ResumeCheckpoint::new("R", "C", "Svc", Strategy::Standard, sample_sequence(), 1)
    }

    #[test]
    fn checkpoint_roundtrips_through_xml() {
        let ck = checkpoint();
        let text = trust_vo_xmldoc::to_string(&ck.to_xml());
        let parsed = trust_vo_xmldoc::parse(&text).unwrap();
        assert_eq!(ResumeCheckpoint::from_xml(&parsed), Some(ck.clone()));
        assert_eq!(ck.remaining(), 2);
    }

    #[test]
    fn checkpoint_digest_is_content_sensitive() {
        let a = checkpoint();
        let mut b = a.clone();
        b.next = 2;
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), checkpoint().digest());
    }

    #[test]
    fn checkpoint_rejects_cursor_past_sequence() {
        let mut xml = checkpoint().to_xml();
        xml.attrs.retain(|(n, _)| n != "next");
        let xml = xml.attr("next", "9");
        assert_eq!(ResumeCheckpoint::from_xml(&xml), None);
    }

    #[test]
    fn into_phase_restores_sequence() {
        let ck = checkpoint();
        let seq = ck.sequence.clone();
        let phase = ck.into_phase();
        assert_eq!(phase.sequence, seq);
        assert_eq!(phase.resource, "Svc");
    }

    fn issue_token(validity: TimeRange) -> (ResumeToken, KeyPair) {
        let issuer_keys = KeyPair::from_seed(b"controller-C");
        let holder_keys = KeyPair::from_seed(b"requester-R");
        let token = ResumeToken::issue(
            7,
            "R",
            holder_keys.public,
            "C",
            &issuer_keys,
            "Svc",
            checkpoint().digest(),
            validity,
        );
        (token, issuer_keys)
    }

    fn window() -> TimeRange {
        TimeRange::new(Timestamp(1_000), Timestamp(2_000))
    }

    #[test]
    fn token_verifies_inside_half_open_window() {
        let (token, _) = issue_token(window());
        assert!(token.verify(Timestamp(1_000)).is_ok());
        assert!(token.verify(Timestamp(1_999)).is_ok());
        assert_eq!(
            token.verify(Timestamp(2_000)),
            Err(ResumeError::Expired {
                at: Timestamp(2_000)
            })
        );
        assert_eq!(
            token.verify(Timestamp(999)),
            Err(ResumeError::Expired { at: Timestamp(999) })
        );
    }

    #[test]
    fn tampered_token_rejected() {
        let (mut token, _) = issue_token(window());
        token.resource = "OtherSvc".into();
        assert_eq!(
            token.verify(Timestamp(1_500)),
            Err(ResumeError::BadSignature)
        );
    }

    #[test]
    fn token_roundtrips_through_xml() {
        let (token, _) = issue_token(window());
        let text = trust_vo_xmldoc::to_string(&token.to_xml());
        let parsed = trust_vo_xmldoc::parse(&text).unwrap();
        let back = ResumeToken::from_xml(&parsed).unwrap();
        assert_eq!(back, token);
        assert!(back.verify(Timestamp(1_500)).is_ok());
    }

    #[test]
    fn from_xml_rejects_malformation() {
        let (token, _) = issue_token(window());
        assert!(ResumeToken::from_xml(&Element::new("NotAToken")).is_none());
        let mut xml = token.to_xml();
        xml.attrs.retain(|(n, _)| n != "checkpoint");
        let xml = xml.attr("checkpoint", "zz");
        assert!(ResumeToken::from_xml(&xml).is_none());
    }

    #[test]
    fn resume_error_converts_to_credential_error() {
        let e: CredentialError = ResumeError::Expired { at: Timestamp(5) }.into();
        assert!(matches!(e, CredentialError::Expired { .. }));
        let e: CredentialError = ResumeError::BadSignature.into();
        assert!(matches!(e, CredentialError::BadSignature { .. }));
    }
}
