//! Transcript: the accounting record of a negotiation.
//!
//! The paper's efficiency claims ("trust negotiations help in determining
//! and verifying with a relatively small number of messages…", §1; "short
//! and efficient negotiations", §1) are about message and round counts —
//! the transcript captures exactly those, and the benches report them.

use crate::message::{Message, Side};

/// One logged transcript entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Who sent the message.
    pub from: Side,
    /// The message.
    pub message: Message,
}

/// The accounting record of a negotiation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transcript {
    entries: Vec<Entry>,
    /// Policy-evaluation round trips.
    pub policy_rounds: usize,
    /// Number of disclosure policies transmitted.
    pub policies_disclosed: usize,
    /// Number of credentials transmitted.
    pub credentials_disclosed: usize,
    /// Signature/credential verifications performed.
    pub verifications: usize,
    /// Ownership proofs performed and checked.
    pub ownership_proofs: usize,
    /// Policy alternatives that were tried and abandoned.
    pub failed_alternatives: usize,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Log a message.
    pub fn log(&mut self, from: Side, message: Message) {
        self.entries.push(Entry { from, message });
    }

    /// All logged entries in order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Total number of messages exchanged.
    pub fn message_count(&self) -> usize {
        self.entries.len()
    }

    /// Count of entries with a given tag.
    pub fn count_tag(&self, tag: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.message.tag() == tag)
            .count()
    }

    /// A one-line summary for logs and examples.
    pub fn summary(&self) -> String {
        format!(
            "{} messages, {} policy rounds, {} policies disclosed, {} credentials disclosed, {} verifications",
            self.message_count(),
            self.policy_rounds,
            self.policies_disclosed,
            self.credentials_disclosed,
            self.verifications,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn logging_and_counting() {
        let mut t = Transcript::new();
        t.log(
            Side::Requester,
            Message::Start {
                resource: "r".into(),
                strategy: Strategy::Standard,
            },
        );
        t.log(
            Side::Controller,
            Message::PolicyDisclosure { policies: vec![] },
        );
        t.log(Side::Requester, Message::Ack);
        assert_eq!(t.message_count(), 3);
        assert_eq!(t.count_tag("start"), 1);
        assert_eq!(t.count_tag("ack"), 1);
        assert_eq!(t.count_tag("failure"), 0);
        assert_eq!(t.entries()[1].from, Side::Controller);
    }

    #[test]
    fn summary_mentions_counters() {
        let mut t = Transcript::new();
        t.policy_rounds = 3;
        t.policies_disclosed = 4;
        t.credentials_disclosed = 5;
        t.verifications = 5;
        let s = t.summary();
        assert!(s.contains("3 policy rounds"));
        assert!(s.contains("4 policies"));
        assert!(s.contains("5 credentials"));
    }
}

impl Transcript {
    /// Export as an XML document — the data the prototype's GUI renders to
    /// let users "monitor the negotiation process" (§6.2).
    pub fn to_xml(&self) -> trust_vo_xmldoc::Element {
        use trust_vo_xmldoc::{Element, Node};
        let mut root = Element::new("transcript")
            .attr("messages", self.message_count().to_string())
            .attr("policyRounds", self.policy_rounds.to_string())
            .attr("policiesDisclosed", self.policies_disclosed.to_string())
            .attr(
                "credentialsDisclosed",
                self.credentials_disclosed.to_string(),
            )
            .attr("verifications", self.verifications.to_string())
            .attr("ownershipProofs", self.ownership_proofs.to_string())
            .attr("failedAlternatives", self.failed_alternatives.to_string());
        for entry in &self.entries {
            let mut el = Element::new("message")
                .attr("from", entry.from.to_string())
                .attr("kind", entry.message.tag());
            match &entry.message {
                Message::Start { resource, strategy } => {
                    el.set_attr("resource", resource);
                    el.set_attr("strategy", strategy.wire_name());
                }
                Message::PolicyRequest { resource } | Message::NotPossessed { resource } => {
                    el.set_attr("resource", resource);
                }
                Message::PolicyDisclosure { policies } => {
                    el.set_attr("count", policies.len().to_string());
                    for p in policies {
                        el.children.push(Node::Text(format!("{p}; ")));
                    }
                }
                Message::CredentialDisclosure { cred_id, .. } => {
                    el.set_attr("credId", cred_id);
                }
                Message::Failure { reason } => {
                    el.set_attr("reason", reason);
                }
                Message::Decline | Message::Ack | Message::Success => {}
            }
            root.children.push(Node::Element(el));
        }
        root
    }
}

#[cfg(test)]
mod xml_tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn transcript_exports_monitorable_xml() {
        let mut t = Transcript::new();
        t.log(
            Side::Requester,
            Message::Start {
                resource: "VoMembership".into(),
                strategy: Strategy::Standard,
            },
        );
        t.log(
            Side::Controller,
            Message::PolicyDisclosure { policies: vec![] },
        );
        t.log(
            Side::Requester,
            Message::CredentialDisclosure {
                cred_id: "c1".into(),
                xml: "<credential/>".into(),
                ownership: None,
            },
        );
        t.log(Side::Controller, Message::Success);
        t.credentials_disclosed = 1;
        let xml = t.to_xml();
        assert_eq!(xml.get_attr("messages"), Some("4"));
        assert_eq!(xml.get_attr("credentialsDisclosed"), Some("1"));
        assert_eq!(xml.all("message").count(), 4);
        let start = xml.all("message").next().unwrap();
        assert_eq!(start.get_attr("kind"), Some("start"));
        assert_eq!(start.get_attr("strategy"), Some("standard"));
        // It parses back as well-formed XML.
        let text = trust_vo_xmldoc::to_string(&xml);
        assert!(trust_vo_xmldoc::parse(&text).is_ok());
    }
}
