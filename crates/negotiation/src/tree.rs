//! Negotiation trees.
//!
//! "To maintain the progress of a negotiation and help detecting a
//! potential trust sequence a tree structure is used. … a negotiation tree
//! is a labeled tree rooted at the resource that initially started the
//! negotiation. Each node corresponds to a term, whereas edges correspond
//! to policy rules. A negotiation tree is characterized by two different
//! kinds of edges: simple edges and multiedges. A simple edge denotes a
//! policy having only one term on the left side component of the rule. By
//! contrast, a multiedge links several simple edges to represent policy
//! rules having more than one term … Nodes belonging to a multiedge are
//! thus considered as a whole during the negotiation." (§4.2)

use crate::message::Side;
use trust_vo_credential::CredentialId;
use trust_vo_policy::PolicyId;

/// Index of a node in a [`NegotiationTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Satisfaction state of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeStatus {
    /// Still being explored.
    Open,
    /// Satisfied by a delivery rule (or an ungoverned, freely-released
    /// resource).
    Deliv,
    /// Satisfiable by disclosing a specific credential.
    SatisfiedBy(CredentialId),
    /// This branch cannot be satisfied.
    Failed,
}

/// A node: a term (or the root resource), owned by the side that would
/// have to disclose it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Display label (term key or resource name).
    pub label: String,
    /// The side that controls/would disclose this node's resource.
    pub owner: Side,
    /// Satisfaction state.
    pub status: NodeStatus,
}

/// An edge: a policy rule expanding a node into the terms of its body.
/// `to.len() > 1` makes it a multiedge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeEdge {
    /// The expanded node.
    pub from: NodeId,
    /// The term nodes of the policy body (as a whole, for multiedges).
    pub to: Vec<NodeId>,
    /// The policy rule this edge represents.
    pub policy: PolicyId,
    /// Whether this edge is part of the chosen (successful) view.
    pub chosen: bool,
}

impl TreeEdge {
    /// Is this a multiedge (conjunctive policy with several terms)?
    pub fn is_multiedge(&self) -> bool {
        self.to.len() > 1
    }
}

/// The negotiation tree built during the policy evaluation phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegotiationTree {
    nodes: Vec<TreeNode>,
    edges: Vec<TreeEdge>,
}

impl NegotiationTree {
    /// Create a tree rooted at the requested resource, controlled by
    /// `owner` (normally [`Side::Controller`]).
    pub fn new(root_label: impl Into<String>, owner: Side) -> Self {
        NegotiationTree {
            nodes: vec![TreeNode {
                label: root_label.into(),
                owner,
                status: NodeStatus::Open,
            }],
            edges: Vec::new(),
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Add a policy edge expanding `from` into child term nodes labelled
    /// `labels`, each owned by the side opposite to `from`'s owner (terms
    /// of my policy are satisfied by *your* credentials).
    pub fn expand(&mut self, from: NodeId, policy: PolicyId, labels: &[String]) -> Vec<NodeId> {
        let child_owner = self.nodes[from.0].owner.other();
        let ids: Vec<NodeId> = labels
            .iter()
            .map(|label| {
                let id = NodeId(self.nodes.len());
                self.nodes.push(TreeNode {
                    label: label.clone(),
                    owner: child_owner,
                    status: NodeStatus::Open,
                });
                id
            })
            .collect();
        self.edges.push(TreeEdge {
            from,
            to: ids.clone(),
            policy,
            chosen: false,
        });
        ids
    }

    /// Set a node's status.
    pub fn set_status(&mut self, node: NodeId, status: NodeStatus) {
        self.nodes[node.0].status = status;
    }

    /// Mark the edge from `from` with `policy` as part of the chosen view.
    pub fn choose_edge(&mut self, from: NodeId, policy: &PolicyId) {
        if let Some(edge) = self
            .edges
            .iter_mut()
            .find(|e| e.from == from && &e.policy == policy)
        {
            edge.chosen = true;
        }
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.0]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[TreeEdge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a tree has at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Depth of the tree (root = 1).
    pub fn depth(&self) -> usize {
        self.depth_from(self.root())
    }

    fn depth_from(&self, node: NodeId) -> usize {
        1 + self
            .edges
            .iter()
            .filter(|e| e.from == node)
            .flat_map(|e| e.to.iter())
            .map(|&c| self.depth_from(c))
            .max()
            .unwrap_or(0)
    }

    /// Render the tree as indented ASCII (used by the Fig. 2 example).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root(), 0, &mut out);
        out
    }

    fn render_node(&self, node: NodeId, depth: usize, out: &mut String) {
        let n = self.node(node);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let status = match &n.status {
            NodeStatus::Open => "",
            NodeStatus::Deliv => " [DELIV]",
            NodeStatus::SatisfiedBy(id) => {
                out.push_str(&format!("{} <{}> ok:{}\n", n.label, n.owner, id));
                for edge in self.edges.iter().filter(|e| e.from == node) {
                    self.render_edge(edge, depth + 1, out);
                }
                return;
            }
            NodeStatus::Failed => " [failed]",
        };
        out.push_str(&format!("{} <{}>{}\n", n.label, n.owner, status));
        for edge in self.edges.iter().filter(|e| e.from == node) {
            self.render_edge(edge, depth + 1, out);
        }
    }

    fn render_edge(&self, edge: &TreeEdge, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let kind = if edge.is_multiedge() {
            "multiedge"
        } else {
            "edge"
        };
        let chosen = if edge.chosen { " *" } else { "" };
        out.push_str(&format!("[{kind} {}{}]\n", edge.policy, chosen));
        for &child in &edge.to {
            self.render_node(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the Fig. 2 tree: the Aerospace company requests VOMembership;
    /// the Aircraft company requires WebDesignerQuality; the Aerospace
    /// company counter-requires AAACreditation OR a BalanceSheet.
    fn fig2() -> NegotiationTree {
        let mut t = NegotiationTree::new("VoMembership", Side::Controller);
        let kids = t.expand(
            t.root(),
            PolicyId("p1".into()),
            &["WebDesignerQuality".into()],
        );
        let quality = kids[0];
        t.expand(quality, PolicyId("p2".into()), &["AAACreditation".into()]);
        t.expand(quality, PolicyId("p3".into()), &["BalanceSheet".into()]);
        t
    }

    #[test]
    fn fig2_structure() {
        let t = fig2();
        assert_eq!(t.len(), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.edges().len(), 3);
        assert!(t.edges().iter().all(|e| !e.is_multiedge()));
        // Ownership alternates: root is controller-owned, its term child is
        // requester-owned, the grandchildren controller-owned again.
        assert_eq!(t.node(NodeId(0)).owner, Side::Controller);
        assert_eq!(t.node(NodeId(1)).owner, Side::Requester);
        assert_eq!(t.node(NodeId(2)).owner, Side::Controller);
    }

    #[test]
    fn multiedge_detection() {
        let mut t = NegotiationTree::new("R", Side::Controller);
        let kids = t.expand(t.root(), PolicyId("p".into()), &["A".into(), "B".into()]);
        assert_eq!(kids.len(), 2);
        assert!(t.edges()[0].is_multiedge());
    }

    #[test]
    fn choose_edge_marks_only_matching() {
        let mut t = fig2();
        t.choose_edge(NodeId(1), &PolicyId("p3".into()));
        let chosen: Vec<_> = t.edges().iter().filter(|e| e.chosen).collect();
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].policy.0, "p3");
    }

    #[test]
    fn render_shows_structure_and_status() {
        let mut t = fig2();
        t.set_status(
            NodeId(3),
            NodeStatus::SatisfiedBy(CredentialId("cred-7".into())),
        );
        t.set_status(NodeId(2), NodeStatus::Failed);
        let text = t.render();
        assert!(text.contains("VoMembership <controller>"));
        assert!(text.contains("WebDesignerQuality <requester>"));
        assert!(text.contains("[failed]"));
        assert!(text.contains("ok:cred-7"));
        assert!(text.contains("[edge p1]"));
    }

    #[test]
    fn depth_of_lone_root() {
        let t = NegotiationTree::new("R", Side::Controller);
        assert_eq!(t.depth(), 1);
        assert!(!t.is_empty());
    }
}
