//! An eager (TrustBuilder-style) negotiation baseline.
//!
//! The related work (§7) discusses TrustBuilder, whose classic *eager*
//! strategy differs from Trust-X's policy-driven exchange: instead of first
//! agreeing on a trust sequence, each party repeatedly discloses **every**
//! credential whose protecting policies are satisfied by what it has
//! received so far, until the target resource unlocks or a fixpoint is
//! reached. Eager negotiation needs no policy disclosure at all but
//! over-discloses credentials — the comparison bench (E6) measures exactly
//! that trade-off.

use crate::error::NegotiationError;
use crate::message::Side;
use crate::party::Party;
use crate::transcript::Transcript;
use trust_vo_credential::{Credential, Timestamp};
use trust_vo_policy::DisclosurePolicy;

/// The result of an eager negotiation.
#[derive(Debug, Clone)]
pub struct EagerOutcome {
    /// Credentials disclosed by each side, in disclosure order.
    pub disclosed: Vec<(Side, String)>,
    /// Accounting (eager rounds count as policy rounds).
    pub transcript: Transcript,
}

/// Can `owner` release a credential of `cred_type`, given the credentials
/// already received from the counterpart?
fn releasable(owner: &Party, cred_type: &str, received: &[Credential]) -> bool {
    let alternatives: Vec<&DisclosurePolicy> = owner.alternatives_for(cred_type);
    if alternatives.is_empty() {
        return true; // ungoverned ⇒ freely released
    }
    alternatives.iter().any(|policy| {
        policy.is_deliv()
            || policy
                .terms()
                .iter()
                .all(|term| received.iter().any(|c| term.matches_credential(c)))
    })
}

/// Run an eager negotiation: `requester` wants `resource` from `controller`.
pub fn negotiate_eager(
    requester: &Party,
    controller: &Party,
    resource: &str,
    at: Timestamp,
) -> Result<EagerOutcome, NegotiationError> {
    let mut transcript = Transcript::new();
    let mut disclosed: Vec<(Side, String)> = Vec::new();
    // Credentials each side has received from the other.
    let mut received_by_controller: Vec<Credential> = Vec::new();
    let mut received_by_requester: Vec<Credential> = Vec::new();
    // Which local credentials each side has already sent (by id).
    let mut sent_requester: Vec<bool> = vec![false; requester.profile.len()];
    let mut sent_controller: Vec<bool> = vec![false; controller.profile.len()];

    /// One eager turn: `party` sends every not-yet-sent credential whose
    /// policies its `inbox` satisfies. Returns the newly sent credentials.
    fn turn(
        party: &Party,
        side: Side,
        sent: &mut [bool],
        inbox: &[Credential],
        at: Timestamp,
        disclosed: &mut Vec<(Side, String)>,
        transcript: &mut Transcript,
    ) -> Vec<Credential> {
        let mut newly_sent = Vec::new();
        for (i, cred) in party.profile.credentials().iter().enumerate() {
            if sent[i] {
                continue;
            }
            if releasable(party, cred.cred_type(), inbox) && cred.verify(at, None).is_ok() {
                sent[i] = true;
                newly_sent.push(cred.clone());
                disclosed.push((side, cred.cred_type().to_owned()));
                transcript.credentials_disclosed += 1;
            }
        }
        newly_sent
    }

    // Alternate turns, requester first, until the resource unlocks or a
    // fixpoint (two consecutive idle turns) is reached.
    let mut idle_streak = 0;
    for round in 0..64 {
        transcript.policy_rounds += 1;
        if releasable(controller, resource, &received_by_controller) {
            return Ok(EagerOutcome {
                disclosed,
                transcript,
            });
        }
        let newly = if round % 2 == 0 {
            let newly = turn(
                requester,
                Side::Requester,
                &mut sent_requester,
                &received_by_requester,
                at,
                &mut disclosed,
                &mut transcript,
            );
            received_by_controller.extend(newly.iter().cloned());
            newly
        } else {
            let newly = turn(
                controller,
                Side::Controller,
                &mut sent_controller,
                &received_by_controller,
                at,
                &mut disclosed,
                &mut transcript,
            );
            received_by_requester.extend(newly.iter().cloned());
            newly
        };
        if newly.is_empty() {
            idle_streak += 1;
            if idle_streak >= 2 {
                return Err(NegotiationError::NoTrustSequence {
                    resource: resource.to_owned(),
                });
            }
        } else {
            idle_streak = 0;
        }
    }
    Err(NegotiationError::NoTrustSequence {
        resource: resource.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{CredentialAuthority, TimeRange};
    use trust_vo_policy::{Resource, Term};

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    fn parties() -> (Party, Party) {
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        for ty in ["Quality", "Extra1", "Extra2"] {
            let c = ca
                .issue(ty, "R", requester.keys.public, vec![], window())
                .unwrap();
            requester.profile.add(c);
        }
        let c = ca
            .issue(
                "Accreditation",
                "C",
                controller.keys.public,
                vec![],
                window(),
            )
            .unwrap();
        controller.profile.add(c);
        controller.policies.add(DisclosurePolicy::rule(
            "p1",
            Resource::service("Svc"),
            vec![Term::of_type("Quality")],
        ));
        // Requester's Quality is protected by the controller's accreditation.
        requester.policies.add(DisclosurePolicy::rule(
            "p2",
            Resource::credential("Quality"),
            vec![Term::of_type("Accreditation")],
        ));
        (requester, controller)
    }

    #[test]
    fn eager_succeeds_and_overdiscloses() {
        let (requester, controller) = parties();
        let outcome = negotiate_eager(&requester, &controller, "Svc", at()).unwrap();
        // Eager sends the two unprotected extras even though only Quality
        // was needed.
        let requester_disclosures: Vec<_> = outcome
            .disclosed
            .iter()
            .filter(|(s, _)| *s == Side::Requester)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(requester_disclosures.contains(&"Extra1"));
        assert!(requester_disclosures.contains(&"Extra2"));
        assert!(requester_disclosures.contains(&"Quality"));
        assert!(outcome.transcript.credentials_disclosed >= 4);
    }

    #[test]
    fn eager_fails_when_unsatisfiable() {
        let (mut requester, controller) = parties();
        // Remove everything that could satisfy Svc's policy.
        let ids: Vec<_> = requester
            .profile
            .of_type("Quality")
            .map(|c| c.id().clone())
            .collect();
        for id in ids {
            requester.profile.remove(&id);
        }
        let err = negotiate_eager(&requester, &controller, "Svc", at()).unwrap_err();
        assert!(matches!(err, NegotiationError::NoTrustSequence { .. }));
    }

    #[test]
    fn eager_ungoverned_resource_immediate() {
        let (requester, controller) = parties();
        let outcome = negotiate_eager(&requester, &controller, "Public", at()).unwrap();
        assert_eq!(outcome.transcript.credentials_disclosed, 0);
    }

    #[test]
    fn eager_respects_own_policies() {
        // Quality is locked behind Accreditation; the first requester turn
        // must NOT send it, only after the controller's accreditation lands.
        let (requester, controller) = parties();
        let outcome = negotiate_eager(&requester, &controller, "Svc", at()).unwrap();
        let quality_pos = outcome
            .disclosed
            .iter()
            .position(|(s, t)| *s == Side::Requester && t == "Quality")
            .unwrap();
        let accr_pos = outcome
            .disclosed
            .iter()
            .position(|(s, t)| *s == Side::Controller && t == "Accreditation")
            .unwrap();
        assert!(accr_pos < quality_pos);
    }
}
