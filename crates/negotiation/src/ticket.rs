//! Trust tickets: fast-path re-negotiation.
//!
//! The paper's Identification phase anticipates policies that require
//! "tickets attesting their participation to other VOs" (§5.1), and the
//! Trust-X line of work (\[15,16\]) issues *trust tickets* at the end of a
//! successful negotiation so that subsequent negotiations between the same
//! parties for the same resource can skip the policy-evaluation phase.
//!
//! A [`TrustTicket`] is signed by the resource controller, names both
//! parties and the resource, and carries a validity window. Presenting a
//! valid ticket (plus a holder proof over the session nonce) replaces the
//! whole two-phase protocol with a single verification.

use crate::engine::{session_nonce, NegotiationConfig};
use crate::error::NegotiationError;
use crate::party::Party;
use trust_vo_credential::{CredentialError, TimeRange, Timestamp};
use trust_vo_crypto::{KeyPair, PublicKey, Signature};

/// Validity check for session artifacts (trust tickets, resume tokens):
/// start-**inclusive**, end-**exclusive**. A ticket presented exactly at
/// `validity.not_after` is already expired — deterministically, on every
/// replica — so two services sharing a clock can never disagree about the
/// boundary instant. (Credential validity, [`TimeRange::contains`], stays
/// inclusive at both ends per X.509 convention; only short-lived session
/// artifacts use the half-open window.)
pub fn session_window_contains(validity: &TimeRange, at: Timestamp) -> bool {
    validity.not_before <= at && at < validity.not_after
}

/// A ticket attesting a previously successful negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustTicket {
    /// The party the ticket was granted to (the requester).
    pub holder: String,
    /// The holder's key (ownership is proven against it).
    pub holder_key: PublicKey,
    /// The controller that granted the ticket.
    pub issuer: String,
    /// The controller's verification key.
    pub issuer_key: PublicKey,
    /// The resource the original negotiation granted.
    pub resource: String,
    /// Validity window.
    pub validity: TimeRange,
    /// Controller signature over all the above.
    pub signature: Signature,
}

fn ticket_bytes(
    holder: &str,
    holder_key: PublicKey,
    issuer: &str,
    issuer_key: PublicKey,
    resource: &str,
    validity: TimeRange,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + holder.len() + issuer.len() + resource.len());
    out.extend_from_slice(&(holder.len() as u32).to_be_bytes());
    out.extend_from_slice(holder.as_bytes());
    out.extend_from_slice(&holder_key.0.to_be_bytes());
    out.extend_from_slice(&(issuer.len() as u32).to_be_bytes());
    out.extend_from_slice(issuer.as_bytes());
    out.extend_from_slice(&issuer_key.0.to_be_bytes());
    out.extend_from_slice(&(resource.len() as u32).to_be_bytes());
    out.extend_from_slice(resource.as_bytes());
    out.extend_from_slice(&validity.not_before.0.to_be_bytes());
    out.extend_from_slice(&validity.not_after.0.to_be_bytes());
    out
}

impl TrustTicket {
    /// Issue a ticket after a successful negotiation: the controller signs
    /// with its own keys.
    pub fn issue(
        requester: &Party,
        controller: &Party,
        controller_keys: &KeyPair,
        resource: &str,
        validity: TimeRange,
    ) -> Self {
        let bytes = ticket_bytes(
            &requester.name,
            requester.keys.public,
            &controller.name,
            controller_keys.public,
            resource,
            validity,
        );
        TrustTicket {
            holder: requester.name.clone(),
            holder_key: requester.keys.public,
            issuer: controller.name.clone(),
            issuer_key: controller_keys.public,
            resource: resource.to_owned(),
            validity,
            signature: controller_keys.sign(&bytes),
        }
    }

    /// Verify the ticket itself (signature + validity at `at`).
    pub fn verify(&self, at: Timestamp) -> Result<(), CredentialError> {
        let bytes = ticket_bytes(
            &self.holder,
            self.holder_key,
            &self.issuer,
            self.issuer_key,
            &self.resource,
            self.validity,
        );
        if !self.issuer_key.verify(&bytes, &self.signature) {
            return Err(CredentialError::BadSignature {
                cred_id: format!("ticket:{}", self.resource),
            });
        }
        if !session_window_contains(&self.validity, at) {
            return Err(CredentialError::Expired {
                cred_id: format!("ticket:{}", self.resource),
                at,
            });
        }
        Ok(())
    }
}

/// The result of a ticket-based fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TicketOutcome {
    /// The ticket was accepted; the resource is granted without a
    /// negotiation.
    Granted,
    /// No usable ticket — fall back to the full two-phase protocol.
    FallBack(TicketRejection),
}

/// Why a ticket was not usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TicketRejection {
    /// The ticket names a different controller or resource.
    WrongScope,
    /// Signature or validity check failed.
    Invalid(String),
    /// The holder proof over the session nonce failed.
    NotHolder,
}

/// Controller-side check of a presented ticket. `proof` is the holder's
/// signature over the session nonce (computed exactly as in the full
/// protocol), so a stolen ticket is useless without the holder key.
pub fn redeem_ticket(
    ticket: &TrustTicket,
    requester: &Party,
    controller: &Party,
    resource: &str,
    cfg: &NegotiationConfig,
    proof: &Signature,
) -> TicketOutcome {
    if ticket.issuer != controller.name
        || ticket.issuer_key != controller.keys.public
        || ticket.resource != resource
        || ticket.holder != requester.name
    {
        return TicketOutcome::FallBack(TicketRejection::WrongScope);
    }
    if let Err(e) = ticket.verify(cfg.at) {
        return TicketOutcome::FallBack(TicketRejection::Invalid(e.to_string()));
    }
    let nonce = session_nonce(requester, controller, resource);
    if !ticket.holder_key.verify(&nonce, proof) {
        return TicketOutcome::FallBack(TicketRejection::NotHolder);
    }
    TicketOutcome::Granted
}

/// Full-protocol wrapper with a ticket fast path: if `ticket` is usable it
/// is redeemed (one signature check instead of a negotiation); otherwise
/// the ordinary two-phase [`crate::engine::negotiate`] runs. On success, a
/// fresh ticket is issued for next time.
pub fn negotiate_with_ticket(
    requester: &Party,
    controller: &Party,
    resource: &str,
    cfg: &NegotiationConfig,
    ticket: Option<&TrustTicket>,
    ticket_validity: TimeRange,
) -> Result<(TrustTicket, bool), NegotiationError> {
    if let Some(ticket) = ticket {
        let nonce = session_nonce(requester, controller, resource);
        let proof = requester.keys.sign(&nonce);
        if let TicketOutcome::Granted =
            redeem_ticket(ticket, requester, controller, resource, cfg, &proof)
        {
            return Ok((ticket.clone(), true));
        }
    }
    crate::engine::negotiate(requester, controller, resource, cfg)?;
    let fresh = TrustTicket::issue(
        requester,
        controller,
        &controller.keys,
        resource,
        ticket_validity,
    );
    Ok((fresh, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use trust_vo_credential::CredentialAuthority;
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    fn parties() -> (Party, Party) {
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        let cred = ca
            .issue("Quality", "R", requester.keys.public, vec![], window())
            .unwrap();
        requester.profile.add(cred);
        controller.policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("Svc"),
            vec![Term::of_type("Quality")],
        ));
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());
        (requester, controller)
    }

    #[test]
    fn issue_and_verify() {
        let (requester, controller) = parties();
        let ticket = TrustTicket::issue(&requester, &controller, &controller.keys, "Svc", window());
        assert!(ticket.verify(at()).is_ok());
        assert!(ticket.verify(window().not_after.plus_days(1)).is_err());
    }

    #[test]
    fn validity_boundaries_are_start_inclusive_end_exclusive() {
        let (requester, controller) = parties();
        let w = window();
        let ticket = TrustTicket::issue(&requester, &controller, &controller.keys, "Svc", w);
        // Exactly at the start instant: valid.
        assert!(ticket.verify(w.not_before).is_ok());
        // One second before the start: not yet valid.
        assert!(ticket.verify(w.not_before.plus_seconds(-1)).is_err());
        // One second before the end: still valid.
        assert!(ticket.verify(w.not_after.plus_seconds(-1)).is_ok());
        // Exactly at the end instant: already expired — the half-open
        // window makes the boundary deterministic across replicas.
        assert!(matches!(
            ticket.verify(w.not_after),
            Err(CredentialError::Expired { .. })
        ));
    }

    #[test]
    fn session_window_is_half_open() {
        let w = TimeRange::new(Timestamp(100), Timestamp(200));
        assert!(!session_window_contains(&w, Timestamp(99)));
        assert!(session_window_contains(&w, Timestamp(100)));
        assert!(session_window_contains(&w, Timestamp(199)));
        assert!(!session_window_contains(&w, Timestamp(200)));
        // Contrast: credential validity is inclusive at both ends.
        assert!(w.contains(Timestamp(200)));
    }

    #[test]
    fn tampered_ticket_rejected() {
        let (requester, controller) = parties();
        let mut ticket =
            TrustTicket::issue(&requester, &controller, &controller.keys, "Svc", window());
        ticket.resource = "OtherSvc".into();
        assert!(matches!(
            ticket.verify(at()),
            Err(CredentialError::BadSignature { .. })
        ));
    }

    #[test]
    fn redeem_happy_path() {
        let (requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let ticket = TrustTicket::issue(&requester, &controller, &controller.keys, "Svc", window());
        let nonce = session_nonce(&requester, &controller, "Svc");
        let proof = requester.keys.sign(&nonce);
        assert_eq!(
            redeem_ticket(&ticket, &requester, &controller, "Svc", &cfg, &proof),
            TicketOutcome::Granted
        );
    }

    #[test]
    fn stolen_ticket_useless_without_holder_key() {
        let (requester, controller) = parties();
        let thief = Party::new("Thief");
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let ticket = TrustTicket::issue(&requester, &controller, &controller.keys, "Svc", window());
        // The thief presents the requester's ticket but signs with its own key.
        let nonce = session_nonce(&requester, &controller, "Svc");
        let bad_proof = thief.keys.sign(&nonce);
        assert_eq!(
            redeem_ticket(&ticket, &requester, &controller, "Svc", &cfg, &bad_proof),
            TicketOutcome::FallBack(TicketRejection::NotHolder)
        );
        // A ticket naming the thief as holder doesn't verify either — the
        // scope check fires first when the thief negotiates as itself.
        assert_eq!(
            redeem_ticket(&ticket, &thief, &controller, "Svc", &cfg, &bad_proof),
            TicketOutcome::FallBack(TicketRejection::WrongScope)
        );
    }

    #[test]
    fn wrong_scope_falls_back() {
        let (requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let ticket = TrustTicket::issue(&requester, &controller, &controller.keys, "Svc", window());
        let nonce = session_nonce(&requester, &controller, "OtherSvc");
        let proof = requester.keys.sign(&nonce);
        assert_eq!(
            redeem_ticket(&ticket, &requester, &controller, "OtherSvc", &cfg, &proof),
            TicketOutcome::FallBack(TicketRejection::WrongScope)
        );
    }

    #[test]
    fn negotiate_with_ticket_round_trips() {
        let (requester, controller) = parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        // First run: no ticket — full protocol, fresh ticket issued.
        let (ticket, fast) =
            negotiate_with_ticket(&requester, &controller, "Svc", &cfg, None, window()).unwrap();
        assert!(!fast);
        // Second run: the ticket short-circuits.
        let (_, fast) = negotiate_with_ticket(
            &requester,
            &controller,
            "Svc",
            &cfg,
            Some(&ticket),
            window(),
        )
        .unwrap();
        assert!(fast);
        // Expired ticket: falls back to the full protocol and re-issues.
        let late_cfg = NegotiationConfig::new(Strategy::Standard, window().not_after.plus_days(-1));
        let (_, fast) = negotiate_with_ticket(
            &requester,
            &controller,
            "Svc",
            &late_cfg,
            Some(&TrustTicket {
                validity: TimeRange::new(Timestamp(0), Timestamp(1)),
                ..ticket.clone()
            }),
            window(),
        )
        .unwrap();
        assert!(!fast);
    }

    #[test]
    fn unsatisfiable_negotiation_stays_unsatisfiable_with_ticket_api() {
        let (mut requester, controller) = parties();
        let id = requester.profile.credentials()[0].id().clone();
        requester.profile.remove(&id);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let err = negotiate_with_ticket(&requester, &controller, "Svc", &cfg, None, window())
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoTrustSequence { .. }));
    }
}
