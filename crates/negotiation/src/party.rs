//! A negotiating party: identity, X-Profile, policy set, ontology, and
//! trust anchors.

use trust_vo_credential::chain::ChainDirectory;
use trust_vo_credential::{Credential, RevocationList, XProfile};
use trust_vo_crypto::{KeyPair, PublicKey};
use trust_vo_ontology::Ontology;
use trust_vo_policy::{satisfying_credentials, DisclosurePolicy, PolicySet, Term};

/// One side of a trust negotiation.
#[derive(Debug, Clone)]
pub struct Party {
    /// Display name.
    pub name: String,
    /// The party's own key pair (subject key of its credentials).
    pub keys: KeyPair,
    /// The credential portfolio.
    pub profile: XProfile,
    /// The disclosure policies protecting local resources.
    pub policies: PolicySet,
    /// The local ontology, if the party runs the reasoning engine.
    pub ontology: Option<Ontology>,
    /// Issuer keys this party trusts.
    pub trusted_roots: Vec<PublicKey>,
    /// The party's aggregated view of revocations (unions of the CRLs of
    /// the authorities it trusts).
    pub crl: RevocationList,
    /// Known intermediate credentials, used to build chains when a
    /// received credential's issuer is not directly trusted ("retrieving
    /// those credentials that are not immediately available through
    /// credentials chains", §4.2).
    pub chains: ChainDirectory,
}

impl Party {
    /// Create a party with keys derived from its name and an empty profile.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let keys = KeyPair::from_seed(format!("party:{name}").as_bytes());
        Party {
            profile: XProfile::new(name.clone()),
            name,
            keys,
            policies: PolicySet::new(),
            ontology: None,
            trusted_roots: Vec::new(),
            crl: RevocationList::new(),
            chains: ChainDirectory::new(),
        }
    }

    /// Builder: set the ontology.
    #[must_use]
    pub fn with_ontology(mut self, ontology: Ontology) -> Self {
        self.ontology = Some(ontology);
        self
    }

    /// Trust an issuer key.
    pub fn trust_root(&mut self, key: PublicKey) {
        if !self.trusted_roots.contains(&key) {
            self.trusted_roots.push(key);
        }
    }

    /// The policy alternatives protecting `resource`, in preference order.
    pub fn alternatives_for<'a>(&'a self, resource: &'a str) -> Vec<&'a DisclosurePolicy> {
        self.policies.alternatives_for(resource).collect()
    }

    /// Credentials in this party's profile that satisfy `term` (concept
    /// terms resolved through the local ontology), least sensitive first.
    pub fn satisfying(&self, term: &Term) -> Vec<&Credential> {
        let mut found = satisfying_credentials(term, &self.profile, self.ontology.as_ref());
        found.sort_by_key(|c| (self.profile.sensitivity_of(c.id()), c.id().clone()));
        found
    }

    /// Does this party hold a credential of the given type?
    pub fn holds(&self, cred_type: &str) -> bool {
        self.profile.holds_type(cred_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{Attribute, CredentialAuthority, Sensitivity, TimeRange, Timestamp};
    use trust_vo_policy::Resource;

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    #[test]
    fn keys_are_deterministic_per_name() {
        let a = Party::new("Aircraft Company");
        let b = Party::new("Aircraft Company");
        assert_eq!(a.keys.public, b.keys.public);
        assert_ne!(a.keys.public, Party::new("Other").keys.public);
    }

    #[test]
    fn trust_root_dedupes() {
        let mut p = Party::new("X");
        let k = KeyPair::from_seed(b"ca").public;
        p.trust_root(k);
        p.trust_root(k);
        assert_eq!(p.trusted_roots.len(), 1);
    }

    #[test]
    fn satisfying_sorts_by_sensitivity() {
        let mut ca = CredentialAuthority::new("CA");
        let mut p = Party::new("X");
        let high = ca
            .issue(
                "T",
                "X",
                p.keys.public,
                vec![Attribute::new("k", "v")],
                window(),
            )
            .unwrap();
        let low = ca
            .issue(
                "T",
                "X",
                p.keys.public,
                vec![Attribute::new("k", "v")],
                window(),
            )
            .unwrap();
        p.profile
            .add_with_sensitivity(high.clone(), Sensitivity::High);
        p.profile
            .add_with_sensitivity(low.clone(), Sensitivity::Low);
        let found = p.satisfying(&Term::of_type("T"));
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].id(), low.id());
        assert_eq!(found[1].id(), high.id());
    }

    #[test]
    fn alternatives_reflect_policy_set() {
        let mut p = Party::new("X");
        p.policies
            .add(DisclosurePolicy::deliv("d", Resource::credential("Free")));
        assert_eq!(p.alternatives_for("Free").len(), 1);
        assert!(p.alternatives_for("Other").is_empty());
    }

    #[test]
    fn holds_checks_profile() {
        let mut ca = CredentialAuthority::new("CA");
        let mut p = Party::new("X");
        assert!(!p.holds("T"));
        let c = ca.issue("T", "X", p.keys.public, vec![], window()).unwrap();
        p.profile.add(c);
        assert!(p.holds("T"));
    }
}
