//! The two-phase Trust-X negotiation engine.
//!
//! **Phase 1 — policy evaluation** (§4.2): a bilateral, ordered policy
//! exchange. The requester asks the controller for a resource; the
//! controller answers with the disclosure policies protecting it; each
//! policy term must be satisfied by a counterpart credential, whose own
//! protecting policies are exchanged in turn. The interplay is modelled as
//! an AND-OR search over both parties' policy sets with cycle detection
//! (interlocked policies fail the branch), building the negotiation tree
//! as it goes. A successful search is a satisfied *view*; its post-order
//! yields the *trust sequence*.
//!
//! **Phase 2 — credential exchange**: credentials are disclosed following
//! the trust sequence; the receiver "verifies the satisfaction of the
//! associated policies, checks for revocation and validity dates, and
//! authenticates the ownership", replying with an acknowledgment. A trust
//! failure (revoked/expired/forged credential) aborts the negotiation.
//!
//! Message accounting follows the selected [`Strategy`]: trusting batches
//! all policy alternatives into one message; standard/suspicious disclose
//! one alternative per round; strong-suspicious sends one term per
//! message; the suspicious variants decline without naming missing
//! credentials and demand ownership proofs.

use crate::error::NegotiationError;
use crate::message::{Message, Side};
use crate::party::Party;
use crate::strategy::{CredentialFormat, Strategy};
use crate::transcript::Transcript;
use crate::tree::{NegotiationTree, NodeId, NodeStatus};
use crate::view::{Disclosure, TrustSequence};
use trust_vo_credential::{Credential, CredentialError, CredentialId, Timestamp};
use trust_vo_obs::{ObsContext, SpanGuard};
use trust_vo_policy::DisclosurePolicy;

/// Configuration for one negotiation run.
#[derive(Debug, Clone)]
pub struct NegotiationConfig {
    /// The strategy both parties agree on at `StartNegotiation` time.
    pub strategy: Strategy,
    /// The credential wire format in use.
    pub format: CredentialFormat,
    /// The negotiation instant (validity windows are checked against it).
    pub at: Timestamp,
    /// Recursion bound on the policy graph (defense against pathological
    /// policy sets).
    pub max_depth: usize,
    /// Message budget: the negotiation is interrupted once this many
    /// messages have been exchanged ("if any unforeseen event happens, an
    /// interruption", §4.2 — here, the event is the counterpart giving up
    /// on an endless policy exchange). `usize::MAX` disables the budget.
    pub max_messages: usize,
    /// Observability sink (disabled by default): each phase opens a span
    /// parented under the context and reports `negotiation.*` counters.
    pub obs: ObsContext,
}

impl NegotiationConfig {
    /// A config with the given strategy, X-TNL format, and the given time.
    pub fn new(strategy: Strategy, at: Timestamp) -> Self {
        NegotiationConfig {
            strategy,
            format: CredentialFormat::Xtnl,
            at,
            max_depth: 24,
            max_messages: usize::MAX,
            obs: ObsContext::disabled(),
        }
    }

    /// This config with the given observability context.
    pub fn with_obs(mut self, obs: ObsContext) -> Self {
        self.obs = obs;
        self
    }
}

/// The result of a successful negotiation.
#[derive(Debug, Clone)]
pub struct NegotiationOutcome {
    /// The requested resource, now granted.
    pub resource: String,
    /// The agreed trust sequence (already executed).
    pub sequence: TrustSequence,
    /// Message/round accounting.
    pub transcript: Transcript,
    /// The negotiation tree as explored.
    pub tree: NegotiationTree,
}

/// The satisfied view found by phase 1.
#[derive(Debug, Clone)]
enum Plan {
    /// The resource flows freely (DELIV rule or ungoverned resource).
    Deliv,
    /// A satisfied policy rule.
    Rule { terms: Vec<TermPlan> },
}

#[derive(Debug, Clone)]
struct TermPlan {
    /// The side disclosing the satisfying credential.
    by: Side,
    credential: CredentialId,
    cred_type: String,
    /// How that credential's own protection is satisfied.
    release: Box<Plan>,
}

struct Engine<'a> {
    requester: &'a Party,
    controller: &'a Party,
    cfg: &'a NegotiationConfig,
    transcript: Transcript,
    tree: NegotiationTree,
}

impl<'a> Engine<'a> {
    fn party(&self, side: Side) -> &'a Party {
        match side {
            Side::Requester => self.requester,
            Side::Controller => self.controller,
        }
    }

    /// Phase 1 for one resource owned by `owner`, expanding `node`.
    fn plan_release(
        &mut self,
        owner: Side,
        resource: &str,
        node: NodeId,
        stack: &mut Vec<(Side, String)>,
    ) -> Option<Plan> {
        if stack.len() >= self.cfg.max_depth {
            return None;
        }
        let key = (owner, resource.to_owned());
        if stack.contains(&key) {
            // Interlocked policies: this branch deadlocks.
            return None;
        }
        stack.push(key);
        let result = self.plan_release_inner(owner, resource, node, stack);
        stack.pop();
        if let Some(Plan::Deliv) = &result {
            self.tree.set_status(node, NodeStatus::Deliv)
        }
        if result.is_none() {
            self.tree.set_status(node, NodeStatus::Failed);
        }
        result
    }

    fn plan_release_inner(
        &mut self,
        owner: Side,
        resource: &str,
        node: NodeId,
        stack: &mut Vec<(Side, String)>,
    ) -> Option<Plan> {
        let owner_party = self.party(owner);
        let alternatives: Vec<DisclosurePolicy> = owner_party
            .alternatives_for(resource)
            .into_iter()
            .cloned()
            .collect();
        // The counterpart asks for the resource's policies.
        self.transcript.log(
            owner.other(),
            Message::PolicyRequest {
                resource: resource.to_owned(),
            },
        );
        if alternatives.is_empty() {
            // Ungoverned resources are freely released.
            return Some(Plan::Deliv);
        }
        if self.cfg.strategy.batches_alternatives() {
            // Trusting: every alternative is disclosed in one message.
            self.transcript.policies_disclosed += alternatives.len();
            self.transcript.policy_rounds += 1;
            self.transcript.log(
                owner,
                Message::PolicyDisclosure {
                    policies: alternatives.clone(),
                },
            );
        }
        for policy in &alternatives {
            if !self.cfg.strategy.batches_alternatives() {
                self.transcript.policies_disclosed += 1;
                let terms = policy.terms().len().max(1);
                let per_message = self.cfg.strategy.terms_per_message();
                let messages = terms.div_ceil(per_message.max(1)).max(1);
                self.transcript.policy_rounds += messages;
                for _ in 0..messages {
                    self.transcript.log(
                        owner,
                        Message::PolicyDisclosure {
                            policies: vec![policy.clone()],
                        },
                    );
                }
            }
            if policy.is_deliv() {
                self.tree.choose_edge(node, &policy.id);
                return Some(Plan::Deliv);
            }
            if let Some(plan) = self.try_policy(owner, policy, node, stack) {
                self.tree.choose_edge(node, &policy.id);
                return Some(plan);
            }
            self.transcript.failed_alternatives += 1;
        }
        None
    }

    /// Try to satisfy all terms of one policy alternative.
    fn try_policy(
        &mut self,
        owner: Side,
        policy: &DisclosurePolicy,
        node: NodeId,
        stack: &mut Vec<(Side, String)>,
    ) -> Option<Plan> {
        let labels: Vec<String> = policy.terms().iter().map(|t| t.key()).collect();
        let children = self.tree.expand(node, policy.id.clone(), &labels);
        let counterpart = owner.other();
        let mut term_plans = Vec::with_capacity(policy.terms().len());
        for (term, &child) in policy.terms().iter().zip(&children) {
            // Which of the counterpart's credentials satisfy the term?
            // Each party knows the validity windows of its own credentials
            // and never offers one that is expired at negotiation time
            // (revocation, by contrast, is only detected by the receiver
            // during the exchange phase — the §4.2 failure mode).
            let candidates: Vec<(CredentialId, String)> = self
                .party(counterpart)
                .satisfying(term)
                .into_iter()
                .filter(|c| c.header.validity.contains(self.cfg.at))
                .map(|c| (c.id().clone(), c.cred_type().to_owned()))
                .collect();
            if candidates.is_empty() {
                if self.cfg.strategy.reveals_missing() {
                    self.transcript.log(
                        counterpart,
                        Message::NotPossessed {
                            resource: term.key(),
                        },
                    );
                } else {
                    self.transcript.log(counterpart, Message::Decline);
                }
                self.tree.set_status(child, NodeStatus::Failed);
                return None;
            }
            let mut satisfied = None;
            for (cred_id, cred_type) in candidates {
                if let Some(release) = self.plan_release(counterpart, &cred_type, child, stack) {
                    self.tree
                        .set_status(child, NodeStatus::SatisfiedBy(cred_id.clone()));
                    satisfied = Some(TermPlan {
                        by: counterpart,
                        credential: cred_id,
                        cred_type,
                        release: Box::new(release),
                    });
                    break;
                }
            }
            term_plans.push(satisfied?);
        }
        Some(Plan::Rule { terms: term_plans })
    }
}

fn sequence_of(plan: &Plan, out: &mut TrustSequence) {
    if let Plan::Rule { terms } = plan {
        for term in terms {
            // Prerequisites of the credential first …
            sequence_of(&term.release, out);
            // … then the credential itself.
            out.push(Disclosure {
                by: term.by,
                cred_id: term.credential.clone(),
                cred_type: term.cred_type.clone(),
            });
        }
    }
}

/// The result of the policy evaluation phase: a trust sequence agreed on
/// by both parties, plus the exploration record.
#[derive(Debug, Clone)]
pub struct PolicyPhase {
    /// The requested resource.
    pub resource: String,
    /// The agreed trust sequence (not yet executed).
    pub sequence: TrustSequence,
    /// Accounting so far (phase 1 messages only).
    pub transcript: Transcript,
    /// The negotiation tree as explored.
    pub tree: NegotiationTree,
}

/// Reports phase-1 accounting into the config's observability context:
/// one `negotiation.*` counter per transcript column, plus an `outcome`
/// span field. Called on every return path so interrupted and failed
/// negotiations are counted too.
fn record_policy_phase(
    cfg: &NegotiationConfig,
    span: &mut SpanGuard,
    transcript: &Transcript,
    outcome: &str,
) {
    if !cfg.obs.is_enabled() {
        return;
    }
    let obs = &cfg.obs;
    obs.add("negotiation.messages", transcript.message_count() as u64);
    obs.add("negotiation.policy_rounds", transcript.policy_rounds as u64);
    obs.add(
        "negotiation.policies_disclosed",
        transcript.policies_disclosed as u64,
    );
    // Each disclosed policy is evaluated against the counterpart profile —
    // the same accounting the SimClock charges as PolicyEvaluation.
    obs.add(
        "negotiation.policy_evaluations",
        transcript.policies_disclosed as u64,
    );
    obs.add(
        "negotiation.failed_alternatives",
        transcript.failed_alternatives as u64,
    );
    if outcome != "ok" {
        obs.add("negotiation.failures", 1);
    }
    span.field("outcome", outcome);
}

/// Run phase 1 (policy evaluation) only: determine a trust sequence.
///
/// This is the operation behind the TN web service's `PolicyExchange`
/// endpoint; [`negotiate`] composes it with [`exchange_credentials`].
pub fn evaluate_policies(
    requester: &Party,
    controller: &Party,
    resource: &str,
    cfg: &NegotiationConfig,
) -> Result<PolicyPhase, NegotiationError> {
    let mut span = cfg.obs.span("negotiation.policy_phase");
    if span.id().is_some() {
        span.field("resource", resource);
        span.field("strategy", cfg.strategy.to_string());
    }
    if !cfg.strategy.compatible_with(cfg.format) {
        record_policy_phase(cfg, &mut span, &Transcript::new(), "incompatible-format");
        return Err(NegotiationError::IncompatibleFormat {
            detail: format!(
                "strategy '{}' requires partial hiding, which format {:?} does not support",
                cfg.strategy, cfg.format
            ),
        });
    }
    let mut engine = Engine {
        requester,
        controller,
        cfg,
        transcript: Transcript::new(),
        tree: NegotiationTree::new(resource, Side::Controller),
    };
    engine.transcript.log(
        Side::Requester,
        Message::Start {
            resource: resource.to_owned(),
            strategy: cfg.strategy,
        },
    );
    let mut stack = Vec::new();
    let root = engine.tree.root();
    let plan = engine.plan_release(Side::Controller, resource, root, &mut stack);
    if engine.transcript.message_count() > cfg.max_messages {
        engine.transcript.log(
            Side::Controller,
            Message::Failure {
                reason: "message budget exhausted".into(),
            },
        );
        record_policy_phase(cfg, &mut span, &engine.transcript, "interrupted");
        return Err(NegotiationError::Interrupted {
            reason: format!(
                "policy exchange exceeded the {}-message budget",
                cfg.max_messages
            ),
        });
    }
    let Some(plan) = plan else {
        engine.transcript.log(
            Side::Controller,
            Message::Failure {
                reason: "no satisfiable view".into(),
            },
        );
        record_policy_phase(cfg, &mut span, &engine.transcript, "no-trust-sequence");
        return Err(NegotiationError::NoTrustSequence {
            resource: resource.to_owned(),
        });
    };
    let mut sequence = TrustSequence::new();
    sequence_of(&plan, &mut sequence);
    record_policy_phase(cfg, &mut span, &engine.transcript, "ok");
    Ok(PolicyPhase {
        resource: resource.to_owned(),
        sequence,
        transcript: engine.transcript,
        tree: engine.tree,
    })
}

/// Phase-2 accounting deltas relative to the transcript handed in (phase
/// 1 and phase 2 share one transcript, so only the growth is this
/// phase's contribution).
struct ExchangeEntry {
    messages: usize,
    credentials_disclosed: usize,
    verifications: usize,
    ownership_proofs: usize,
}

/// Reports phase-2 accounting (deltas vs. `entry`) into the config's
/// observability context. Called on every return path.
fn record_exchange_phase(
    cfg: &NegotiationConfig,
    span: &mut SpanGuard,
    transcript: &Transcript,
    entry: &ExchangeEntry,
    outcome: &str,
) {
    if !cfg.obs.is_enabled() {
        return;
    }
    let obs = &cfg.obs;
    obs.add(
        "negotiation.messages",
        (transcript.message_count() - entry.messages) as u64,
    );
    obs.add(
        "negotiation.credentials_disclosed",
        (transcript.credentials_disclosed - entry.credentials_disclosed) as u64,
    );
    obs.add(
        "negotiation.verifications",
        (transcript.verifications - entry.verifications) as u64,
    );
    obs.add(
        "negotiation.ownership_proofs",
        (transcript.ownership_proofs - entry.ownership_proofs) as u64,
    );
    if outcome != "ok" {
        obs.add("negotiation.failures", 1);
    }
    span.field("outcome", outcome);
}

/// Run phase 2 (credential exchange) over an agreed trust sequence,
/// consuming the phase-1 record and completing the outcome.
pub fn exchange_credentials(
    requester: &Party,
    controller: &Party,
    phase: PolicyPhase,
    cfg: &NegotiationConfig,
) -> Result<NegotiationOutcome, NegotiationError> {
    let PolicyPhase {
        resource,
        sequence,
        mut transcript,
        mut tree,
    } = phase;
    let mut span = cfg.obs.span("negotiation.exchange_phase");
    if span.id().is_some() {
        span.field("resource", resource.as_str());
        span.field("disclosures", sequence.disclosures().len());
    }
    let entry = ExchangeEntry {
        messages: transcript.message_count(),
        credentials_disclosed: transcript.credentials_disclosed,
        verifications: transcript.verifications,
        ownership_proofs: transcript.ownership_proofs,
    };
    let nonce = session_nonce(requester, controller, &resource);
    for disclosure in sequence.disclosures() {
        // The message budget covers the whole negotiation, not just the
        // policy phase: each disclosure adds two messages (credential +
        // ack), so stop before starting one that cannot fit.
        if transcript.message_count() >= cfg.max_messages {
            transcript.log(
                Side::Controller,
                Message::Failure {
                    reason: "message budget exhausted".into(),
                },
            );
            tree.set_status(tree.root(), NodeStatus::Failed);
            record_exchange_phase(cfg, &mut span, &transcript, &entry, "interrupted");
            return Err(NegotiationError::Interrupted {
                reason: format!(
                    "credential exchange exceeded the {}-message budget",
                    cfg.max_messages
                ),
            });
        }
        let sender = match disclosure.by {
            Side::Requester => requester,
            Side::Controller => controller,
        };
        let receiver = match disclosure.by {
            Side::Requester => controller,
            Side::Controller => requester,
        };
        let cred = sender
            .profile
            .get(&disclosure.cred_id)
            .expect("planned credential is in the sender profile");
        let ownership = if cfg.strategy.requires_ownership_proof() {
            Some(Credential::prove_ownership(&sender.keys, &nonce))
        } else {
            None
        };
        transcript.log(
            disclosure.by,
            Message::CredentialDisclosure {
                cred_id: disclosure.cred_id.0.clone(),
                xml: trust_vo_xmldoc::to_string(&cred.to_xml()),
                ownership,
            },
        );
        transcript.credentials_disclosed += 1;

        // Receiver-side verification.
        transcript.verifications += 1;
        let check = verify_disclosure(cred, receiver, cfg, &nonce, ownership.as_ref());
        if let Err(cause) = check {
            transcript.log(
                disclosure.by.other(),
                Message::Failure {
                    reason: cause.to_string(),
                },
            );
            tree.set_status(tree.root(), NodeStatus::Failed);
            record_exchange_phase(cfg, &mut span, &transcript, &entry, "trust-failure");
            return Err(NegotiationError::TrustFailure { cause });
        }
        if cfg.strategy.requires_ownership_proof() {
            transcript.ownership_proofs += 1;
        }
        transcript.log(disclosure.by.other(), Message::Ack);
    }
    transcript.log(Side::Controller, Message::Success);
    record_exchange_phase(cfg, &mut span, &transcript, &entry, "ok");
    Ok(NegotiationOutcome {
        resource,
        sequence,
        transcript,
        tree,
    })
}

/// Run a full two-phase negotiation: `requester` asks `controller` for
/// `resource`.
pub fn negotiate(
    requester: &Party,
    controller: &Party,
    resource: &str,
    cfg: &NegotiationConfig,
) -> Result<NegotiationOutcome, NegotiationError> {
    let phase = evaluate_policies(requester, controller, resource, cfg)?;
    exchange_credentials(requester, controller, phase, cfg)
}

/// Receiver-side checks on one disclosed credential: signature, validity,
/// revocation, trusted issuer, and (for suspicious strategies) ownership.
/// Public so the TN web service can verify per `CredentialExchange` call.
pub fn verify_disclosure(
    cred: &Credential,
    receiver: &Party,
    cfg: &NegotiationConfig,
    nonce: &[u8],
    ownership: Option<&trust_vo_crypto::Signature>,
) -> Result<(), CredentialError> {
    cred.verify(cfg.at, Some(&receiver.crl))?;
    if !receiver.trusted_roots.is_empty()
        && !receiver.trusted_roots.contains(&cred.header.issuer_key)
    {
        // The issuer is not directly trusted: try to reach a trusted root
        // through the receiver's known intermediate credentials ("…
        // eventually retrieving those credentials that are not immediately
        // available through credentials chains", §4.2).
        let chain = receiver
            .chains
            .resolve(cred, &receiver.trusted_roots)
            .ok_or_else(|| CredentialError::UnknownIssuer(cred.header.issuer.clone()))?;
        trust_vo_credential::chain::verify_chain(
            &chain,
            &receiver.trusted_roots,
            cfg.at,
            Some(&receiver.crl),
        )?;
    }
    if cfg.strategy.requires_ownership_proof() {
        let proof = ownership.ok_or(CredentialError::NotOwner {
            cred_id: cred.id().0.clone(),
        })?;
        cred.authenticate_ownership(nonce, proof)?;
    }
    Ok(())
}

/// The deterministic per-session nonce ownership proofs are bound to.
pub fn session_nonce(requester: &Party, controller: &Party, resource: &str) -> Vec<u8> {
    let mut h = trust_vo_crypto::sha256::Sha256::new();
    h.update(requester.name.as_bytes());
    h.update(&[0]);
    h.update(controller.name.as_bytes());
    h.update(&[0]);
    h.update(resource.as_bytes());
    h.finalize().to_vec()
}

/// Count the satisfiable views for a negotiation (bounded by `cap`),
/// without message accounting — "the interplay goes on until one or more
/// potential trust sequences are determined" (§4.2). Used by tests and the
/// scaling bench.
pub fn count_views(
    requester: &Party,
    controller: &Party,
    resource: &str,
    cfg: &NegotiationConfig,
    cap: usize,
) -> usize {
    fn views(
        requester: &Party,
        controller: &Party,
        cfg: &NegotiationConfig,
        owner: Side,
        resource: &str,
        stack: &mut Vec<(Side, String)>,
        cap: usize,
    ) -> usize {
        if stack.len() >= cfg.max_depth {
            return 0;
        }
        let key = (owner, resource.to_owned());
        if stack.contains(&key) {
            return 0;
        }
        stack.push(key);
        let owner_party = match owner {
            Side::Requester => requester,
            Side::Controller => controller,
        };
        let alternatives: Vec<DisclosurePolicy> = owner_party
            .alternatives_for(resource)
            .into_iter()
            .cloned()
            .collect();
        let mut total = 0usize;
        if alternatives.is_empty() {
            total = 1;
        }
        for policy in &alternatives {
            if total >= cap {
                break;
            }
            if policy.is_deliv() {
                total += 1;
                continue;
            }
            let counterpart = owner.other();
            let counterpart_party = match counterpart {
                Side::Requester => requester,
                Side::Controller => controller,
            };
            let mut product = 1usize;
            for term in policy.terms() {
                let mut term_ways = 0usize;
                for cred in counterpart_party.satisfying(term) {
                    // Same validity filter as planning and enumeration:
                    // parties never offer credentials expired at cfg.at.
                    if !cred.header.validity.contains(cfg.at) {
                        continue;
                    }
                    term_ways += views(
                        requester,
                        controller,
                        cfg,
                        counterpart,
                        cred.cred_type(),
                        stack,
                        cap,
                    );
                    if term_ways >= cap {
                        break;
                    }
                }
                product = product.saturating_mul(term_ways).min(cap);
                if product == 0 {
                    break;
                }
            }
            total = (total + product).min(cap);
        }
        stack.pop();
        total
    }
    let mut stack = Vec::new();
    views(
        requester,
        controller,
        cfg,
        Side::Controller,
        resource,
        &mut stack,
        cap,
    )
}

// The `PolicyId` import is used in tree interactions; re-exported here for
// integration tests that inspect chosen edges.
#[doc(hidden)]
pub use trust_vo_policy::PolicyId as _PolicyIdForTests;

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{Attribute, CredentialAuthority, Sensitivity, TimeRange};
    use trust_vo_policy::{Resource, Term};

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    /// Build the paper's Fig. 2 / §5 scenario:
    /// * Aircraft (controller) protects VoMembership with WebDesignerQuality.
    /// * Aerospace (requester) holds an ISO9000/WebDesignerQuality credential,
    ///   protected by: AAACreditation OR BalanceSheet from the Aircraft side.
    /// * Aircraft holds an AAACreditation (and a BalanceSheet) credential,
    ///   both freely deliverable.
    fn fig2_parties() -> (Party, Party, CredentialAuthority) {
        let mut ca = CredentialAuthority::new("AAA");
        let mut aircraft = Party::new("Aircraft Company");
        let mut aerospace = Party::new("Aerospace Company");

        let quality = ca
            .issue(
                "WebDesignerQuality",
                &aerospace.name,
                aerospace.keys.public,
                vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
                window(),
            )
            .unwrap();
        aerospace
            .profile
            .add_with_sensitivity(quality, Sensitivity::Medium);

        let accreditation = ca
            .issue(
                "AAACreditation",
                &aircraft.name,
                aircraft.keys.public,
                vec![],
                window(),
            )
            .unwrap();
        aircraft.profile.add(accreditation);
        let sheet = ca
            .issue(
                "BalanceSheet",
                &aircraft.name,
                aircraft.keys.public,
                vec![Attribute::new("Issuer", "BBB")],
                window(),
            )
            .unwrap();
        aircraft.profile.add(sheet);

        // Controller policy: VoMembership <- WebDesignerQuality.
        aircraft.policies.add(DisclosurePolicy::rule(
            "p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        // Aircraft's credentials are freely deliverable.
        aircraft.policies.add(DisclosurePolicy::deliv(
            "d1",
            Resource::credential("AAACreditation"),
        ));
        aircraft.policies.add(DisclosurePolicy::deliv(
            "d2",
            Resource::credential("BalanceSheet"),
        ));

        // Requester policy: WebDesignerQuality <- AAACreditation | BalanceSheet.
        aerospace.policies.add(DisclosurePolicy::rule(
            "p2",
            Resource::credential("WebDesignerQuality"),
            vec![Term::of_type("AAACreditation")],
        ));
        aerospace.policies.add(DisclosurePolicy::rule(
            "p3",
            Resource::credential("WebDesignerQuality"),
            vec![Term::of_type("BalanceSheet")],
        ));

        // Both trust the CA.
        aircraft.trust_root(ca.public_key());
        aerospace.trust_root(ca.public_key());
        (aerospace, aircraft, ca)
    }

    #[test]
    fn fig2_negotiation_succeeds() {
        let (aerospace, aircraft, _) = fig2_parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap();
        // Trust sequence: Aircraft's AAACreditation first, then Aerospace's
        // WebDesignerQuality.
        let seq: Vec<_> = outcome
            .sequence
            .disclosures()
            .iter()
            .map(|d| (d.by, d.cred_type.clone()))
            .collect();
        assert_eq!(
            seq,
            vec![
                (Side::Controller, "AAACreditation".to_owned()),
                (Side::Requester, "WebDesignerQuality".to_owned()),
            ]
        );
        assert_eq!(outcome.transcript.credentials_disclosed, 2);
        assert!(outcome.tree.depth() >= 3);
    }

    #[test]
    fn all_strategies_agree_on_success() {
        let (aerospace, aircraft, _) = fig2_parties();
        for strategy in Strategy::ALL {
            let cfg = NegotiationConfig::new(strategy, at());
            let outcome = negotiate(&aerospace, &aircraft, "VoMembership", &cfg);
            assert!(outcome.is_ok(), "strategy {strategy} failed: {outcome:?}");
        }
    }

    #[test]
    fn trusting_uses_fewer_messages_than_strong_suspicious() {
        let (aerospace, aircraft, _) = fig2_parties();
        let trusting = negotiate(
            &aerospace,
            &aircraft,
            "VoMembership",
            &NegotiationConfig::new(Strategy::Trusting, at()),
        )
        .unwrap();
        let strong = negotiate(
            &aerospace,
            &aircraft,
            "VoMembership",
            &NegotiationConfig::new(Strategy::StrongSuspicious, at()),
        )
        .unwrap();
        assert!(
            trusting.transcript.policy_rounds <= strong.transcript.policy_rounds,
            "trusting {} vs strong {}",
            trusting.transcript.policy_rounds,
            strong.transcript.policy_rounds
        );
        assert_eq!(strong.transcript.ownership_proofs, 2);
        assert_eq!(trusting.transcript.ownership_proofs, 0);
    }

    #[test]
    fn missing_credential_fails_with_no_sequence() {
        let (mut aerospace, aircraft, _) = fig2_parties();
        // Strip the requester's only quality credential.
        let id = aerospace.profile.credentials()[0].id().clone();
        aerospace.profile.remove(&id);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let err = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap_err();
        assert!(matches!(err, NegotiationError::NoTrustSequence { .. }));
    }

    #[test]
    fn revoked_credential_fails_in_exchange_phase() {
        let (aerospace, mut aircraft, ca) = fig2_parties();
        // Aircraft's CRL learns that the aerospace quality credential is revoked.
        let revoked_id = aerospace.profile.credentials()[0].id().clone();
        aircraft.crl.revoke(revoked_id, at());
        let _ = ca;
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let err = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap_err();
        assert!(
            matches!(
                &err,
                NegotiationError::TrustFailure {
                    cause: CredentialError::Revoked { .. }
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn expired_credentials_are_never_offered() {
        // Parties filter their own expired credentials during planning, so
        // a negotiation after everything lapsed finds no trust sequence
        // (rather than failing mid-exchange).
        let (aerospace, aircraft, _) = fig2_parties();
        let late = window().not_after.plus_days(30);
        let cfg = NegotiationConfig::new(Strategy::Standard, late);
        let err = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap_err();
        assert!(matches!(err, NegotiationError::NoTrustSequence { .. }));
    }

    #[test]
    fn expired_credential_detected_in_exchange_when_sender_lies() {
        // If a (buggy or malicious) sender bypasses the planning filter,
        // the receiver's exchange-phase check still catches the expiry.
        let (aerospace, _, _) = fig2_parties();
        let cred = aerospace.profile.credentials()[0].clone();
        let late = window().not_after.plus_days(30);
        let cfg = NegotiationConfig::new(Strategy::Standard, late);
        let receiver = Party::new("receiver");
        let nonce = b"n";
        let err = super::verify_disclosure(&cred, &receiver, &cfg, nonce, None).unwrap_err();
        assert!(matches!(err, CredentialError::Expired { .. }));
    }

    #[test]
    fn untrusted_issuer_fails() {
        let (aerospace, mut aircraft, _) = fig2_parties();
        // Aircraft only trusts some other CA now.
        aircraft.trusted_roots.clear();
        aircraft.trust_root(trust_vo_crypto::KeyPair::from_seed(b"other-ca").public);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let err = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap_err();
        assert!(matches!(
            err,
            NegotiationError::TrustFailure {
                cause: CredentialError::UnknownIssuer(_)
            }
        ));
    }

    #[test]
    fn incompatible_format_rejected_upfront() {
        let (aerospace, aircraft, _) = fig2_parties();
        let mut cfg = NegotiationConfig::new(Strategy::Suspicious, at());
        cfg.format = CredentialFormat::X509v2;
        let err = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap_err();
        assert!(matches!(err, NegotiationError::IncompatibleFormat { .. }));
        // The selective extension lifts the restriction.
        cfg.format = CredentialFormat::SelectiveX509;
        assert!(negotiate(&aerospace, &aircraft, "VoMembership", &cfg).is_ok());
    }

    #[test]
    fn interlocked_policies_deadlock_cleanly() {
        // A wants B's X before giving Y; B wants A's Y before giving X.
        let mut ca = CredentialAuthority::new("CA");
        let mut a = Party::new("A");
        let mut b = Party::new("B");
        let ax = ca.issue("Y", "A", a.keys.public, vec![], window()).unwrap();
        a.profile.add(ax);
        let bx = ca.issue("X", "B", b.keys.public, vec![], window()).unwrap();
        b.profile.add(bx);
        a.policies.add(DisclosurePolicy::rule(
            "pa",
            Resource::credential("Y"),
            vec![Term::of_type("X")],
        ));
        b.policies.add(DisclosurePolicy::rule(
            "pb",
            Resource::credential("X"),
            vec![Term::of_type("Y")],
        ));
        b.policies.add(DisclosurePolicy::rule(
            "root",
            Resource::service("Svc"),
            vec![Term::of_type("Y")],
        ));
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let err = negotiate(&a, &b, "Svc", &cfg).unwrap_err();
        assert!(matches!(err, NegotiationError::NoTrustSequence { .. }));
    }

    #[test]
    fn ungoverned_resource_granted_immediately() {
        let a = Party::new("A");
        let b = Party::new("B");
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate(&a, &b, "PublicInfo", &cfg).unwrap();
        assert!(outcome.sequence.is_empty());
        assert_eq!(outcome.transcript.credentials_disclosed, 0);
    }

    #[test]
    fn second_alternative_used_when_first_fails() {
        let (mut aerospace, mut aircraft, _) = fig2_parties();
        // Remove the aircraft's AAACreditation so alternative p2 fails and
        // p3 (BalanceSheet) is used.
        let id = aircraft
            .profile
            .of_type("AAACreditation")
            .next()
            .unwrap()
            .id()
            .clone();
        aircraft.profile.remove(&id);
        aerospace.trust_root(CredentialAuthority::new("AAA").public_key());
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap();
        let types: Vec<_> = outcome
            .sequence
            .disclosures()
            .iter()
            .map(|d| d.cred_type.as_str())
            .collect();
        assert!(types.contains(&"BalanceSheet"));
        assert!(outcome.transcript.failed_alternatives >= 1);
    }

    #[test]
    fn count_views_matches_alternatives() {
        let (aerospace, aircraft, _) = fig2_parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        // Two views: via AAACreditation and via BalanceSheet.
        assert_eq!(
            count_views(&aerospace, &aircraft, "VoMembership", &cfg, 100),
            2
        );
        assert_eq!(count_views(&aerospace, &aircraft, "Nothing", &cfg, 100), 1);
        // ungoverned
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_counters_match_transcript_accounting() {
        use trust_vo_obs::{Collector, ObsContext, Record};

        let (aerospace, aircraft, _) = fig2_parties();
        let collector = Collector::new();
        let cfg = NegotiationConfig::new(Strategy::StrongSuspicious, at())
            .with_obs(ObsContext::new(collector.clone()));
        let outcome = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap();
        let t = &outcome.transcript;
        let snap = collector.metrics();
        assert_eq!(
            snap.counter("negotiation.messages"),
            t.message_count() as u64
        );
        assert_eq!(
            snap.counter("negotiation.policy_rounds"),
            t.policy_rounds as u64
        );
        assert_eq!(
            snap.counter("negotiation.policies_disclosed"),
            t.policies_disclosed as u64
        );
        assert_eq!(
            snap.counter("negotiation.credentials_disclosed"),
            t.credentials_disclosed as u64
        );
        assert_eq!(
            snap.counter("negotiation.verifications"),
            t.verifications as u64
        );
        assert_eq!(
            snap.counter("negotiation.ownership_proofs"),
            t.ownership_proofs as u64
        );
        assert_eq!(snap.counter("negotiation.failures"), 0);
        // One span per phase, both closed with outcome "ok".
        let spans: Vec<_> = collector
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.name == "negotiation.policy_phase"));
        assert!(spans.iter().any(|s| s.name == "negotiation.exchange_phase"));
        for span in &spans {
            assert!(span
                .fields
                .iter()
                .any(|(k, v)| k == "outcome" && *v == trust_vo_obs::Value::Str("ok".into())));
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_counts_failed_negotiations() {
        use trust_vo_obs::{Collector, ObsContext};

        let (mut aerospace, aircraft, _) = fig2_parties();
        let id = aerospace.profile.credentials()[0].id().clone();
        aerospace.profile.remove(&id);
        let collector = Collector::new();
        let cfg = NegotiationConfig::new(Strategy::Standard, at())
            .with_obs(ObsContext::new(collector.clone()));
        negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap_err();
        assert_eq!(collector.metrics().counter("negotiation.failures"), 1);
    }

    #[test]
    fn sequence_respects_dependency_order() {
        let (aerospace, aircraft, _) = fig2_parties();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate(&aerospace, &aircraft, "VoMembership", &cfg).unwrap();
        // The aircraft's accreditation must precede the aerospace quality
        // credential it unlocks.
        let accr = aircraft
            .profile
            .of_type("AAACreditation")
            .next()
            .unwrap()
            .id()
            .clone();
        let quality = aerospace
            .profile
            .of_type("WebDesignerQuality")
            .next()
            .unwrap()
            .id()
            .clone();
        assert!(outcome.sequence.respects_order(&[(accr, quality)]));
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use crate::strategy::Strategy;
    use trust_vo_credential::{CredentialAuthority, TimeRange};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    /// The requester's credential is issued by an intermediate CA the
    /// controller does not trust directly; the controller holds the root's
    /// cross-certificate for the intermediate.
    fn chained_world() -> (Party, Party) {
        let root = CredentialAuthority::new("Root CA");
        let mut intermediate = CredentialAuthority::new("Regional CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");

        let quality = intermediate
            .issue("Quality", "R", requester.keys.public, vec![], window())
            .unwrap();
        requester.profile.add(quality);

        // The root certifies the intermediate: a credential whose subject
        // key is the intermediate's issuing key.
        let root_keys = trust_vo_crypto::KeyPair::from_seed(b"authority:Root CA");
        let intermediate_subject_key = intermediate.public_key();
        let cross_cert = Credential::issue_signed(
            trust_vo_credential::Header {
                cred_id: trust_vo_credential::CredentialId("cross-1".into()),
                cred_type: "CACert".into(),
                issuer: "Root CA".into(),
                issuer_key: root.public_key(),
                subject: "Regional CA".into(),
                subject_key: intermediate_subject_key,
                validity: window(),
            },
            vec![],
            &root_keys,
        );
        controller.chains.add(cross_cert);

        controller.policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("Svc"),
            vec![Term::of_type("Quality")],
        ));
        // The controller trusts ONLY the root.
        controller.trust_root(root.public_key());
        requester.trust_root(root.public_key());
        requester.trust_root(intermediate.public_key());
        (requester, controller)
    }

    #[test]
    fn chain_resolution_accepts_indirectly_trusted_issuer() {
        let (requester, controller) = chained_world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate(&requester, &controller, "Svc", &cfg);
        assert!(outcome.is_ok(), "{outcome:?}");
    }

    #[test]
    fn missing_chain_link_still_rejected() {
        let (requester, mut controller) = chained_world();
        controller.chains = trust_vo_credential::chain::ChainDirectory::new();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let err = negotiate(&requester, &controller, "Svc", &cfg).unwrap_err();
        assert!(matches!(
            err,
            NegotiationError::TrustFailure {
                cause: CredentialError::UnknownIssuer(_)
            }
        ));
    }

    #[test]
    fn revoked_chain_link_rejected() {
        let (requester, mut controller) = chained_world();
        controller
            .crl
            .revoke(trust_vo_credential::CredentialId("cross-1".into()), at());
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let err = negotiate(&requester, &controller, "Svc", &cfg).unwrap_err();
        assert!(matches!(
            err,
            NegotiationError::TrustFailure {
                cause: CredentialError::Revoked { .. }
            }
        ));
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn message_budget_interrupts_long_exchanges() {
        // A deep chain needs many policy messages; a tiny budget interrupts.
        let (requester, controller) = {
            // Reuse the chain generator shape inline.
            use trust_vo_credential::{CredentialAuthority, TimeRange};
            use trust_vo_policy::{DisclosurePolicy, Resource, Term};
            let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
            let mut ca = CredentialAuthority::new("CA");
            let mut requester = Party::new("R");
            let mut controller = Party::new("C");
            for level in 0..8usize {
                let ty = format!("T{level}");
                let owner = if level % 2 == 0 {
                    &mut requester
                } else {
                    &mut controller
                };
                let cred = ca
                    .issue(&ty, &owner.name.clone(), owner.keys.public, vec![], window)
                    .unwrap();
                owner.profile.add(cred);
                let resource = Resource::credential(ty);
                if level + 1 < 8 {
                    owner.policies.add(DisclosurePolicy::rule(
                        format!("p{level}"),
                        resource,
                        vec![Term::of_type(format!("T{}", level + 1))],
                    ));
                } else {
                    owner
                        .policies
                        .add(DisclosurePolicy::deliv(format!("d{level}"), resource));
                }
            }
            controller.policies.add(DisclosurePolicy::rule(
                "root",
                Resource::service("Svc"),
                vec![Term::of_type("T0")],
            ));
            requester.trust_root(ca.public_key());
            controller.trust_root(ca.public_key());
            (requester, controller)
        };
        let at = Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let mut cfg = NegotiationConfig::new(Strategy::Standard, at);
        cfg.max_messages = 5;
        let err = negotiate(&requester, &controller, "Svc", &cfg).unwrap_err();
        assert!(
            matches!(err, NegotiationError::Interrupted { .. }),
            "{err:?}"
        );
        // With the default budget it completes.
        let cfg = NegotiationConfig::new(Strategy::Standard, at);
        assert!(negotiate(&requester, &controller, "Svc", &cfg).is_ok());
    }

    #[test]
    fn message_budget_enforced_during_credential_exchange() {
        use trust_vo_credential::{CredentialAuthority, TimeRange};
        use trust_vo_policy::{DisclosurePolicy, Resource, Term};
        // Shallow policy phase (one rule, three terms) but a three-credential
        // exchange: the budget must also interrupt phase 2.
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        for ty in ["A", "B", "C"] {
            let cred = ca
                .issue(ty, "R", requester.keys.public, vec![], window)
                .unwrap();
            requester.profile.add(cred);
        }
        controller.policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("Svc"),
            vec![Term::of_type("A"), Term::of_type("B"), Term::of_type("C")],
        ));
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());

        let at = Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let cfg = NegotiationConfig::new(Strategy::Standard, at);
        // Phase 1 fits the budget on its own...
        let phase = evaluate_policies(&requester, &controller, "Svc", &cfg).unwrap();
        let phase1_messages = phase.transcript.message_count();
        assert_eq!(phase.sequence.disclosures().len(), 3);

        // ...but allow only one more message, so the exchange (two messages
        // per disclosure) must hit the ceiling mid-phase-2.
        let mut tight = cfg.clone();
        tight.max_messages = phase1_messages + 1;
        assert!(phase1_messages <= tight.max_messages);
        let err = negotiate(&requester, &controller, "Svc", &tight).unwrap_err();
        assert!(
            matches!(err, NegotiationError::Interrupted { .. }),
            "{err:?}"
        );

        // The untightened budget completes and discloses all three.
        let ok = negotiate(&requester, &controller, "Svc", &cfg).unwrap();
        assert_eq!(ok.transcript.credentials_disclosed, 3);
    }
}

#[cfg(test)]
mod strategy_message_tests {
    use super::*;
    use crate::strategy::Strategy;
    use trust_vo_credential::{CredentialAuthority, TimeRange};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    /// A conjunctive three-term policy: strong-suspicious must split it
    /// into one message per term, the others send it whole.
    #[test]
    fn strong_suspicious_splits_conjunctions() {
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let at = Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        for ty in ["A", "B", "C"] {
            let cred = ca
                .issue(ty, "R", requester.keys.public, vec![], window)
                .unwrap();
            requester.profile.add(cred);
        }
        controller.policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("Svc"),
            vec![Term::of_type("A"), Term::of_type("B"), Term::of_type("C")],
        ));
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());

        let standard = negotiate(
            &requester,
            &controller,
            "Svc",
            &NegotiationConfig::new(Strategy::Standard, at),
        )
        .unwrap();
        let strong = negotiate(
            &requester,
            &controller,
            "Svc",
            &NegotiationConfig::new(Strategy::StrongSuspicious, at),
        )
        .unwrap();
        // Standard: the whole policy in 1 round; strong: 3 rounds.
        assert_eq!(
            standard.transcript.policy_rounds + 2,
            strong.transcript.policy_rounds
        );
        assert_eq!(
            standard.transcript.count_tag("policy-disclosure") + 2,
            strong.transcript.count_tag("policy-disclosure")
        );
        // Same trust sequence either way.
        assert_eq!(standard.sequence, strong.sequence);
    }
}

#[cfg(test)]
mod count_views_validity_tests {
    use super::*;
    use crate::strategy::Strategy;
    use trust_vo_credential::{CredentialAuthority, TimeRange};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    /// Regression: count_views must apply the same validity filter as
    /// planning and enumeration, so the three APIs agree in the presence
    /// of expired credentials.
    #[test]
    fn expired_credentials_not_counted_as_views() {
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        let fresh_window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let stale_window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2005, 1, 1, 0, 0, 0));
        let valid = ca
            .issue("T", "R", requester.keys.public, vec![], fresh_window)
            .unwrap();
        let expired = ca
            .issue("T", "R", requester.keys.public, vec![], stale_window)
            .unwrap();
        requester.profile.add(valid);
        requester.profile.add(expired);
        controller.policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("Svc"),
            vec![Term::of_type("T")],
        ));
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());
        let cfg = NegotiationConfig::new(
            Strategy::Standard,
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let counted = count_views(&requester, &controller, "Svc", &cfg, 100);
        let enumerated =
            crate::enumerate::enumerate_sequences(&requester, &controller, "Svc", &cfg, 100).len();
        assert_eq!(counted, 1, "only the valid credential forms a view");
        assert_eq!(counted, enumerated);
    }
}
