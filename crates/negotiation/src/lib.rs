//! The Trust-X negotiation engine (paper §4.2).
//!
//! A Trust-X negotiation runs in two phases:
//!
//! 1. **Policy evaluation** — "a bilateral and ordered policy exchange"
//!    whose goal is "to determine a sequence of credentials, called trust
//!    sequence, satisfying the disclosure policies of both parties". The
//!    exchange is tracked in a **negotiation tree** rooted at the requested
//!    resource; nodes are terms, edges are policy rules (simple edges for
//!    single-term rules, multiedges for conjunctive rules). A satisfied
//!    **view** of the tree yields the trust sequence.
//! 2. **Credential exchange** — credentials are disclosed following the
//!    trust sequence; each one is verified (signature, revocation,
//!    validity, ownership) before the next is requested.
//!
//! Modules:
//!
//! * [`strategy`] — the four Trust-X strategies (standard, trusting,
//!   suspicious, strong-suspicious) the TN web service supports (§6.2),
//! * [`tree`] — negotiation trees with simple edges and multiedges,
//! * [`view`] — views and trust-sequence extraction,
//! * [`party`] — a negotiating party: X-Profile, policy set, ontology,
//! * [`message`] — the wire messages of both phases,
//! * [`engine`] — the two-phase driver,
//! * [`transcript`] — message/round/disclosure accounting for the benches,
//! * [`baseline`] — a TrustBuilder-style *eager* baseline for comparison,
//! * [`error`] — failure taxonomy (§4.2: trust failures vs. interruptions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod engine;
pub mod enumerate;
pub mod error;
pub mod message;
pub mod party;
pub mod resume;
pub mod strategy;
pub mod ticket;
pub mod transcript;
pub mod tree;
pub mod view;

pub use cache::{CacheMetrics, CacheStats, ConcurrentSequenceCache, SequenceCache};
pub use engine::{
    count_views, evaluate_policies, exchange_credentials, negotiate, NegotiationConfig,
    NegotiationOutcome, PolicyPhase,
};
pub use enumerate::{
    choose_minimal, enumerate_sequences, negotiate_with_selection, SelectionPolicy,
};
pub use error::NegotiationError;
pub use party::Party;
pub use resume::{ResumeCheckpoint, ResumeError, ResumeToken};
pub use strategy::Strategy;
pub use ticket::{negotiate_with_ticket, session_window_contains, TrustTicket};
pub use transcript::Transcript;
pub use trust_vo_obs::{Collector, ObsContext};
