//! Wire messages exchanged during a negotiation.
//!
//! These mirror the TN web service operations (§6.2): `StartNegotiation`
//! opens a session, `PolicyExchange` carries disclosure policies back and
//! forth during the policy evaluation phase, and `CredentialExchange`
//! carries credentials (with optional ownership proofs) during the
//! credential exchange phase.

use crate::strategy::Strategy;
use trust_vo_crypto::Signature;
use trust_vo_policy::DisclosurePolicy;

/// Which side of the negotiation sent a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The party requesting the resource (the negotiation initiator).
    Requester,
    /// The party controlling the resource.
    Controller,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Requester => Side::Controller,
            Side::Controller => Side::Requester,
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Side::Requester => "requester",
            Side::Controller => "controller",
        })
    }
}

/// A message in the negotiation transcript.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Open a negotiation for a resource with a strategy.
    Start {
        /// The requested resource name.
        resource: String,
        /// The requester's strategy.
        strategy: Strategy,
    },
    /// Request the policies protecting a resource/credential.
    PolicyRequest {
        /// The resource whose policies are requested.
        resource: String,
    },
    /// Disclose one or more policies protecting a resource.
    PolicyDisclosure {
        /// The disclosed policies.
        policies: Vec<DisclosurePolicy>,
    },
    /// Inform the counterpart that a requested credential is not possessed
    /// (sent only by strategies that reveal missing credentials).
    NotPossessed {
        /// The credential type that is not held.
        resource: String,
    },
    /// Decline to continue on a branch without giving a reason (the
    /// suspicious-strategy counterpart of [`Message::NotPossessed`]).
    Decline,
    /// Disclose a credential (canonical XML text), optionally with an
    /// ownership proof over the session nonce.
    CredentialDisclosure {
        /// The credential id.
        cred_id: String,
        /// Canonical XML of the credential.
        xml: String,
        /// Ownership proof (suspicious strategies).
        ownership: Option<Signature>,
    },
    /// Acknowledge a received credential and ask for the next.
    Ack,
    /// The negotiation succeeded; the resource is granted.
    Success,
    /// The negotiation failed.
    Failure {
        /// Reason description.
        reason: String,
    },
}

impl Message {
    /// Short tag for transcript summaries.
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Start { .. } => "start",
            Message::PolicyRequest { .. } => "policy-request",
            Message::PolicyDisclosure { .. } => "policy-disclosure",
            Message::NotPossessed { .. } => "not-possessed",
            Message::Decline => "decline",
            Message::CredentialDisclosure { .. } => "credential-disclosure",
            Message::Ack => "ack",
            Message::Success => "success",
            Message::Failure { .. } => "failure",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other_is_involutive() {
        assert_eq!(Side::Requester.other(), Side::Controller);
        assert_eq!(Side::Controller.other(), Side::Requester);
        assert_eq!(Side::Requester.other().other(), Side::Requester);
    }

    #[test]
    fn tags_cover_all_variants() {
        let msgs = [
            Message::Start {
                resource: "r".into(),
                strategy: Strategy::Standard,
            },
            Message::PolicyRequest {
                resource: "r".into(),
            },
            Message::PolicyDisclosure { policies: vec![] },
            Message::NotPossessed {
                resource: "r".into(),
            },
            Message::Decline,
            Message::CredentialDisclosure {
                cred_id: "c".into(),
                xml: "<x/>".into(),
                ownership: None,
            },
            Message::Ack,
            Message::Success,
            Message::Failure {
                reason: "nope".into(),
            },
        ];
        let tags: Vec<_> = msgs.iter().map(Message::tag).collect();
        assert_eq!(tags.len(), 9);
        assert!(tags.contains(&"start") && tags.contains(&"failure"));
    }
}
