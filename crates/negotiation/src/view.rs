//! Views and trust sequences.
//!
//! "The trust sequence is identified by one tree view, where a view denotes
//! a possible trust sequence that can lead to the negotiation success. The
//! view keeps track of which terms may need to be disclosed to contribute
//! to the success of the negotiation, and of the correct order of
//! certificate exchange." (§4.2)

use crate::message::Side;
use trust_vo_credential::CredentialId;

/// One credential disclosure in a trust sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disclosure {
    /// Who discloses.
    pub by: Side,
    /// The credential.
    pub cred_id: CredentialId,
    /// Its type (for display).
    pub cred_type: String,
}

/// An ordered trust sequence: credentials are disclosed deepest-first, so
/// every credential's protecting policies are already satisfied when it is
/// sent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrustSequence {
    disclosures: Vec<Disclosure>,
}

impl TrustSequence {
    /// An empty sequence (pure-DELIV negotiations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a disclosure (callers append in leaf-to-root order).
    pub fn push(&mut self, disclosure: Disclosure) {
        self.disclosures.push(disclosure);
    }

    /// The disclosures in exchange order.
    pub fn disclosures(&self) -> &[Disclosure] {
        &self.disclosures
    }

    /// Number of disclosures.
    pub fn len(&self) -> usize {
        self.disclosures.len()
    }

    /// True when nothing needs to be disclosed.
    pub fn is_empty(&self) -> bool {
        self.disclosures.is_empty()
    }

    /// Disclosures made by one side.
    pub fn by_side(&self, side: Side) -> impl Iterator<Item = &Disclosure> {
        self.disclosures.iter().filter(move |d| d.by == side)
    }

    /// Validate the central safety invariant used in tests: for every
    /// dependency pair `(earlier ⇒ later)` passed in, `earlier` appears
    /// before `later` in the sequence. Dependencies are credential-id
    /// pairs: the credential satisfying a policy term must be disclosed
    /// before the credential that policy protects.
    pub fn respects_order(&self, dependencies: &[(CredentialId, CredentialId)]) -> bool {
        let position = |id: &CredentialId| self.disclosures.iter().position(|d| &d.cred_id == id);
        dependencies.iter().all(|(before, after)| {
            match (position(before), position(after)) {
                (Some(b), Some(a)) => b < a,
                // Absent credentials cannot violate ordering.
                _ => true,
            }
        })
    }
}

impl std::fmt::Display for TrustSequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, d) in self.disclosures.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{}:{}", d.by, d.cred_type)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(by: Side, id: &str, ty: &str) -> Disclosure {
        Disclosure {
            by,
            cred_id: CredentialId(id.into()),
            cred_type: ty.into(),
        }
    }

    #[test]
    fn push_and_query() {
        let mut seq = TrustSequence::new();
        assert!(seq.is_empty());
        seq.push(d(Side::Requester, "c1", "ISO9000Certified"));
        seq.push(d(Side::Controller, "c2", "AAAMember"));
        seq.push(d(Side::Requester, "c3", "BalanceSheet"));
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.by_side(Side::Requester).count(), 2);
        assert_eq!(seq.by_side(Side::Controller).count(), 1);
    }

    #[test]
    fn display_renders_arrow_chain() {
        let mut seq = TrustSequence::new();
        seq.push(d(Side::Requester, "c1", "A"));
        seq.push(d(Side::Controller, "c2", "B"));
        assert_eq!(seq.to_string(), "requester:A -> controller:B");
    }

    #[test]
    fn respects_order_checks_pairs() {
        let mut seq = TrustSequence::new();
        seq.push(d(Side::Requester, "c1", "A"));
        seq.push(d(Side::Controller, "c2", "B"));
        let ok = [(CredentialId("c1".into()), CredentialId("c2".into()))];
        assert!(seq.respects_order(&ok));
        let bad = [(CredentialId("c2".into()), CredentialId("c1".into()))];
        assert!(!seq.respects_order(&bad));
        // Unknown ids do not constrain.
        let unknown = [(CredentialId("zz".into()), CredentialId("c1".into()))];
        assert!(seq.respects_order(&unknown));
    }
}
