//! Exhaustive view enumeration.
//!
//! "The interplay goes on until one or more potential trust sequences are
//! determined, that is, whenever both parties determine one or more sets
//! of policies that can be satisfied for all the involved resources."
//! (§4.2)
//!
//! [`crate::engine::negotiate`] commits to the *first* satisfiable view
//! (policy order × sensitivity order). This module enumerates **all**
//! satisfiable views (bounded by a cap) so callers can apply their own
//! selection criterion — e.g. fewest disclosures, or fewest disclosures by
//! one side — before entering the credential exchange phase.

use crate::engine::NegotiationConfig;
use crate::message::Side;
use crate::party::Party;
use crate::view::{Disclosure, TrustSequence};

/// Enumerate every satisfiable trust sequence for `resource` (up to `cap`
/// sequences). The returned order is deterministic: alternatives in policy
/// order, candidate credentials least-sensitive first.
pub fn enumerate_sequences(
    requester: &Party,
    controller: &Party,
    resource: &str,
    cfg: &NegotiationConfig,
    cap: usize,
) -> Vec<TrustSequence> {
    let mut stack = Vec::new();
    let partials = release_options(
        requester,
        controller,
        cfg,
        Side::Controller,
        resource,
        &mut stack,
        cap,
    );
    partials
        .into_iter()
        .take(cap)
        .map(|disclosures| {
            let mut seq = TrustSequence::new();
            for d in disclosures {
                seq.push(d);
            }
            seq
        })
        .collect()
}

/// All ways `owner` can release `resource`, each as the ordered disclosure
/// list that must precede (and include) the release.
fn release_options(
    requester: &Party,
    controller: &Party,
    cfg: &NegotiationConfig,
    owner: Side,
    resource: &str,
    stack: &mut Vec<(Side, String)>,
    cap: usize,
) -> Vec<Vec<Disclosure>> {
    if cap == 0 || stack.len() >= cfg.max_depth {
        return Vec::new();
    }
    let key = (owner, resource.to_owned());
    if stack.contains(&key) {
        return Vec::new();
    }
    stack.push(key);
    let owner_party = match owner {
        Side::Requester => requester,
        Side::Controller => controller,
    };
    let alternatives: Vec<_> = owner_party
        .alternatives_for(resource)
        .into_iter()
        .cloned()
        .collect();
    let mut out: Vec<Vec<Disclosure>> = Vec::new();
    if alternatives.is_empty() {
        out.push(Vec::new()); // ungoverned ⇒ freely released
    }
    for policy in &alternatives {
        if out.len() >= cap {
            break;
        }
        if policy.is_deliv() {
            out.push(Vec::new());
            continue;
        }
        // Cross product over the terms: each term contributes its own set
        // of (prerequisites + credential) options.
        let counterpart = owner.other();
        let counterpart_party = match counterpart {
            Side::Requester => requester,
            Side::Controller => controller,
        };
        let mut policy_options: Vec<Vec<Disclosure>> = vec![Vec::new()];
        for term in policy.terms() {
            let mut term_options: Vec<Vec<Disclosure>> = Vec::new();
            for cred in counterpart_party.satisfying(term) {
                if !cred.header.validity.contains(cfg.at) {
                    continue;
                }
                let sub = release_options(
                    requester,
                    controller,
                    cfg,
                    counterpart,
                    cred.cred_type(),
                    stack,
                    cap,
                );
                for mut prereq in sub {
                    prereq.push(Disclosure {
                        by: counterpart,
                        cred_id: cred.id().clone(),
                        cred_type: cred.cred_type().to_owned(),
                    });
                    term_options.push(prereq);
                    if term_options.len() >= cap {
                        break;
                    }
                }
                if term_options.len() >= cap {
                    break;
                }
            }
            // Combine with what we have so far.
            let mut next: Vec<Vec<Disclosure>> = Vec::new();
            'outer: for base in &policy_options {
                for opt in &term_options {
                    let mut combined = base.clone();
                    combined.extend(opt.iter().cloned());
                    next.push(combined);
                    if next.len() >= cap {
                        break 'outer;
                    }
                }
            }
            policy_options = next;
            if policy_options.is_empty() {
                break; // term unsatisfiable ⇒ alternative fails
            }
        }
        out.extend(policy_options);
    }
    stack.pop();
    out.truncate(cap);
    out
}

/// Selection criterion over enumerated sequences: fewest total
/// disclosures, ties broken by fewest disclosures made by `minimize_side`,
/// then by display order (deterministic).
pub fn choose_minimal(sequences: &[TrustSequence], minimize_side: Side) -> Option<&TrustSequence> {
    sequences
        .iter()
        .min_by_key(|s| (s.len(), s.by_side(minimize_side).count(), s.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    /// Controller accepts Quality OR (Sheet AND Member); requester holds
    /// all three, Quality gated on the controller's deliverable Accr.
    fn world() -> (Party, Party) {
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        for ty in ["Quality", "Sheet", "Member"] {
            let cred = ca
                .issue(ty, "R", requester.keys.public, vec![], window())
                .unwrap();
            requester.profile.add(cred);
        }
        let accr = ca
            .issue("Accr", "C", controller.keys.public, vec![], window())
            .unwrap();
        controller.profile.add(accr);
        controller.policies.add(DisclosurePolicy::rule(
            "alt1",
            Resource::service("Svc"),
            vec![Term::of_type("Quality")],
        ));
        controller.policies.add(DisclosurePolicy::rule(
            "alt2",
            Resource::service("Svc"),
            vec![Term::of_type("Sheet"), Term::of_type("Member")],
        ));
        controller
            .policies
            .add(DisclosurePolicy::deliv("d", Resource::credential("Accr")));
        requester.policies.add(DisclosurePolicy::rule(
            "q",
            Resource::credential("Quality"),
            vec![Term::of_type("Accr")],
        ));
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());
        (requester, controller)
    }

    #[test]
    fn enumerates_both_alternatives() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let seqs = enumerate_sequences(&requester, &controller, "Svc", &cfg, 100);
        assert_eq!(seqs.len(), 2);
        // Alternative 1: Accr then Quality (2 disclosures).
        assert_eq!(seqs[0].len(), 2);
        // Alternative 2: Sheet + Member (2 disclosures, no counter-req).
        assert_eq!(seqs[1].len(), 2);
    }

    #[test]
    fn cap_limits_enumeration() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let seqs = enumerate_sequences(&requester, &controller, "Svc", &cfg, 1);
        assert_eq!(seqs.len(), 1);
    }

    #[test]
    fn choose_minimal_prefers_fewer_requester_disclosures() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let seqs = enumerate_sequences(&requester, &controller, "Svc", &cfg, 100);
        // Both views need 2 disclosures; the quality route has only ONE
        // requester disclosure (Accr comes from the controller), so a
        // requester-minimizing selection picks it.
        let best = choose_minimal(&seqs, Side::Requester).unwrap();
        let requester_count = best.by_side(Side::Requester).count();
        for s in &seqs {
            assert!(requester_count <= s.by_side(Side::Requester).count());
        }
        assert_eq!(requester_count, 1);
    }

    #[test]
    fn unsatisfiable_resource_yields_nothing() {
        let (mut requester, controller) = world();
        for ty in ["Quality", "Sheet", "Member"] {
            let ids: Vec<_> = requester
                .profile
                .of_type(ty)
                .map(|c| c.id().clone())
                .collect();
            for id in ids {
                requester.profile.remove(&id);
            }
        }
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        assert!(enumerate_sequences(&requester, &controller, "Svc", &cfg, 100).is_empty());
    }

    #[test]
    fn ungoverned_resource_yields_one_empty_sequence() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let seqs = enumerate_sequences(&requester, &controller, "Public", &cfg, 100);
        assert_eq!(seqs.len(), 1);
        assert!(seqs[0].is_empty());
    }

    #[test]
    fn counts_agree_with_count_views() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let enumerated = enumerate_sequences(&requester, &controller, "Svc", &cfg, 1000).len();
        let counted = crate::engine::count_views(&requester, &controller, "Svc", &cfg, 1000);
        assert_eq!(enumerated, counted);
    }

    #[test]
    fn expired_candidates_skipped() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, window().not_after.plus_days(10));
        assert!(enumerate_sequences(&requester, &controller, "Svc", &cfg, 100).is_empty());
    }
}

/// How to pick among multiple satisfiable views before the exchange phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Take the engine's first view (policy order) — what plain
    /// [`crate::engine::negotiate`] does.
    #[default]
    First,
    /// Fewest total disclosures.
    MinimalDisclosures,
    /// Fewest disclosures by the requester (privacy-favouring).
    MinimizeRequester,
    /// Fewest disclosures by the controller.
    MinimizeController,
}

/// Negotiate with explicit view selection: enumerate the satisfiable
/// views (bounded by `cap`), pick one per `policy`, then run the
/// credential exchange phase over it. Falls back to the plain engine for
/// [`SelectionPolicy::First`].
pub fn negotiate_with_selection(
    requester: &Party,
    controller: &Party,
    resource: &str,
    cfg: &NegotiationConfig,
    policy: SelectionPolicy,
    cap: usize,
) -> Result<crate::engine::NegotiationOutcome, crate::error::NegotiationError> {
    if policy == SelectionPolicy::First {
        return crate::engine::negotiate(requester, controller, resource, cfg);
    }
    let sequences = enumerate_sequences(requester, controller, resource, cfg, cap);
    let chosen = match policy {
        SelectionPolicy::First => unreachable!("handled above"),
        SelectionPolicy::MinimalDisclosures => {
            sequences.iter().min_by_key(|s| (s.len(), s.to_string()))
        }
        SelectionPolicy::MinimizeRequester => choose_minimal(&sequences, Side::Requester),
        SelectionPolicy::MinimizeController => choose_minimal(&sequences, Side::Controller),
    };
    let Some(chosen) = chosen else {
        return Err(crate::error::NegotiationError::NoTrustSequence {
            resource: resource.to_owned(),
        });
    };
    let phase = crate::engine::PolicyPhase {
        resource: resource.to_owned(),
        sequence: chosen.clone(),
        transcript: crate::transcript::Transcript::new(),
        tree: crate::tree::NegotiationTree::new(resource, Side::Controller),
    };
    crate::engine::exchange_credentials(requester, controller, phase, cfg)
}

#[cfg(test)]
mod selection_tests {
    use super::*;
    use crate::strategy::Strategy;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn at() -> Timestamp {
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0)
    }

    /// Alternative A costs the requester 2 disclosures; alternative B
    /// costs 1 (but the controller 1 as well, via a counter-requirement).
    fn world() -> (Party, Party) {
        let mut ca = CredentialAuthority::new("CA");
        let mut requester = Party::new("R");
        let mut controller = Party::new("C");
        for ty in ["Sheet", "Member", "Quality"] {
            let cred = ca
                .issue(ty, "R", requester.keys.public, vec![], window())
                .unwrap();
            requester.profile.add(cred);
        }
        let accr = ca
            .issue("Accr", "C", controller.keys.public, vec![], window())
            .unwrap();
        controller.profile.add(accr);
        controller.policies.add(DisclosurePolicy::rule(
            "two-cred-route",
            Resource::service("Svc"),
            vec![Term::of_type("Sheet"), Term::of_type("Member")],
        ));
        controller.policies.add(DisclosurePolicy::rule(
            "one-cred-route",
            Resource::service("Svc"),
            vec![Term::of_type("Quality")],
        ));
        controller
            .policies
            .add(DisclosurePolicy::deliv("d", Resource::credential("Accr")));
        requester.policies.add(DisclosurePolicy::rule(
            "q",
            Resource::credential("Quality"),
            vec![Term::of_type("Accr")],
        ));
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());
        (requester, controller)
    }

    #[test]
    fn first_policy_matches_engine_order() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate_with_selection(
            &requester,
            &controller,
            "Svc",
            &cfg,
            SelectionPolicy::First,
            100,
        )
        .unwrap();
        // The engine tries "two-cred-route" first.
        assert_eq!(outcome.sequence.len(), 2);
        assert_eq!(outcome.sequence.by_side(Side::Requester).count(), 2);
    }

    #[test]
    fn minimize_requester_prefers_quality_route() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate_with_selection(
            &requester,
            &controller,
            "Svc",
            &cfg,
            SelectionPolicy::MinimizeRequester,
            100,
        )
        .unwrap();
        assert_eq!(outcome.sequence.by_side(Side::Requester).count(), 1);
        let types: Vec<_> = outcome
            .sequence
            .disclosures()
            .iter()
            .map(|d| d.cred_type.as_str())
            .collect();
        assert!(types.contains(&"Quality"));
    }

    #[test]
    fn minimize_controller_prefers_two_cred_route() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate_with_selection(
            &requester,
            &controller,
            "Svc",
            &cfg,
            SelectionPolicy::MinimizeController,
            100,
        )
        .unwrap();
        assert_eq!(outcome.sequence.by_side(Side::Controller).count(), 0);
    }

    #[test]
    fn minimal_disclosures_overall() {
        let (requester, controller) = world();
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate_with_selection(
            &requester,
            &controller,
            "Svc",
            &cfg,
            SelectionPolicy::MinimalDisclosures,
            100,
        )
        .unwrap();
        // Both routes need 2 disclosures in total; any is acceptable, but
        // the exchange must succeed and verify everything.
        assert_eq!(outcome.sequence.len(), 2);
        assert_eq!(outcome.transcript.verifications, 2);
    }

    #[test]
    fn unsatisfiable_selection_errors() {
        let (mut requester, controller) = world();
        for ty in ["Sheet", "Member", "Quality"] {
            let ids: Vec<_> = requester
                .profile
                .of_type(ty)
                .map(|c| c.id().clone())
                .collect();
            for id in ids {
                requester.profile.remove(&id);
            }
        }
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let err = negotiate_with_selection(
            &requester,
            &controller,
            "Svc",
            &cfg,
            SelectionPolicy::MinimalDisclosures,
            100,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::NegotiationError::NoTrustSequence { .. }
        ));
    }
}
