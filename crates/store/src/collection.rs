//! A versioned collection of XML documents.

#[cfg(feature = "journal")]
use std::sync::Arc;
#[cfg(feature = "journal")]
use trust_vo_journal::{Fact, Fnv64, Journal};
use trust_vo_xmldoc::{Element, Selector, XPathExpr};

/// A document identifier within a collection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub String);

impl From<&str> for DocId {
    fn from(s: &str) -> Self {
        DocId(s.to_owned())
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One stored revision of a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Revision {
    /// Monotonic revision number, starting at 1.
    pub number: u64,
    /// The document at this revision.
    pub doc: Element,
}

#[derive(Debug, Clone, Default)]
struct Entry {
    revisions: Vec<Revision>,
    deleted: bool,
}

/// A named collection of versioned XML documents with XPath-subset queries.
///
/// Reads take `&self`: the operation counter is atomic, so concurrent
/// readers (e.g. parallel admission negotiations holding a shared read
/// lock on the database) account their queries without write access.
#[derive(Debug, Default)]
pub struct Collection {
    entries: std::collections::BTreeMap<DocId, Entry>,
    /// Operations performed (reads + writes), for latency accounting.
    ops: std::sync::atomic::AtomicU64,
    /// Armed by [`Database::attach_journal`](crate::Database::attach_journal):
    /// every `put`/`delete` spills a [`Fact`] tagged with this collection's
    /// name into the shared journal.
    #[cfg(feature = "journal")]
    journal: Option<(Arc<Journal>, String)>,
}

impl Clone for Collection {
    fn clone(&self) -> Self {
        Collection {
            entries: self.entries.clone(),
            ops: std::sync::atomic::AtomicU64::new(self.ops()),
            // A clone is a detached copy — its mutations are not part of
            // the database's durable history, so the hook does not travel.
            #[cfg(feature = "journal")]
            journal: None,
        }
    }
}

impl Collection {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    fn count_op(&self) {
        self.ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Arm the journal spill hook if not already armed.
    #[cfg(feature = "journal")]
    pub(crate) fn ensure_journal(&mut self, journal: &Arc<Journal>, name: &str) {
        if self.journal.is_none() {
            self.journal = Some((journal.clone(), name.to_owned()));
        }
    }

    /// Insert or update a document; returns the new revision number.
    pub fn put(&mut self, id: impl Into<DocId>, doc: Element) -> u64 {
        self.count_op();
        let id = id.into();
        #[cfg(feature = "journal")]
        if let Some((journal, name)) = &self.journal {
            journal.append(&Fact::Put {
                collection: name.clone(),
                id: id.0.clone(),
                xml: trust_vo_xmldoc::to_string(&doc),
            });
        }
        let entry = self.entries.entry(id).or_default();
        entry.deleted = false;
        let number = entry.revisions.last().map(|r| r.number + 1).unwrap_or(1);
        entry.revisions.push(Revision { number, doc });
        number
    }

    /// Replay-path put: identical revision bookkeeping to [`Collection::put`]
    /// but bypasses both the journal hook (replay must not re-journal) and
    /// the op counter (recovery is not a workload).
    #[cfg(feature = "journal")]
    pub(crate) fn apply_put(&mut self, id: DocId, doc: Element) {
        let entry = self.entries.entry(id).or_default();
        entry.deleted = false;
        let number = entry.revisions.last().map(|r| r.number + 1).unwrap_or(1);
        entry.revisions.push(Revision { number, doc });
    }

    /// Replay-path delete; see [`Collection::apply_put`].
    #[cfg(feature = "journal")]
    pub(crate) fn apply_delete(&mut self, id: &DocId) {
        if let Some(e) = self.entries.get_mut(id) {
            e.deleted = true;
        }
    }

    /// Emit facts that rebuild this collection exactly — every revision in
    /// order (replay's dense numbering reproduces the originals) plus a
    /// tombstone for currently-deleted documents. Used for snapshot
    /// compaction.
    #[cfg(feature = "journal")]
    pub(crate) fn snapshot_facts(&self, name: &str, out: &mut Vec<Fact>) {
        for (id, entry) in &self.entries {
            for rev in &entry.revisions {
                out.push(Fact::Put {
                    collection: name.to_owned(),
                    id: id.0.clone(),
                    xml: trust_vo_xmldoc::to_string(&rev.doc),
                });
            }
            if entry.deleted {
                out.push(Fact::Delete {
                    collection: name.to_owned(),
                    id: id.0.clone(),
                });
            }
        }
    }

    /// Fold this collection's logical content (names, revision histories,
    /// tombstones — *not* the op counter) into a state digest.
    #[cfg(feature = "journal")]
    pub(crate) fn digest_into(&self, name: &str, h: &mut Fnv64) {
        h.write_framed(name.as_bytes());
        for (id, entry) in &self.entries {
            h.write_framed(id.0.as_bytes());
            h.write(&[u8::from(entry.deleted)]);
            h.write(&(entry.revisions.len() as u64).to_le_bytes());
            for rev in &entry.revisions {
                h.write(&rev.number.to_le_bytes());
                h.write_framed(trust_vo_xmldoc::to_string(&rev.doc).as_bytes());
            }
        }
    }

    /// The latest revision of a live document.
    pub fn get(&self, id: &DocId) -> Option<&Element> {
        self.count_op();
        self.entries
            .get(id)
            .filter(|e| !e.deleted)
            .and_then(|e| e.revisions.last())
            .map(|r| &r.doc)
    }

    /// A specific revision (even of a deleted document).
    pub fn get_revision(&self, id: &DocId, number: u64) -> Option<&Element> {
        self.count_op();
        self.entries
            .get(id)
            .and_then(|e| e.revisions.iter().find(|r| r.number == number))
            .map(|r| &r.doc)
    }

    /// Mark a document deleted (history retained). Returns whether it was live.
    pub fn delete(&mut self, id: &DocId) -> bool {
        self.count_op();
        let deleted = match self.entries.get_mut(id) {
            Some(e) if !e.deleted => {
                e.deleted = true;
                true
            }
            _ => false,
        };
        // No-op deletes are not facts: replaying them would be harmless but
        // would bloat the log and shift replay digests.
        #[cfg(feature = "journal")]
        if deleted {
            if let Some((journal, name)) = &self.journal {
                journal.append(&Fact::Delete {
                    collection: name.clone(),
                    id: id.0.clone(),
                });
            }
        }
        deleted
    }

    /// Ids of all live documents.
    pub fn ids(&self) -> impl Iterator<Item = &DocId> {
        self.entries
            .iter()
            .filter(|(_, e)| !e.deleted)
            .map(|(id, _)| id)
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.ids().count()
    }

    /// True when no live documents exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live documents matching an XPath condition.
    pub fn find_all(&self, condition: &XPathExpr) -> Vec<(DocId, Element)> {
        self.count_op();
        self.entries
            .iter()
            .filter(|(_, e)| !e.deleted)
            .filter_map(|(id, e)| {
                let doc = &e.revisions.last()?.doc;
                condition.evaluate(doc).then(|| (id.clone(), doc.clone()))
            })
            .collect()
    }

    /// First live document matching a condition. Short-circuits on the
    /// first match — only the yielded document is cloned, unlike
    /// `find_all(..).into_iter().next()` which clones every match just to
    /// drop all but the first.
    pub fn find(&self, condition: &XPathExpr) -> Option<(DocId, Element)> {
        self.count_op();
        self.entries
            .iter()
            .filter(|(_, e)| !e.deleted)
            .find_map(|(id, e)| {
                let doc = &e.revisions.last()?.doc;
                condition.evaluate(doc).then(|| (id.clone(), doc.clone()))
            })
    }

    /// Extract values from every live document via a selector.
    pub fn select_values(&self, selector: &Selector) -> Vec<String> {
        self.count_op();
        self.entries
            .values()
            .filter(|e| !e.deleted)
            .filter_map(|e| e.revisions.last())
            .flat_map(|r| selector.values(&r.doc))
            .collect()
    }

    /// Operations performed so far (the sim-clock charges per op).
    pub fn ops(&self) -> u64 {
        self.ops.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(name: &str, value: &str) -> Element {
        Element::new("item")
            .attr("name", name)
            .child(Element::new("value").text(value))
    }

    #[test]
    fn put_get_roundtrip() {
        let mut c = Collection::new();
        assert_eq!(c.put("a", doc("a", "1")), 1);
        assert_eq!(c.get(&"a".into()).unwrap().get_attr("name"), Some("a"));
        assert!(c.get(&"missing".into()).is_none());
    }

    #[test]
    fn update_bumps_revision_and_keeps_history() {
        let mut c = Collection::new();
        c.put("a", doc("a", "1"));
        assert_eq!(c.put("a", doc("a", "2")), 2);
        assert_eq!(
            c.get(&"a".into()).unwrap().child_text("value").unwrap(),
            "2"
        );
        assert_eq!(
            c.get_revision(&"a".into(), 1)
                .unwrap()
                .child_text("value")
                .unwrap(),
            "1"
        );
        assert!(c.get_revision(&"a".into(), 3).is_none());
    }

    #[test]
    fn delete_hides_but_retains_history() {
        let mut c = Collection::new();
        c.put("a", doc("a", "1"));
        assert!(c.delete(&"a".into()));
        assert!(!c.delete(&"a".into()));
        assert!(c.get(&"a".into()).is_none());
        assert!(c.get_revision(&"a".into(), 1).is_some());
        assert_eq!(c.len(), 0);
        // Re-inserting resurrects with a bumped revision.
        assert_eq!(c.put("a", doc("a", "3")), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn find_by_xpath() {
        let mut c = Collection::new();
        c.put("a", doc("alpha", "1"));
        c.put("b", doc("beta", "2"));
        c.put("c", doc("gamma", "2"));
        let cond = XPathExpr::parse("/item/value = 2").unwrap();
        let found = c.find_all(&cond);
        assert_eq!(found.len(), 2);
        let one = c
            .find(&XPathExpr::parse("/item[@name='alpha']").unwrap())
            .unwrap();
        assert_eq!(one.0, DocId("a".into()));
    }

    #[test]
    fn select_values_across_documents() {
        let mut c = Collection::new();
        c.put("a", doc("alpha", "1"));
        c.put("b", doc("beta", "2"));
        let sel = Selector::parse("/item/value").unwrap();
        let mut values = c.select_values(&sel);
        values.sort();
        assert_eq!(values, ["1", "2"]);
    }

    #[test]
    fn find_charges_one_op_and_returns_first_match() {
        let mut c = Collection::new();
        for i in 0..10 {
            c.put(format!("d{i}").as_str(), doc("match", "7"));
        }
        let before = c.ops();
        let found = c.find(&XPathExpr::parse("/item[@name='match']").unwrap());
        assert_eq!(c.ops(), before + 1, "find charges exactly one operation");
        assert_eq!(found.unwrap().0, DocId("d0".into()));
        // A miss also charges one op and clones nothing.
        assert!(c
            .find(&XPathExpr::parse("/item[@name='absent']").unwrap())
            .is_none());
        assert_eq!(c.ops(), before + 2);
    }

    #[test]
    fn ops_counter_increments() {
        let mut c = Collection::new();
        let before = c.ops();
        c.put("a", doc("a", "1"));
        c.get(&"a".into());
        assert_eq!(c.ops(), before + 2);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;
    use trust_vo_xmldoc::Element;

    proptest! {
        /// Revisions are dense and monotone per document, whatever the
        /// interleaving of puts and deletes.
        #[test]
        fn revisions_monotone(ops in proptest::collection::vec((0u8..3, 0u8..4), 1..40)) {
            let mut c = Collection::new();
            let mut expected: std::collections::BTreeMap<u8, u64> = Default::default();
            for (op, key) in ops {
                let id: DocId = format!("doc{key}").as_str().into();
                match op {
                    0 | 1 => {
                        let rev = c.put(id.clone(), Element::new("d").attr("k", key.to_string()));
                        let count = expected.entry(key).or_insert(0);
                        *count += 1;
                        prop_assert_eq!(rev, *count, "revision must be dense");
                    }
                    _ => {
                        let was_live = c.get(&id).is_some();
                        prop_assert_eq!(c.delete(&id), was_live);
                    }
                }
            }
            // Every historical revision remains readable.
            for (key, &count) in &expected {
                let id: DocId = format!("doc{key}").as_str().into();
                for rev in 1..=count {
                    prop_assert!(c.get_revision(&id, rev).is_some());
                }
                prop_assert!(c.get_revision(&id, count + 1).is_none());
            }
        }

        /// find_all returns exactly the live documents whose content
        /// matches, no duplicates, no deleted ones.
        #[test]
        fn find_all_matches_live_set(
            values in proptest::collection::vec(0u8..5, 1..20),
            deleted in proptest::collection::vec(any::<bool>(), 20),
        ) {
            let mut c = Collection::new();
            let mut live_matching = 0usize;
            for (i, v) in values.iter().enumerate() {
                let id: DocId = format!("d{i}").as_str().into();
                c.put(id.clone(), Element::new("item").child(Element::new("v").text(v.to_string())));
                if deleted.get(i).copied().unwrap_or(false) {
                    c.delete(&id);
                } else if *v == 3 {
                    live_matching += 1;
                }
            }
            let cond = trust_vo_xmldoc::XPathExpr::parse("/item/v = 3").unwrap();
            prop_assert_eq!(c.find_all(&cond).len(), live_matching);
        }

        /// The short-circuiting find returns exactly the head of find_all.
        #[test]
        fn find_agrees_with_find_all_head(
            values in proptest::collection::vec(0u8..5, 0..20),
            deleted in proptest::collection::vec(any::<bool>(), 20),
        ) {
            let mut c = Collection::new();
            for (i, v) in values.iter().enumerate() {
                let id: DocId = format!("d{i}").as_str().into();
                c.put(id.clone(), Element::new("item").child(Element::new("v").text(v.to_string())));
                if deleted.get(i).copied().unwrap_or(false) {
                    c.delete(&id);
                }
            }
            let cond = trust_vo_xmldoc::XPathExpr::parse("/item/v = 3").unwrap();
            prop_assert_eq!(c.find(&cond), c.find_all(&cond).into_iter().next());
        }
    }
}
