//! In-memory versioned XML document store.
//!
//! The paper's TN web service keeps "the disclosure policies and
//! credentials of the invoker" in an Oracle 10g database (later migrated to
//! MySQL, §6.3) and queries them with XPath. This crate substitutes a
//! deterministic in-memory store with the same observable behaviour:
//!
//! * named **collections** of XML documents keyed by id,
//! * **XPath-subset queries** over a collection (`find` / `find_all`),
//! * **versioning** — updates keep prior revisions, supporting the
//!   re-negotiation flows of the VO operation phase,
//! * thread-safe handles (`parking_lot::RwLock`) so the SOA layer can share
//!   one store across service endpoints, as the prototype shared one DB
//!   connection pool.
//!
//! Query latency accounting lives in the SOA sim-clock, not here; the store
//! exposes an operation counter the clock reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod database;

pub use collection::{Collection, DocId, Revision};
pub use database::{Database, StoreStats};
