//! A thread-safe database of named collections.
//!
//! Plays the role of the prototype's Oracle/MySQL instance: each party's TN
//! service connects with its own connection parameters (§6.2,
//! `StartNegotiationRequest` carries "the parameters to connect to the
//! Oracle database containing the disclosure policies and credentials of
//! the invoker") — here, each party gets its own [`Database`] handle.

use crate::collection::Collection;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use trust_vo_obs::Collector;

/// Aggregate statistics over the whole database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of collections.
    pub collections: usize,
    /// Live documents across all collections.
    pub documents: usize,
    /// Total operations performed.
    pub operations: u64,
}

/// A shareable database handle.
#[derive(Debug, Clone, Default)]
pub struct Database {
    inner: Arc<RwLock<BTreeMap<String, Collection>>>,
    obs: Arc<OnceLock<Collector>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a collector: subsequent collection accesses record their
    /// wall-clock latency to the `store.<collection>.op_us` histogram of
    /// the collector's registry. First attachment wins; shared by clones.
    pub fn attach_obs(&self, collector: &Collector) {
        if collector.is_enabled() {
            let _ = self.obs.set(collector.clone());
        }
    }

    fn record_latency(&self, name: &str, started: Instant) {
        if let Some(registry) = self.obs.get().and_then(Collector::registry) {
            registry
                .latency_histogram(&format!("store.{name}.op_us"))
                .record(started.elapsed().as_micros() as u64);
        }
    }

    /// Run `f` with mutable access to the named collection (created on
    /// first use).
    pub fn with_collection<R>(&self, name: &str, f: impl FnOnce(&mut Collection) -> R) -> R {
        let started = Instant::now();
        let result = {
            let mut guard = self.inner.write();
            let collection = guard.entry(name.to_owned()).or_default();
            f(collection)
        };
        self.record_latency(name, started);
        result
    }

    /// Run `f` with shared read access to the named collection. Unlike
    /// [`Database::with_collection`] this takes the read lock, so any
    /// number of readers proceed concurrently (collection reads are
    /// `&self`); returns `None` when the collection does not exist.
    pub fn read_collection<R>(&self, name: &str, f: impl FnOnce(&Collection) -> R) -> Option<R> {
        let started = Instant::now();
        let result = {
            let guard = self.inner.read();
            guard.get(name).map(f)
        };
        self.record_latency(name, started);
        result
    }

    /// Does the named collection exist?
    pub fn has_collection(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    /// Drop a collection entirely. Returns whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.inner.write().remove(name).is_some()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let guard = self.inner.read();
        StoreStats {
            collections: guard.len(),
            documents: guard.values().map(Collection::len).sum(),
            operations: guard.values().map(Collection::ops).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_xmldoc::Element;

    #[test]
    fn collections_created_on_demand() {
        let db = Database::new();
        assert!(!db.has_collection("policies"));
        db.with_collection("policies", |c| {
            c.put("p1", Element::new("policy"));
        });
        assert!(db.has_collection("policies"));
        let found = db.with_collection("policies", |c| c.get(&"p1".into()).cloned());
        assert!(found.is_some());
    }

    #[test]
    fn stats_aggregate() {
        let db = Database::new();
        db.with_collection("a", |c| {
            c.put("1", Element::new("x"));
            c.put("2", Element::new("y"));
        });
        db.with_collection("b", |c| {
            c.put("1", Element::new("z"));
        });
        let stats = db.stats();
        assert_eq!(stats.collections, 2);
        assert_eq!(stats.documents, 3);
        assert!(stats.operations >= 3);
    }

    #[test]
    fn drop_collection() {
        let db = Database::new();
        db.with_collection("tmp", |c| {
            c.put("1", Element::new("x"));
        });
        assert!(db.drop_collection("tmp"));
        assert!(!db.drop_collection("tmp"));
        assert!(!db.has_collection("tmp"));
    }

    #[test]
    fn handles_share_state() {
        let db = Database::new();
        let db2 = db.clone();
        db.with_collection("shared", |c| {
            c.put("1", Element::new("x"));
        });
        assert!(db2.has_collection("shared"));
        assert_eq!(db2.stats().documents, 1);
    }

    #[test]
    fn read_collection_shares_access() {
        let db = Database::new();
        assert!(db.read_collection("missing", |_| ()).is_none());
        db.with_collection("docs", |c| {
            c.put("1", Element::new("x"));
        });
        let got = db.read_collection("docs", |c| c.get(&"1".into()).cloned());
        assert!(got.expect("collection exists").is_some());
        // Reads are counted even through the shared path.
        let ops = db.stats().operations;
        db.read_collection("docs", |c| {
            c.get(&"1".into());
        });
        assert_eq!(db.stats().operations, ops + 1);
    }

    #[test]
    fn concurrent_readers_count_every_op() {
        let db = Database::new();
        db.with_collection("docs", |c| {
            c.put("1", Element::new("x"));
        });
        let ops_before = db.stats().operations;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let db = db.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        db.read_collection("docs", |c| {
                            c.get(&"1".into());
                        });
                    }
                });
            }
        });
        assert_eq!(db.stats().operations, ops_before + 8 * 50);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attached_collector_records_op_latencies() {
        let db = Database::new();
        let collector = Collector::new();
        db.attach_obs(&collector);
        db.with_collection("profiles", |c| {
            c.put("1", Element::new("x"));
        });
        db.read_collection("profiles", |c| {
            c.get(&"1".into());
        });
        let snapshot = collector.metrics();
        let hist = snapshot
            .histograms
            .get("store.profiles.op_us")
            .expect("histogram registered");
        assert_eq!(hist.count, 2);
        // Clones share the attachment.
        db.clone().with_collection("profiles", |c| c.len());
        assert_eq!(
            collector.metrics().histograms["store.profiles.op_us"].count,
            3
        );
    }

    #[test]
    fn concurrent_access() {
        let db = Database::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for j in 0..50 {
                        db.with_collection("c", |c| {
                            c.put(format!("{i}-{j}").as_str(), Element::new("doc"));
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.stats().documents, 400);
    }
}
