//! A thread-safe database of named collections.
//!
//! Plays the role of the prototype's Oracle/MySQL instance: each party's TN
//! service connects with its own connection parameters (§6.2,
//! `StartNegotiationRequest` carries "the parameters to connect to the
//! Oracle database containing the disclosure policies and credentials of
//! the invoker") — here, each party gets its own [`Database`] handle.

use crate::collection::Collection;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
#[cfg(feature = "journal")]
use trust_vo_journal::{Fact, Fnv64, Journal, Replay};
use trust_vo_obs::Collector;

/// Aggregate statistics over the whole database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of collections.
    pub collections: usize,
    /// Live documents across all collections.
    pub documents: usize,
    /// Total operations performed.
    pub operations: u64,
}

/// A shareable database handle.
#[derive(Debug, Clone, Default)]
pub struct Database {
    inner: Arc<RwLock<BTreeMap<String, Collection>>>,
    obs: Arc<OnceLock<Collector>>,
    #[cfg(feature = "journal")]
    journal: Arc<OnceLock<Arc<Journal>>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a collector: subsequent collection accesses record their
    /// wall-clock latency to the `store.<collection>.op_us` histogram of
    /// the collector's registry. First attachment wins; shared by clones.
    pub fn attach_obs(&self, collector: &Collector) {
        if collector.is_enabled() {
            let _ = self.obs.set(collector.clone());
        }
    }

    fn record_latency(&self, name: &str, started: Instant) {
        if let Some(registry) = self.obs.get().and_then(Collector::registry) {
            registry
                .latency_histogram(&format!("store.{name}.op_us"))
                .record(started.elapsed().as_micros() as u64);
        }
    }

    /// Attach a journal: every subsequent `put`/`delete` through any
    /// collection of this database (existing or created later) appends a
    /// replayable [`Fact`]. First attachment wins; shared by clones.
    #[cfg(feature = "journal")]
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        if self.journal.set(journal.clone()).is_ok() {
            let mut guard = self.inner.write();
            for (name, collection) in guard.iter_mut() {
                collection.ensure_journal(&journal, name);
            }
        }
    }

    /// Run `f` with mutable access to the named collection (created on
    /// first use).
    pub fn with_collection<R>(&self, name: &str, f: impl FnOnce(&mut Collection) -> R) -> R {
        let started = Instant::now();
        let result = {
            let mut guard = self.inner.write();
            let collection = guard.entry(name.to_owned()).or_default();
            #[cfg(feature = "journal")]
            if let Some(journal) = self.journal.get() {
                collection.ensure_journal(journal, name);
            }
            f(collection)
        };
        self.record_latency(name, started);
        result
    }

    /// Run `f` with shared read access to the named collection. Unlike
    /// [`Database::with_collection`] this takes the read lock, so any
    /// number of readers proceed concurrently (collection reads are
    /// `&self`); returns `None` when the collection does not exist.
    pub fn read_collection<R>(&self, name: &str, f: impl FnOnce(&Collection) -> R) -> Option<R> {
        let started = Instant::now();
        let result = {
            let guard = self.inner.read();
            guard.get(name).map(f)
        };
        // Only record latency for collections that exist: probing a missing
        // name must not register a phantom `store.<name>.op_us` histogram.
        if result.is_some() {
            self.record_latency(name, started);
        }
        result
    }

    /// Rebuild state from replayed facts (e.g. after a crash). Facts apply
    /// through the replay path, which neither re-journals nor counts ops —
    /// so a restored database digests identically to the original.
    /// [`Fact::Mapping`] facts belong to the ontology layer and
    /// [`Fact::Reputation`]/[`Fact::Mana`] to the admission layer; all
    /// three are skipped here.
    #[cfg(feature = "journal")]
    pub fn restore_from_facts<'a>(&self, facts: impl IntoIterator<Item = &'a Fact>) {
        let mut guard = self.inner.write();
        for fact in facts {
            match fact {
                Fact::Put {
                    collection,
                    id,
                    xml,
                } => {
                    if let Ok(doc) = trust_vo_xmldoc::parse(xml) {
                        guard
                            .entry(collection.clone())
                            .or_default()
                            .apply_put(id.as_str().into(), doc);
                    }
                }
                Fact::Delete { collection, id } => {
                    if let Some(c) = guard.get_mut(collection) {
                        c.apply_delete(&id.as_str().into());
                    }
                }
                Fact::Mapping { .. } | Fact::Reputation { .. } | Fact::Mana { .. } => {}
            }
        }
    }

    /// Replay a journal into this database; returns the replay (digest,
    /// truncation flag) for the caller to inspect.
    #[cfg(feature = "journal")]
    pub fn restore_from_journal(&self, journal: &Journal) -> Replay {
        let replay = journal.replay();
        self.restore_from_facts(&replay.facts);
        replay
    }

    /// Facts that rebuild the entire database — full revision histories
    /// and tombstones included. The input to snapshot compaction.
    #[cfg(feature = "journal")]
    pub fn snapshot_facts(&self) -> Vec<Fact> {
        let guard = self.inner.read();
        let mut out = Vec::new();
        for (name, c) in guard.iter() {
            c.snapshot_facts(name, &mut out);
        }
        out
    }

    /// Compact `journal` down to a single snapshot of this database's
    /// current state.
    #[cfg(feature = "journal")]
    pub fn compact_into(&self, journal: &Journal) {
        journal.compact(&self.snapshot_facts());
    }

    /// Deterministic digest of the logical state: collection names, ids,
    /// revision histories, tombstones. Op counters are excluded so a
    /// replayed database digests equal to the original.
    #[cfg(feature = "journal")]
    pub fn state_digest(&self) -> u64 {
        let guard = self.inner.read();
        let mut h = Fnv64::new();
        for (name, c) in guard.iter() {
            c.digest_into(name, &mut h);
        }
        h.finish()
    }

    /// Does the named collection exist?
    pub fn has_collection(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    /// Drop a collection entirely. Returns whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.inner.write().remove(name).is_some()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let guard = self.inner.read();
        StoreStats {
            collections: guard.len(),
            documents: guard.values().map(Collection::len).sum(),
            operations: guard.values().map(Collection::ops).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_xmldoc::Element;

    #[test]
    fn collections_created_on_demand() {
        let db = Database::new();
        assert!(!db.has_collection("policies"));
        db.with_collection("policies", |c| {
            c.put("p1", Element::new("policy"));
        });
        assert!(db.has_collection("policies"));
        let found = db.with_collection("policies", |c| c.get(&"p1".into()).cloned());
        assert!(found.is_some());
    }

    #[test]
    fn stats_aggregate() {
        let db = Database::new();
        db.with_collection("a", |c| {
            c.put("1", Element::new("x"));
            c.put("2", Element::new("y"));
        });
        db.with_collection("b", |c| {
            c.put("1", Element::new("z"));
        });
        let stats = db.stats();
        assert_eq!(stats.collections, 2);
        assert_eq!(stats.documents, 3);
        assert!(stats.operations >= 3);
    }

    #[test]
    fn drop_collection() {
        let db = Database::new();
        db.with_collection("tmp", |c| {
            c.put("1", Element::new("x"));
        });
        assert!(db.drop_collection("tmp"));
        assert!(!db.drop_collection("tmp"));
        assert!(!db.has_collection("tmp"));
    }

    #[test]
    fn handles_share_state() {
        let db = Database::new();
        let db2 = db.clone();
        db.with_collection("shared", |c| {
            c.put("1", Element::new("x"));
        });
        assert!(db2.has_collection("shared"));
        assert_eq!(db2.stats().documents, 1);
    }

    #[test]
    fn read_collection_shares_access() {
        let db = Database::new();
        assert!(db.read_collection("missing", |_| ()).is_none());
        db.with_collection("docs", |c| {
            c.put("1", Element::new("x"));
        });
        let got = db.read_collection("docs", |c| c.get(&"1".into()).cloned());
        assert!(got.expect("collection exists").is_some());
        // Reads are counted even through the shared path.
        let ops = db.stats().operations;
        db.read_collection("docs", |c| {
            c.get(&"1".into());
        });
        assert_eq!(db.stats().operations, ops + 1);
    }

    #[test]
    fn concurrent_readers_count_every_op() {
        let db = Database::new();
        db.with_collection("docs", |c| {
            c.put("1", Element::new("x"));
        });
        let ops_before = db.stats().operations;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let db = db.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        db.read_collection("docs", |c| {
                            c.get(&"1".into());
                        });
                    }
                });
            }
        });
        assert_eq!(db.stats().operations, ops_before + 8 * 50);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attached_collector_records_op_latencies() {
        let db = Database::new();
        let collector = Collector::new();
        db.attach_obs(&collector);
        db.with_collection("profiles", |c| {
            c.put("1", Element::new("x"));
        });
        db.read_collection("profiles", |c| {
            c.get(&"1".into());
        });
        let snapshot = collector.metrics();
        let hist = snapshot
            .histograms
            .get("store.profiles.op_us")
            .expect("histogram registered");
        assert_eq!(hist.count, 2);
        // Clones share the attachment.
        db.clone().with_collection("profiles", |c| c.len());
        assert_eq!(
            collector.metrics().histograms["store.profiles.op_us"].count,
            3
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn read_collection_miss_records_no_latency() {
        let db = Database::new();
        let collector = Collector::new();
        db.attach_obs(&collector);
        assert!(db.read_collection("never-created", |_| ()).is_none());
        assert!(
            !collector
                .metrics()
                .histograms
                .contains_key("store.never-created.op_us"),
            "a miss must not register a phantom histogram"
        );
        // A hit still records.
        db.with_collection("real", |c| {
            c.put("1", Element::new("x"));
        });
        db.read_collection("real", |c| c.len());
        assert_eq!(collector.metrics().histograms["store.real.op_us"].count, 2);
    }

    #[cfg(feature = "journal")]
    #[test]
    fn journaled_mutations_replay_to_identical_state() {
        use std::sync::Arc;
        use trust_vo_journal::Journal;

        let db = Database::new();
        let journal = Arc::new(Journal::in_memory());
        db.attach_journal(journal.clone());
        // Mutations through both pre-existing and on-demand collections.
        db.with_collection("profiles", |c| {
            c.put("p1", Element::new("profile").attr("v", "1"));
            c.put("p1", Element::new("profile").attr("v", "2"));
        });
        db.with_collection("checkpoints", |c| {
            c.put("ck", Element::new("checkpoint"));
            c.delete(&"ck".into());
            c.delete(&"ck".into()); // no-op delete: not journaled
        });
        assert_eq!(journal.stats().appends, 4);

        let restored = Database::new();
        let replay = restored.restore_from_journal(&journal);
        assert!(!replay.truncated);
        assert_eq!(restored.state_digest(), db.state_digest());
        // Restore did not echo facts into a journal or count ops.
        assert_eq!(restored.stats().operations, 0);
        // Revision history is reconstructed exactly.
        let v1 = restored
            .read_collection("profiles", |c| c.get_revision(&"p1".into(), 1).cloned())
            .flatten()
            .expect("revision 1 restored");
        assert_eq!(v1.get_attr("v"), Some("1"));
        assert!(restored
            .read_collection("checkpoints", |c| c.get(&"ck".into()).is_none())
            .unwrap());
    }

    #[cfg(feature = "journal")]
    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        use std::sync::Arc;
        use trust_vo_journal::Journal;

        let db = Database::new();
        let journal = Arc::new(Journal::in_memory());
        db.attach_journal(journal.clone());
        for i in 0..20 {
            db.with_collection("docs", |c| {
                c.put("hot", Element::new("d").attr("i", i.to_string()));
            });
        }
        db.with_collection("docs", |c| c.delete(&"hot".into()));
        let before = journal.len_bytes();
        db.compact_into(&journal);
        assert!(journal.len_bytes() < before);

        let restored = Database::new();
        restored.restore_from_journal(&journal);
        assert_eq!(restored.state_digest(), db.state_digest());
    }

    #[cfg(feature = "journal")]
    #[test]
    fn clones_share_the_journal_attachment() {
        use std::sync::Arc;
        use trust_vo_journal::Journal;

        let db = Database::new();
        let journal = Arc::new(Journal::in_memory());
        db.attach_journal(journal.clone());
        db.clone().with_collection("via-clone", |c| {
            c.put("1", Element::new("x"));
        });
        assert_eq!(journal.stats().appends, 1);
    }

    #[test]
    fn concurrent_access() {
        let db = Database::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for j in 0..50 {
                        db.with_collection("c", |c| {
                            c.put(format!("{i}-{j}").as_str(), Element::new("doc"));
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.stats().documents, 400);
    }
}
