//! An XPath-subset evaluator for credential conditions.
//!
//! The paper stores each `<certCond>` as "an Xpath expression on the
//! credential denoted by targetCertType" (§6.2). The grammar implemented
//! here covers everything the prototype's figures and examples use:
//!
//! ```text
//! expr     := selector ( op literal )?
//! selector := '/'? step ( '/' step )* ( '/' ('@' name | 'text()') )?
//!           | '//' step ( '/' step )* ...
//! step     := ('//')? (name | '*') predicate*
//! pred     := '[' '@' name ('=' literal)? ']'
//! op       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! literal  := 'single-quoted' | "double-quoted" | number
//! ```
//!
//! * An **absolute** selector (`/credential/header`) matches from the
//!   document root: the first step must match the root element itself.
//! * `//name` selects every element named `name` anywhere in the subtree
//!   (descendant-or-self).
//! * A trailing `/@attr` selects attribute values; a trailing `/text()`
//!   selects text content; otherwise the element's own text content is the
//!   value used in comparisons.
//! * Comparisons are numeric when both sides parse as numbers, string
//!   comparisons otherwise. A bare selector tests existence.

use crate::error::XmlError;
use crate::node::Element;

/// Comparison operators usable in a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }

    /// Compare two values: numerically when both sides are numbers,
    /// lexicographically otherwise.
    pub fn compare(self, lhs: &str, rhs: &str) -> bool {
        if let (Ok(a), Ok(b)) = (lhs.trim().parse::<f64>(), rhs.trim().parse::<f64>()) {
            if let Some(ord) = a.partial_cmp(&b) {
                return self.apply_ord(ord);
            }
        }
        self.apply_ord(lhs.cmp(rhs))
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NameTest {
    Name(String),
    Any,
}

impl NameTest {
    fn matches(&self, name: &str) -> bool {
        match self {
            NameTest::Name(n) => n == name,
            NameTest::Any => true,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Predicate {
    HasAttr(String),
    AttrEquals(String, String),
}

impl Predicate {
    fn matches(&self, e: &Element) -> bool {
        match self {
            Predicate::HasAttr(name) => e.get_attr(name).is_some(),
            Predicate::AttrEquals(name, value) => e.get_attr(name) == Some(value.as_str()),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    descendant: bool,
    name: NameTest,
    predicates: Vec<Predicate>,
}

/// What the selector ultimately extracts.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Target {
    /// The matched elements' own text content.
    ElementText,
    /// An attribute of the matched elements.
    Attribute(String),
    /// Explicit `text()` of the matched elements.
    Text,
}

/// A parsed location path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    absolute: bool,
    steps: Vec<Step>,
    target: Target,
    source: String,
}

impl Selector {
    /// Parse a selector (location path without a comparison).
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        let mut p = PathParser {
            input: input.as_bytes(),
            pos: 0,
        };
        let sel = p.parse_selector()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(XmlError::new(p.pos, "trailing input after selector"));
        }
        Ok(sel)
    }

    /// The source text this selector was parsed from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Select matching elements in `root`'s tree.
    pub fn select<'a>(&self, root: &'a Element) -> Vec<&'a Element> {
        let mut current: Vec<&'a Element> = Vec::new();
        let mut first = true;
        for step in &self.steps {
            let mut next = Vec::new();
            if first {
                first = false;
                if self.absolute {
                    // The first step of an absolute path matches the root
                    // itself (or any subtree element for `//`).
                    if step.descendant {
                        collect_descendants(root, &step.name, &step.predicates, &mut next);
                    } else if step.name.matches(&root.name)
                        && step.predicates.iter().all(|p| p.matches(root))
                    {
                        next.push(root);
                    }
                } else if step.descendant {
                    collect_descendants(root, &step.name, &step.predicates, &mut next);
                } else {
                    for child in root.elements() {
                        if step.name.matches(&child.name)
                            && step.predicates.iter().all(|p| p.matches(child))
                        {
                            next.push(child);
                        }
                    }
                }
            } else {
                for ctx in &current {
                    if step.descendant {
                        for child in ctx.elements() {
                            collect_descendants(child, &step.name, &step.predicates, &mut next);
                        }
                    } else {
                        for child in ctx.elements() {
                            if step.name.matches(&child.name)
                                && step.predicates.iter().all(|p| p.matches(child))
                            {
                                next.push(child);
                            }
                        }
                    }
                }
            }
            current = next;
            if current.is_empty() {
                return current;
            }
        }
        current
    }

    /// Extract the string values this selector denotes.
    pub fn values(&self, root: &Element) -> Vec<String> {
        self.select(root)
            .into_iter()
            .filter_map(|e| match &self.target {
                Target::ElementText | Target::Text => Some(e.text_content()),
                Target::Attribute(name) => e.get_attr(name).map(str::to_owned),
            })
            .collect()
    }
}

impl std::fmt::Display for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.source)
    }
}

fn collect_descendants<'a>(
    e: &'a Element,
    name: &NameTest,
    preds: &[Predicate],
    out: &mut Vec<&'a Element>,
) {
    if name.matches(&e.name) && preds.iter().all(|p| p.matches(e)) {
        out.push(e);
    }
    for child in e.elements() {
        collect_descendants(child, name, preds, out);
    }
}

/// A full condition: a selector plus an optional comparison.
///
/// ```
/// use trust_vo_xmldoc::{Element, XPathExpr};
/// let cred = Element::new("credential")
///     .child(Element::new("content").child(Element::new("Salary").text("60000")));
/// let cond = XPathExpr::parse("/credential/content/Salary > 50000").unwrap();
/// assert!(cond.evaluate(&cred));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathExpr {
    /// The location path.
    pub selector: Selector,
    /// The comparison, if any; `None` means an existence test.
    pub comparison: Option<(CmpOp, String)>,
    source: String,
}

impl XPathExpr {
    /// Parse a condition expression.
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        let mut p = PathParser {
            input: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let selector = p.parse_selector()?;
        p.skip_ws();
        let comparison = if p.pos < p.input.len() {
            let op = p.parse_op()?;
            p.skip_ws();
            let literal = p.parse_literal()?;
            Some((op, literal))
        } else {
            None
        };
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(XmlError::new(p.pos, "trailing input after expression"));
        }
        Ok(XPathExpr {
            selector,
            comparison,
            source: input.trim().to_owned(),
        })
    }

    /// Evaluate against a document. Existence tests succeed when the
    /// selector matches at least one value; comparisons succeed when **any**
    /// selected value satisfies them (XPath's existential semantics).
    pub fn evaluate(&self, root: &Element) -> bool {
        let values = self.selector.values(root);
        match &self.comparison {
            None => !values.is_empty(),
            Some((op, literal)) => values.iter().any(|v| op.compare(v, literal)),
        }
    }

    /// The source text this expression was parsed from.
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl std::fmt::Display for XPathExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.source)
    }
}

struct PathParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> PathParser<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::new(self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, prefix: &[u8]) -> bool {
        if self.input[self.pos..].starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_selector(&mut self) -> Result<Selector, XmlError> {
        let start = self.pos;
        let mut steps = Vec::new();
        let mut target = Target::ElementText;
        let absolute = self.peek() == Some(b'/');
        let mut pending_descendant = false;
        if absolute {
            if self.eat(b"//") {
                pending_descendant = true;
            } else {
                self.eat(b"/");
            }
        }
        loop {
            // Target forms terminate the path.
            if self.eat(b"@") {
                target = Target::Attribute(self.parse_name()?);
                break;
            }
            if self.eat(b"text()") {
                target = Target::Text;
                break;
            }
            let name = if self.eat(b"*") {
                NameTest::Any
            } else {
                NameTest::Name(self.parse_name()?)
            };
            let mut predicates = Vec::new();
            while self.eat(b"[") {
                self.skip_ws();
                if !self.eat(b"@") {
                    return Err(self.err("only attribute predicates are supported"));
                }
                let attr = self.parse_name()?;
                self.skip_ws();
                if self.eat(b"=") {
                    self.skip_ws();
                    let value = self.parse_literal()?;
                    predicates.push(Predicate::AttrEquals(attr, value));
                } else {
                    predicates.push(Predicate::HasAttr(attr));
                }
                self.skip_ws();
                if !self.eat(b"]") {
                    return Err(self.err("expected ']'"));
                }
            }
            steps.push(Step {
                descendant: pending_descendant,
                name,
                predicates,
            });
            pending_descendant = false;
            if self.eat(b"//") {
                pending_descendant = true;
            } else if self.eat(b"/") {
                // continue to next step or target
            } else {
                break;
            }
        }
        if steps.is_empty() {
            return Err(self.err("empty selector"));
        }
        if pending_descendant {
            return Err(self.err("path may not end with '//'"));
        }
        let source = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        Ok(Selector {
            absolute,
            steps,
            target,
            source,
        })
    }

    fn parse_op(&mut self) -> Result<CmpOp, XmlError> {
        if self.eat(b"!=") {
            Ok(CmpOp::Ne)
        } else if self.eat(b"<=") {
            Ok(CmpOp::Le)
        } else if self.eat(b">=") {
            Ok(CmpOp::Ge)
        } else if self.eat(b"=") {
            Ok(CmpOp::Eq)
        } else if self.eat(b"<") {
            Ok(CmpOp::Lt)
        } else if self.eat(b">") {
            Ok(CmpOp::Gt)
        } else {
            Err(self.err("expected a comparison operator"))
        }
    }

    fn parse_literal(&mut self) -> Result<String, XmlError> {
        match self.peek() {
            Some(q @ (b'\'' | b'"')) => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == q {
                        let s = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                        self.pos += 1;
                        return Ok(s);
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' || c == b'+' => {
                let start = self.pos;
                self.pos += 1;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == b'.' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
            }
            _ => Err(self.err("expected a literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn credential() -> Element {
        Element::new("credential")
            .attr("credID", "c77")
            .child(
                Element::new("header")
                    .child(Element::new("credType").text("ISO9000Certified"))
                    .child(Element::new("issuer").attr("CA", "INFN").text("INFN CA")),
            )
            .child(
                Element::new("content")
                    .child(Element::new("QualityRegulation").text("UNI EN ISO 9000"))
                    .child(Element::new("Salary").text("60000"))
                    .child(
                        Element::new("certificate")
                            .attr("targetCertType", "AAAccreditation")
                            .child(Element::new("certCond").text("/issuer = 'AAA'")),
                    ),
            )
    }

    #[test]
    fn absolute_path_selects() {
        let sel = Selector::parse("/credential/header/credType").unwrap();
        assert_eq!(sel.values(&credential()), ["ISO9000Certified"]);
    }

    #[test]
    fn absolute_path_requires_matching_root() {
        let sel = Selector::parse("/other/header").unwrap();
        assert!(sel.values(&credential()).is_empty());
    }

    #[test]
    fn descendant_axis() {
        let sel = Selector::parse("//certCond").unwrap();
        assert_eq!(sel.values(&credential()), ["/issuer = 'AAA'"]);
    }

    #[test]
    fn attribute_target() {
        let sel = Selector::parse("//certificate/@targetCertType").unwrap();
        assert_eq!(sel.values(&credential()), ["AAAccreditation"]);
        let sel = Selector::parse("/credential/@credID").unwrap();
        assert_eq!(sel.values(&credential()), ["c77"]);
    }

    #[test]
    fn text_target_and_wildcard() {
        let sel = Selector::parse("/credential/content/*/text()").unwrap();
        let values = sel.values(&credential());
        assert!(values.contains(&"UNI EN ISO 9000".to_owned()));
        assert!(values.contains(&"60000".to_owned()));
    }

    #[test]
    fn attribute_predicate() {
        let sel = Selector::parse("//certificate[@targetCertType='AAAccreditation']").unwrap();
        assert_eq!(sel.select(&credential()).len(), 1);
        let sel = Selector::parse("//certificate[@targetCertType='Nope']").unwrap();
        assert!(sel.select(&credential()).is_empty());
        let sel = Selector::parse("//*[@CA]").unwrap();
        assert_eq!(sel.select(&credential())[0].name, "issuer");
    }

    #[test]
    fn relative_path_selects_children() {
        let root = credential();
        let sel = Selector::parse("header/credType").unwrap();
        assert_eq!(sel.values(&root), ["ISO9000Certified"]);
    }

    #[test]
    fn numeric_comparisons() {
        let doc = credential();
        assert!(XPathExpr::parse("/credential/content/Salary > 50000")
            .unwrap()
            .evaluate(&doc));
        assert!(XPathExpr::parse("/credential/content/Salary >= 60000")
            .unwrap()
            .evaluate(&doc));
        assert!(!XPathExpr::parse("/credential/content/Salary < 60000")
            .unwrap()
            .evaluate(&doc));
        assert!(XPathExpr::parse("/credential/content/Salary != 1")
            .unwrap()
            .evaluate(&doc));
    }

    #[test]
    fn string_comparisons() {
        let doc = credential();
        assert!(
            XPathExpr::parse("/credential/header/credType = 'ISO9000Certified'")
                .unwrap()
                .evaluate(&doc)
        );
        assert!(!XPathExpr::parse("/credential/header/credType = 'Other'")
            .unwrap()
            .evaluate(&doc));
    }

    #[test]
    fn existence_test() {
        let doc = credential();
        assert!(XPathExpr::parse("//QualityRegulation")
            .unwrap()
            .evaluate(&doc));
        assert!(!XPathExpr::parse("//Nonexistent").unwrap().evaluate(&doc));
    }

    #[test]
    fn existential_comparison_over_multiple_matches() {
        let doc = Element::new("r")
            .child(Element::new("v").text("1"))
            .child(Element::new("v").text("9"));
        assert!(XPathExpr::parse("/r/v > 5").unwrap().evaluate(&doc));
        assert!(!XPathExpr::parse("/r/v > 10").unwrap().evaluate(&doc));
    }

    #[test]
    fn parse_errors() {
        assert!(XPathExpr::parse("").is_err());
        assert!(XPathExpr::parse("/a/").is_err());
        assert!(XPathExpr::parse("/a//").is_err());
        assert!(XPathExpr::parse("/a[b]").is_err());
        assert!(XPathExpr::parse("/a = ").is_err());
        assert!(XPathExpr::parse("/a = 'unterminated").is_err());
        assert!(XPathExpr::parse("/a ? 3").is_err());
        assert!(XPathExpr::parse("/a = 1 junk").is_err());
    }

    #[test]
    fn display_roundtrips_source() {
        let e = XPathExpr::parse("/credential/content/Salary > 50000").unwrap();
        assert_eq!(e.to_string(), "/credential/content/Salary > 50000");
    }

    #[test]
    fn cmp_op_table() {
        assert!(CmpOp::Eq.compare("a", "a"));
        assert!(CmpOp::Ne.compare("a", "b"));
        assert!(CmpOp::Lt.compare("2", "10")); // numeric, not lexicographic
        assert!(CmpOp::Gt.compare("b", "a")); // lexicographic fallback
        assert!(CmpOp::Le.compare("3.5", "3.5"));
        assert!(CmpOp::Ge.compare("4", "3.9"));
    }
}
