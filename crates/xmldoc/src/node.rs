//! The XML value model: an ordered tree of elements and text.

/// A node in an XML tree: either an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with a name, attributes, and ordered children.
    Element(Element),
    /// A text run. Adjacent text runs are merged by the parser.
    Text(String),
}

impl Node {
    /// The element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// The text inside this node, if it is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Element(_) => None,
            Node::Text(t) => Some(t),
        }
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Self {
        Node::Element(e)
    }
}

/// An XML element.
///
/// Attribute order is preserved and significant for the canonical encoding;
/// builders should insert attributes in a deterministic order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// The tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Children in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Create an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder: add an element child.
    #[must_use]
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: add a text child.
    #[must_use]
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Look up an attribute by name (first match wins).
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Set or replace an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Iterate over element children only.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// First element child with the given tag name.
    pub fn first(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All element children with the given tag name.
    pub fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenated direct text content of this element.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Node::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Text content of the first child element with the given name, if any.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.first(name).map(Element::text_content)
    }

    /// Total number of nodes in this subtree (the element itself included).
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                Node::Element(e) => e.size(),
                Node::Text(_) => 1,
            })
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("credential")
            .attr("credID", "c1")
            .child(
                Element::new("header")
                    .child(Element::new("credType").text("ISO9000Certified"))
                    .child(Element::new("issuer").text("INFN")),
            )
            .child(
                Element::new("content")
                    .child(Element::new("QualityRegulation").text("UNI EN ISO 9000")),
            )
    }

    #[test]
    fn builder_and_accessors() {
        let e = sample();
        assert_eq!(e.get_attr("credID"), Some("c1"));
        assert_eq!(e.get_attr("missing"), None);
        assert_eq!(
            e.first("header").unwrap().child_text("issuer").unwrap(),
            "INFN"
        );
        assert_eq!(e.elements().count(), 2);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("a").attr("k", "v1");
        e.set_attr("k", "v2");
        e.set_attr("k2", "x");
        assert_eq!(e.get_attr("k"), Some("v2"));
        assert_eq!(e.attrs.len(), 2);
    }

    #[test]
    fn text_content_concatenates_direct_text_only() {
        let e = Element::new("a")
            .text("x")
            .child(Element::new("b").text("hidden"))
            .text("y");
        assert_eq!(e.text_content(), "xy");
    }

    #[test]
    fn all_filters_by_name() {
        let e = Element::new("r")
            .child(Element::new("c").text("1"))
            .child(Element::new("d"))
            .child(Element::new("c").text("2"));
        let texts: Vec<String> = e.all("c").map(Element::text_content).collect();
        assert_eq!(texts, ["1", "2"]);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Element::new("a").size(), 1);
        assert_eq!(Element::new("a").text("t").size(), 2);
        assert_eq!(sample().size(), 9);
    }
}
