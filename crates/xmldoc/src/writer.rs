//! Canonical XML serialization.
//!
//! Two forms are provided:
//!
//! * [`to_string`] — the **canonical compact form**: no insignificant
//!   whitespace, attributes in stored order, `"` quoting, and the five
//!   standard entity escapes. Credential signatures are computed over these
//!   bytes, so this form must be deterministic.
//! * [`to_string_pretty`] — an indented form for logs, examples, and docs.

use crate::node::{Element, Node};

/// Escape text content (`&`, `<`, `>`).
pub fn escape_text(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
}

/// Escape an attribute value (adds `"` and newline escapes on top of text escapes).
pub fn escape_attr(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            c => out.push(c),
        }
    }
}

fn write_open_tag(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_attr(v, out);
        out.push('"');
    }
}

fn write_compact(e: &Element, out: &mut String) {
    write_open_tag(e, out);
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            Node::Element(child) => write_compact(child, out),
            Node::Text(t) => escape_text(t, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

/// Serialize to the canonical compact form (no XML declaration).
pub fn to_string(root: &Element) -> String {
    let mut out = String::with_capacity(root.size() * 16);
    write_compact(root, &mut out);
    out
}

fn write_pretty(e: &Element, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    write_open_tag(e, out);
    if e.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Elements whose children are all text stay on one line.
    let text_only = e.children.iter().all(|c| matches!(c, Node::Text(_)));
    if text_only {
        out.push('>');
        for c in &e.children {
            if let Node::Text(t) = c {
                escape_text(t, out);
            }
        }
        out.push_str("</");
        out.push_str(&e.name);
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    for c in &e.children {
        match c {
            Node::Element(child) => write_pretty(child, depth + 1, out),
            Node::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    for _ in 0..=depth {
                        out.push_str("  ");
                    }
                    escape_text(trimmed, out);
                    out.push('\n');
                }
            }
        }
    }
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push_str(">\n");
}

/// Serialize with indentation, prefixed by an XML declaration — the form the
/// paper's figures (Figs. 6–7) show for credentials and policies.
pub fn to_string_pretty(root: &Element) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_pretty(root, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_empty_element_self_closes() {
        assert_eq!(to_string(&Element::new("a")), "<a/>");
    }

    #[test]
    fn compact_nested() {
        let e = Element::new("a")
            .attr("k", "v")
            .child(Element::new("b").text("hi"));
        assert_eq!(to_string(&e), r#"<a k="v"><b>hi</b></a>"#);
    }

    #[test]
    fn escapes_text_and_attrs() {
        let e = Element::new("a").attr("q", "x\"<>&").text("1 < 2 & 3 > 2");
        let s = to_string(&e);
        assert_eq!(
            s,
            r#"<a q="x&quot;&lt;&gt;&amp;">1 &lt; 2 &amp; 3 &gt; 2</a>"#
        );
    }

    #[test]
    fn attr_newline_and_tab_escaped() {
        let e = Element::new("a").attr("k", "l1\nl2\tend");
        assert_eq!(to_string(&e), r#"<a k="l1&#10;l2&#9;end"/>"#);
    }

    #[test]
    fn pretty_has_declaration_and_indentation() {
        let e = Element::new("credential")
            .child(Element::new("header").child(Element::new("issuer").text("INFN")));
        let s = to_string_pretty(&e);
        assert!(s.starts_with("<?xml version=\"1.0\""));
        assert!(s.contains("\n  <header>\n    <issuer>INFN</issuer>\n"));
    }

    #[test]
    fn deterministic_output() {
        let e = Element::new("a").attr("z", "1").attr("a", "2").text("t");
        assert_eq!(to_string(&e), to_string(&e.clone()));
        // Attribute order is preserved as stored, not sorted.
        assert_eq!(to_string(&e), r#"<a z="1" a="2">t</a>"#);
    }
}
