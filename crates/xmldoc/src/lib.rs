//! Minimal XML infrastructure for the `trust-vo` workspace.
//!
//! X-TNL — the Trust-X negotiation language — encodes both credentials and
//! disclosure policies as XML documents (paper §4.1, §6.2), and policy
//! conditions on counterpart credentials are stored as *XPath expressions*
//! evaluated against the credential document (paper Example 1: the
//! `<certCond>` element "stores an Xpath expression on the credential").
//!
//! The paper's prototype used the Java/Oracle XML stack; this crate
//! re-implements the fragment actually needed:
//!
//! * [`node`] — an ordered element/text tree with attributes,
//! * [`writer`] — canonical (deterministic) serialization, compact and
//!   pretty-printed,
//! * [`parser`] — a recursive-descent parser for the subset the writer
//!   emits (elements, attributes, text, comments, XML declarations),
//! * [`xpath`] — an XPath-subset evaluator covering the location paths and
//!   comparisons used by `<certCond>` conditions,
//! * [`binary`] — the wire-speed length-prefixed binary codec for the same
//!   tree, with the XML pair kept as its differential oracle.
//!
//! The canonical writer/parser pair round-trips (`parse(write(d)) == d`),
//! which is the invariant the credential-signing path depends on: a
//! signature is computed over the canonical byte form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod error;
pub mod node;
pub mod parser;
pub mod writer;
pub mod xpath;

pub use binary::{decode_element, decode_element_at, encode_element, encode_element_into};
pub use error::XmlError;
pub use node::{Element, Node};
pub use parser::parse;
pub use writer::{to_string, to_string_pretty};
pub use xpath::{CmpOp, Selector, XPathExpr};
