//! Canonical binary encoding of the [`Element`] tree.
//!
//! The XML writer/parser pair is the human-readable (and historically
//! SOAP-shaped) serialization; this module is the wire-speed one: a
//! length-prefixed tag/string format that round-trips the exact same
//! tree without tokenizing, escaping, or re-parsing text. The two are
//! differential oracles for each other — `decode(encode(e)) == e ==
//! parse(to_string(e))` — which is what the `soa` wire path's
//! differential proptests pin.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! element := 0x01  name:str  nattrs:u32 (str str)*  nkids:u32 node*
//! node    := element | 0x02 text:str
//! str     := len:u32 bytes:[u8; len]   (UTF-8)
//! ```
//!
//! Decoding is total: any byte slice either yields an element or
//! `None` — malformed tags, truncated strings, invalid UTF-8, counts
//! running past the buffer, and pathological nesting all return `None`
//! rather than panicking or over-allocating (child/attribute vectors
//! grow per decoded item, never from the claimed count).

use crate::node::{Element, Node};

/// Tag byte opening an element node.
const TAG_ELEMENT: u8 = 0x01;
/// Tag byte opening a text node.
const TAG_TEXT: u8 = 0x02;

/// Nesting deeper than this fails to decode instead of risking the
/// decoder's stack. The writer never enforces a depth (documents are
/// built by us), but the decoder must survive adversarial bytes.
pub const MAX_DEPTH: usize = 1024;

/// Append the canonical binary encoding of `e` to `out`.
pub fn encode_element_into(out: &mut Vec<u8>, e: &Element) {
    out.push(TAG_ELEMENT);
    put_str(out, &e.name);
    put_u32(out, e.attrs.len() as u32);
    for (name, value) in &e.attrs {
        put_str(out, name);
        put_str(out, value);
    }
    put_u32(out, e.children.len() as u32);
    for child in &e.children {
        match child {
            Node::Element(el) => encode_element_into(out, el),
            Node::Text(t) => {
                out.push(TAG_TEXT);
                put_str(out, t);
            }
        }
    }
}

/// The canonical binary encoding of `e` as a fresh buffer.
pub fn encode_element(e: &Element) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_element_into(&mut out, e);
    out
}

/// Decode one element from the front of `bytes`, requiring the whole
/// slice to be consumed. `None` on any malformation.
pub fn decode_element(bytes: &[u8]) -> Option<Element> {
    let mut pos = 0usize;
    let e = decode_element_at(bytes, &mut pos)?;
    if pos == bytes.len() {
        Some(e)
    } else {
        None
    }
}

/// Decode one element starting at `*pos`, advancing `*pos` past it.
pub fn decode_element_at(bytes: &[u8], pos: &mut usize) -> Option<Element> {
    decode_at_depth(bytes, pos, 0)
}

fn decode_at_depth(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Element> {
    if depth >= MAX_DEPTH {
        return None;
    }
    if get_u8(bytes, pos)? != TAG_ELEMENT {
        return None;
    }
    let name = get_str(bytes, pos)?;
    let nattrs = get_u32(bytes, pos)? as usize;
    let mut attrs = Vec::new();
    for _ in 0..nattrs {
        let k = get_str(bytes, pos)?;
        let v = get_str(bytes, pos)?;
        attrs.push((k, v));
    }
    let nkids = get_u32(bytes, pos)? as usize;
    let mut children = Vec::new();
    for _ in 0..nkids {
        match bytes.get(*pos).copied()? {
            TAG_ELEMENT => children.push(Node::Element(decode_at_depth(bytes, pos, depth + 1)?)),
            TAG_TEXT => {
                *pos += 1;
                children.push(Node::Text(get_str(bytes, pos)?));
            }
            _ => return None,
        }
    }
    Some(Element {
        name,
        attrs,
        children,
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_u8(bytes: &[u8], pos: &mut usize) -> Option<u8> {
    let b = bytes.get(*pos).copied()?;
    *pos += 1;
    Some(b)
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let end = pos.checked_add(4)?;
    let slice = bytes.get(*pos..end)?;
    *pos = end;
    Some(u32::from_le_bytes(slice.try_into().ok()?))
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = get_u32(bytes, pos)? as usize;
    let end = pos.checked_add(len)?;
    let slice = bytes.get(*pos..end)?;
    *pos = end;
    Some(std::str::from_utf8(slice).ok()?.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Element {
        Element::new("credential")
            .attr("credID", "c1")
            .attr("issuer", "INFN")
            .child(
                Element::new("header")
                    .child(Element::new("credType").text("ISO9000Certified"))
                    .child(Element::new("issuer").text("INFN")),
            )
            .child(Element::new("content").text("UNI EN ISO 9000"))
    }

    #[test]
    fn roundtrip_sample() {
        let e = sample();
        assert_eq!(decode_element(&encode_element(&e)), Some(e));
    }

    #[test]
    fn roundtrip_empty_and_text_only() {
        for e in [
            Element::new("a"),
            Element::new("a").text(""),
            Element::new("a").text("x").text("y"),
        ] {
            assert_eq!(decode_element(&encode_element(&e)), Some(e));
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode_element(&sample());
        buf.push(0);
        assert_eq!(decode_element(&buf), None);
    }

    #[test]
    fn truncations_never_panic() {
        let buf = encode_element(&sample());
        for cut in 0..buf.len() {
            assert_eq!(decode_element(&buf[..cut]), None);
        }
    }

    #[test]
    fn bogus_counts_do_not_overallocate() {
        // An element claiming u32::MAX children with no bytes behind the
        // claim must fail cleanly (the decoder grows per decoded child).
        let mut buf = Vec::new();
        buf.push(TAG_ELEMENT);
        put_str(&mut buf, "a");
        put_u32(&mut buf, 0); // no attrs
        put_u32(&mut buf, u32::MAX); // absurd child count
        assert_eq!(decode_element(&buf), None);
    }

    #[test]
    fn runaway_nesting_rejected() {
        // MAX_DEPTH+1 nested element openers (each claiming one child).
        let mut buf = Vec::new();
        for _ in 0..=MAX_DEPTH {
            buf.push(TAG_ELEMENT);
            put_str(&mut buf, "d");
            put_u32(&mut buf, 0);
            put_u32(&mut buf, 1);
        }
        assert_eq!(decode_element(&buf), None);
    }

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_.-]{0,8}"
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // Text without whitespace-only runs (those are not canonical).
        "[ -~]{1,20}"
    }

    /// Canonical trees: deduped attribute keys, merged adjacent text —
    /// the same shape the XML parser's round-trip property generates.
    fn arb_element() -> impl Strategy<Value = Element> {
        let leaf = (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
        )
            .prop_map(|(name, attrs)| {
                let mut seen = std::collections::HashSet::new();
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        e.attrs.push((k, v));
                    }
                }
                e
            });
        leaf.prop_recursive(3, 24, 4, |inner| {
            (
                arb_name(),
                proptest::collection::vec(
                    prop_oneof![
                        inner.prop_map(Node::Element),
                        arb_text().prop_map(Node::Text),
                    ],
                    0..4,
                ),
            )
                .prop_map(|(name, children)| {
                    let mut e = Element::new(name);
                    for c in children {
                        match (e.children.last_mut(), c) {
                            (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                            (_, c) => e.children.push(c),
                        }
                    }
                    e
                })
        })
    }

    proptest! {
        /// Binary round-trip is exact for arbitrary trees, and agrees
        /// with the canonical XML writer/parser oracle.
        #[test]
        fn binary_matches_xml_oracle(e in arb_element()) {
            let bin = decode_element(&encode_element(&e));
            prop_assert_eq!(bin.as_ref(), Some(&e));
            let xml = crate::parse(&crate::to_string(&e)).ok();
            prop_assert_eq!(xml.as_ref(), Some(&e));
            prop_assert_eq!(bin, xml);
        }

        /// Arbitrary byte soup never panics the decoder.
        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_element(&bytes);
        }
    }
}
