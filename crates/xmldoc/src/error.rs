//! Error types for parsing XML and XPath expressions.

/// An error produced while parsing an XML document or XPath expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl XmlError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        XmlError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = XmlError::new(42, "unexpected '<'");
        let text = e.to_string();
        assert!(text.contains("42"));
        assert!(text.contains("unexpected '<'"));
    }
}
