//! A recursive-descent parser for the XML subset the workspace emits.
//!
//! Supported: one root element, nested elements, attributes with single or
//! double quotes, text with the standard five entities plus decimal/hex
//! character references, comments, and a leading XML declaration /
//! processing instructions (skipped). Not supported (not needed by X-TNL):
//! DTDs, namespaces-as-semantics (prefixes are kept verbatim in names), and
//! CDATA sections.

use crate::error::XmlError;
use crate::node::{Element, Node};

/// Parse a complete document and return its root element.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::new(self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.input[self.pos..].starts_with(prefix)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), XmlError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    /// Skip the XML declaration, processing instructions, comments, and
    /// whitespace before the root element.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                self.skip_until(b"?>")?;
            } else if self.starts_with(b"<!--") {
                self.skip_until(b"-->")?;
            } else if self.starts_with(b"<!") {
                // DOCTYPE etc. — skip to the closing '>'.
                self.skip_until(b">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip trailing comments/whitespace after the root element.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<!--") {
                self.skip_until(b"-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, terminator: &[u8]) -> Result<(), XmlError> {
        while self.pos < self.input.len() {
            if self.starts_with(terminator) {
                self.pos += terminator.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!(
            "unterminated construct (expected {:?})",
            String::from_utf8_lossy(terminator)
        )))
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        // Input is a &str, so this slice is valid UTF-8.
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("eof in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected a quoted attribute value"));
                    }
                    self.pos += 1;
                    let value = self.parse_until_quote(quote)?;
                    element.attrs.push((attr_name, value));
                }
                None => return Err(self.err("eof inside a start tag")),
            }
        }
        // Children until the matching end tag.
        loop {
            if self.starts_with(b"<!--") {
                self.skip_until(b"-->")?;
                continue;
            }
            if self.starts_with(b"</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != element.name {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{}>, found </{end_name}>",
                        element.name
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.children.push(Node::Element(child));
                }
                Some(_) => {
                    let text = self.parse_text()?;
                    if !text.is_empty() {
                        // Merge adjacent text runs for a canonical tree.
                        if let Some(Node::Text(prev)) = element.children.last_mut() {
                            prev.push_str(&text);
                        } else {
                            element.children.push(Node::Text(text));
                        }
                    }
                }
                None => return Err(self.err(format!("eof inside <{}>", element.name))),
            }
        }
    }

    fn parse_until_quote(&mut self, quote: u8) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(c) => {
                    self.push_utf8(c, &mut out);
                }
                None => return Err(self.err("eof inside attribute value")),
            }
        }
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'<') | None => return Ok(out),
                Some(b'&') => out.push(self.parse_entity()?),
                Some(c) => {
                    self.push_utf8(c, &mut out);
                }
            }
        }
    }

    /// Copy one UTF-8 scalar starting at the current byte.
    fn push_utf8(&mut self, first: u8, out: &mut String) {
        let len = match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        };
        let end = (self.pos + len).min(self.input.len());
        let slice = &self.input[self.pos..end];
        out.push_str(&String::from_utf8_lossy(slice));
        self.pos = end;
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        let start = self.pos;
        self.pos += 1;
        let semi = self.input[self.pos..]
            .iter()
            .position(|&b| b == b';')
            .ok_or_else(|| self.err("unterminated entity"))?;
        let body = &self.input[self.pos..self.pos + semi];
        self.pos += semi + 1;
        let name = String::from_utf8_lossy(body);
        let ch = match name.as_ref() {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16).map_err(|_| {
                    XmlError::new(start, format!("bad character reference &{name};"))
                })?;
                char::from_u32(code)
                    .ok_or_else(|| XmlError::new(start, format!("invalid code point {code}")))?
            }
            _ if name.starts_with('#') => {
                let code = name[1..].parse::<u32>().map_err(|_| {
                    XmlError::new(start, format!("bad character reference &{name};"))
                })?;
                char::from_u32(code)
                    .ok_or_else(|| XmlError::new(start, format!("invalid code point {code}")))?
            }
            _ => return Err(XmlError::new(start, format!("unknown entity &{name};"))),
        };
        Ok(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{to_string, to_string_pretty};
    use proptest::prelude::*;

    #[test]
    fn parses_simple_document() {
        let root = parse(r#"<a k="v"><b>hi</b></a>"#).unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.get_attr("k"), Some("v"));
        assert_eq!(root.first("b").unwrap().text_content(), "hi");
    }

    #[test]
    fn skips_declaration_and_comments() {
        let doc = "<?xml version=\"1.0\"?>\n<!-- note -->\n<a><!-- inner -->x</a>\n<!-- after -->";
        let root = parse(doc).unwrap();
        assert_eq!(root.text_content(), "x");
    }

    #[test]
    fn self_closing_and_single_quotes() {
        let root = parse("<a k='v'><b/></a>").unwrap();
        assert_eq!(root.get_attr("k"), Some("v"));
        assert!(root.first("b").unwrap().children.is_empty());
    }

    #[test]
    fn entities_decoded() {
        let root = parse("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(root.text_content(), "<x> & \"y\" 'z' AB");
    }

    #[test]
    fn adjacent_text_merged() {
        let root = parse("<a>x&amp;y</a>").unwrap();
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.text_content(), "x&y");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn rejects_truncated_inputs() {
        for doc in ["<a", "<a>", "<a attr", "<a k=\"v", "<a>&amp", "<a><b></b>"] {
            assert!(parse(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn unknown_entity_is_error() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn utf8_text_preserved() {
        let root = parse("<a>héllo — 日本語</a>").unwrap();
        assert_eq!(root.text_content(), "héllo — 日本語");
    }

    // ---- round-trip properties ----

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_.-]{0,8}"
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // Text without whitespace-only runs (those are not canonical).
        "[ -~]{1,20}".prop_map(|s| s.replace('\u{0}', "x"))
    }

    fn arb_element() -> impl Strategy<Value = Element> {
        let leaf = (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
        )
            .prop_map(|(name, attrs)| {
                let mut seen = std::collections::HashSet::new();
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        e.attrs.push((k, v));
                    }
                }
                e
            });
        leaf.prop_recursive(3, 24, 4, |inner| {
            (
                arb_name(),
                proptest::collection::vec(
                    prop_oneof![
                        inner.prop_map(Node::Element),
                        arb_text().prop_map(Node::Text),
                    ],
                    0..4,
                ),
            )
                .prop_map(|(name, children)| {
                    let mut e = Element::new(name);
                    // Merge adjacent text nodes so the tree is canonical.
                    for c in children {
                        match (e.children.last_mut(), c) {
                            (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                            (_, c) => e.children.push(c),
                        }
                    }
                    e
                })
        })
    }

    proptest! {
        #[test]
        fn compact_roundtrip(e in arb_element()) {
            let s = to_string(&e);
            let back = parse(&s).unwrap();
            prop_assert_eq!(back, e);
        }

        #[test]
        fn pretty_output_parses(e in arb_element()) {
            // Pretty output re-indents, so only structure (names/attrs) is
            // guaranteed; it must at least parse.
            let s = to_string_pretty(&e);
            let back = parse(&s).unwrap();
            prop_assert_eq!(back.name, e.name);
            prop_assert_eq!(back.attrs, e.attrs);
        }
    }
}

#[cfg(test)]
mod robustness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The parser never panics, whatever bytes arrive (it may error).
        #[test]
        fn parse_never_panics(input in "\\PC{0,200}") {
            let _ = parse(&input);
        }

        /// Near-valid inputs: random mutations of a valid document either
        /// parse or error — never panic, never loop.
        #[test]
        fn mutated_documents_never_panic(
            idx in any::<prop::sample::Index>(),
            replacement in any::<u8>(),
        ) {
            let base = r#"<credential credID="c1"><header><credType>ISO</credType></header><content><A type="integer">42</A></content><signature>QUJD</signature></credential>"#;
            let mut bytes = base.as_bytes().to_vec();
            let i = idx.index(bytes.len());
            bytes[i] = replacement;
            if let Ok(text) = String::from_utf8(bytes) {
                let _ = parse(&text);
            }
        }

        /// Anything that parses re-serializes and re-parses to the same tree
        /// (idempotent canonicalization).
        #[test]
        fn parse_write_parse_is_stable(input in "\\PC{0,200}") {
            if let Ok(doc) = parse(&input) {
                let text = crate::writer::to_string(&doc);
                let again = parse(&text).expect("writer output always parses");
                prop_assert_eq!(again, doc);
            }
        }
    }
}
