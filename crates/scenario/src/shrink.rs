//! Delta-debugging shrinker: reduce a failing scenario to a minimal one
//! that still violates the *same* property, then print it as a
//! reproducible `trustvo scenario repro` command line.
//!
//! Reductions are clause deletions and dimension floors, tried
//! harshest-first (drop the mana cap, drop windows, drop lifecycle
//! steps, zero the loss, shrink the world). A reduction is kept only if
//! the reduced scenario fails with the same property identifier — a
//! different failure is a different bug and must not hijack the repro.
//! The loop runs to a fixpoint under a run budget, so shrinking always
//! terminates even on flapping properties.

use crate::dsl::Scenario;
use crate::run::Failure;

/// The result of shrinking one failing scenario.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimal scenario still failing the original property.
    pub scenario: Scenario,
    /// The failure the minimal scenario produces.
    pub failure: Failure,
    /// Property checks spent shrinking.
    pub runs: usize,
}

impl Shrunk {
    /// The reproduction command ci prints next to the failure.
    pub fn repro(&self) -> String {
        self.scenario.repro_command()
    }
}

/// Every single-step reduction of `s`, harshest-first.
fn reductions(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if s.mana.is_some() {
        out.push(Scenario {
            mana: None,
            ..s.clone()
        });
    }
    for list in ["partitions", "crashes", "storms", "churn"] {
        let variants: Vec<Scenario> = match list {
            "partitions" => (0..s.partitions.len())
                .map(|i| {
                    let mut c = s.clone();
                    c.partitions.remove(i);
                    c
                })
                .collect(),
            "crashes" => (0..s.crashes.len())
                .map(|i| {
                    let mut c = s.clone();
                    c.crashes.remove(i);
                    c
                })
                .collect(),
            "storms" => (0..s.storms.len())
                .map(|i| {
                    let mut c = s.clone();
                    c.storms.remove(i);
                    c
                })
                .collect(),
            _ => (0..s.churn.len())
                .map(|i| {
                    let mut c = s.clone();
                    c.churn.remove(i);
                    c
                })
                .collect(),
        };
        out.extend(variants);
    }
    if s.loss_pct > 0 {
        out.push(Scenario {
            loss_pct: 0,
            ..s.clone()
        });
    }
    if s.drift > 0 {
        out.push(Scenario {
            drift: 0,
            ..s.clone()
        });
    }
    if s.parties > 1 {
        out.push(Scenario {
            parties: s.parties - 1,
            ..s.clone()
        });
    }
    if s.depth > 1 {
        out.push(Scenario {
            depth: 1,
            ..s.clone()
        });
    }
    if s.alternatives > 1 {
        out.push(Scenario {
            alternatives: 1,
            ..s.clone()
        });
    }
    out
}

/// Shrink `scenario` (which fails `check` with `failure`) to a fixpoint:
/// no single reduction still fails the same property. `max_runs` bounds
/// the total property checks spent.
pub fn shrink(
    scenario: &Scenario,
    failure: &Failure,
    max_runs: usize,
    check: impl Fn(&Scenario) -> Result<crate::run::Outcome, Failure>,
) -> Shrunk {
    let mut current = scenario.clone();
    let mut current_failure = failure.clone();
    let mut runs = 0usize;
    loop {
        let mut reduced = false;
        for candidate in reductions(&current) {
            if runs >= max_runs {
                return Shrunk {
                    scenario: current,
                    failure: current_failure,
                    runs,
                };
            }
            runs += 1;
            if let Err(f) = check(&candidate) {
                if f.property == current_failure.property {
                    current = candidate;
                    current_failure = f;
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            return Shrunk {
                scenario: current,
                failure: current_failure,
                runs,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{Churn, ManaClause, Storm, Window};

    /// A synthetic check failing whenever loss > 0 — shrinking must strip
    /// every other clause and keep the loss.
    fn loss_check(s: &Scenario) -> Result<crate::run::Outcome, Failure> {
        if s.loss_pct > 0 {
            Err(Failure {
                property: "synthetic-loss".into(),
                detail: format!("loss={}", s.loss_pct),
            })
        } else {
            // A passing synthetic check; the outcome value is never read.
            Ok(crate::run::Outcome {
                mapped: 0,
                formed: Err("not run".into()),
                elapsed_us: 0,
                delivered: 0,
                drops: 0,
                dups: 0,
                dedup_replays: 0,
                crashes: 0,
                partitioned: 0,
                refusals: 0,
                service_resumed: 0,
            })
        }
    }

    #[test]
    fn shrink_strips_everything_but_the_culprit() {
        let fat = Scenario {
            parties: 3,
            depth: 2,
            alternatives: 2,
            loss_pct: 20,
            drift: 3,
            storms: vec![Storm { revoke: 1 }],
            churn: vec![Churn::Replace { role: 0 }, Churn::Renew { member: 0 }],
            partitions: vec![Window {
                start_pct: 30,
                len_ms: 200,
            }],
            crashes: vec![Window {
                start_pct: 40,
                len_ms: 400,
            }],
            mana: Some(ManaClause {
                capacity_milli: 2_000,
                refill_milli: 1_000,
            }),
            ..Scenario::minimal(5)
        };
        let failure = loss_check(&fat).expect_err("fat scenario fails");
        let shrunk = shrink(&fat, &failure, 200, loss_check);
        assert_eq!(shrunk.scenario.parties, 1);
        assert_eq!(shrunk.scenario.depth, 1);
        assert_eq!(shrunk.scenario.fault_clauses(), 1, "only the loss stays");
        assert!(shrunk.scenario.loss_pct > 0);
        assert!(shrunk.scenario.storms.is_empty());
        assert!(shrunk.scenario.churn.is_empty());
        assert!(shrunk.scenario.mana.is_none());
        assert!(shrunk
            .repro()
            .starts_with("trustvo scenario repro --seed 5"));
        assert!(shrunk.runs <= 200);
    }

    #[test]
    fn shrink_respects_the_run_budget() {
        let fat = Scenario {
            parties: 3,
            loss_pct: 20,
            drift: 3,
            ..Scenario::minimal(6)
        };
        let failure = loss_check(&fat).expect_err("fails");
        let shrunk = shrink(&fat, &failure, 1, loss_check);
        assert!(shrunk.runs <= 1, "budget must cap the search");
    }
}
