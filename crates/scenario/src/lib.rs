//! Seeded scenario DSL + lifecycle fuzzer for the VO stack.
//!
//! The paper's trust-establishment pipeline (admission TN → membership
//! certificate → operation → dissolution, §5) is exercised everywhere in
//! this repo by *hand-written* worlds. This crate closes the coverage
//! gap with generated ones: a declarative [`Scenario`] —
//! parties, policy-chain shape, ontology drift, revocation storms,
//! churn, partitions, crash windows, flow budgets — compiled into a
//! `netsim` fault plan plus a lifecycle script driven through the
//! transport-backed `form_vo_resilient[_parallel]_admitted` drivers.
//!
//! Three layers:
//!
//! * [`dsl`] — the scenario grammar, its SplitMix64 generator, and a
//!   lossless command-line round trip (`trustvo scenario repro …`);
//! * [`run`] — compile + execute + check the four lifecycle properties
//!   (membership ⇔ completed TN, drive equivalence, kill-anywhere
//!   journal recovery, honored refusal hints);
//! * [`mod@shrink`] — delta-debug a failing seed to a minimal scenario that
//!   still violates the same property, printed as a repro command.
//!
//! [`fuzz`] ties them together: generate `count` scenarios from a base
//! seed, check each, shrink the first failure. The E16 harness
//! (`fig_scenario_sweep`) and the ci smoke gate are thin wrappers over
//! it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsl;
pub mod run;
pub mod shrink;
pub mod world;

pub use dsl::{Churn, ManaClause, Scenario, Storm, Window};
pub use run::{check_scenario, check_scenario_canary, Failure, Mode, Outcome};
pub use shrink::{shrink, Shrunk};

/// Aggregate result of a fuzzing sweep.
#[derive(Debug)]
pub struct FuzzReport {
    /// Scenarios generated and checked.
    pub checked: usize,
    /// Of those, scenarios whose formation completed.
    pub formed: usize,
    /// Total typed refusals observed across all runs.
    pub refusals: u64,
    /// Total injected drops across all runs.
    pub drops: u64,
    /// Total crash firings across all runs.
    pub crashes: u64,
    /// The first property violation, shrunk — `None` when every scenario
    /// passed.
    pub failure: Option<shrink::Shrunk>,
}

/// Check `count` generated scenarios starting at `base_seed`. Stops at
/// the first property violation and shrinks it (budget `shrink_runs`
/// checks). Pure in `(base_seed, count)`.
pub fn fuzz(base_seed: u64, count: usize, shrink_runs: usize) -> FuzzReport {
    fuzz_with(base_seed, count, shrink_runs, false)
}

/// [`fuzz`] with the ci canary: every scenario is additionally required
/// to FAIL formation, so healthy seeds violate the canary property and
/// prove the shrinker end-to-end.
pub fn fuzz_with(base_seed: u64, count: usize, shrink_runs: usize, canary: bool) -> FuzzReport {
    let mut report = FuzzReport {
        checked: 0,
        formed: 0,
        refusals: 0,
        drops: 0,
        crashes: 0,
        failure: None,
    };
    for i in 0..count {
        let scenario = dsl::Scenario::generate(base_seed.wrapping_add(i as u64));
        report.checked += 1;
        match run::check_scenario_canary(&scenario, canary) {
            Ok(outcome) => {
                report.formed += usize::from(outcome.formed.is_ok());
                report.refusals += outcome.refusals;
                report.drops += outcome.drops;
                report.crashes += outcome.crashes;
            }
            Err(failure) => {
                report.failure = Some(shrink::shrink(&scenario, &failure, shrink_runs, |s| {
                    run::check_scenario_canary(s, canary)
                }));
                return report;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_sweep_passes_and_is_deterministic() {
        let a = fuzz(1000, 12, 0);
        assert_eq!(a.checked, 12);
        assert!(a.failure.is_none(), "sweep failed: {:?}", a.failure);
        assert!(a.formed >= 6, "only {}/12 scenarios formed", a.formed);
        let b = fuzz(1000, 12, 0);
        assert_eq!(
            (a.formed, a.refusals, a.drops, a.crashes),
            (b.formed, b.refusals, b.drops, b.crashes)
        );
    }

    #[test]
    fn canary_failure_shrinks_to_a_tiny_repro() {
        let report = fuzz_with(2000, 8, 300, true);
        let shrunk = report.failure.expect("the canary must fire");
        assert_eq!(shrunk.failure.property, "canary");
        assert!(
            shrunk.scenario.parties <= 3,
            "shrunk to {} parties",
            shrunk.scenario.parties
        );
        assert!(
            shrunk.scenario.fault_clauses() <= 2,
            "shrunk to {} fault clauses",
            shrunk.scenario.fault_clauses()
        );
        assert!(shrunk.repro().starts_with("trustvo scenario repro --seed"));
    }
}
