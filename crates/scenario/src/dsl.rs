//! The declarative scenario grammar and its seeded generator.
//!
//! A [`Scenario`] is a *value*: a small integer-quantized description of
//! one VO lifecycle run — party population, negotiation policy shape,
//! ontology drift, credential-revocation storms, member churn, and the
//! fault clauses (loss, partitions, crash windows, flow-budget caps)
//! injected under it. Everything is integers or integer-quantized
//! fractions so a scenario round-trips losslessly through a command line
//! (`trustvo scenario repro …`) and shrinks by deleting clauses.
//!
//! Determinism contract: `Scenario::generate(seed)` is a pure function
//! of the seed (SplitMix64 streams, like netsim's per-call decision
//! streams), and running a scenario is a pure function of the scenario
//! value — same seed ⇒ same scenario ⇒ byte-identical outcome.

use trust_vo_netsim::rng::{hash_str, mix, SplitMix64};

/// A credential-revocation storm during the operation phase: the first
/// `revoke` members' membership certificates are revoked into the CRL
/// (and must then fail [`verify_membership`](trust_vo_vo::operation::verify_membership)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Storm {
    /// How many members the storm revokes (clamped to the member count).
    pub revoke: usize,
}

/// One member-churn operation applied during the operation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Churn {
    /// Replace the member holding role `role` (formation protocols re-run
    /// against the registry, old member excluded; see §5.1).
    Replace {
        /// Role index into the contract's role list.
        role: usize,
    },
    /// Re-negotiate and re-issue the certificate of member `member`.
    Renew {
        /// Member index into the formed VO's member list.
        member: usize,
    },
}

/// A sim-time window, anchored as a percentage of a fault-free probe
/// run's elapsed formation time (so windows land *inside* the run
/// regardless of how the scenario's world scales).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window start: percent of the probe run's elapsed time (0–100).
    pub start_pct: u32,
    /// Window length in sim-milliseconds.
    pub len_ms: u32,
}

/// A per-party flow-budget clause: a deliberately tight mana bucket at
/// the bus boundary, provoking typed `budget_exhausted` refusals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManaClause {
    /// Bucket capacity in milli-tokens (1000 = one call at standard cost).
    pub capacity_milli: u32,
    /// Refill rate in milli-tokens per sim-second.
    pub refill_milli: u32,
}

/// One declarative lifecycle scenario. See the module docs for the
/// determinism contract; [`crate::run::check_scenario`] executes it.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seed for every decision stream under this scenario (fault plan,
    /// idempotency streams, generated values).
    pub seed: u64,
    /// Applicant count — one contract role per applicant.
    pub parties: usize,
    /// Interlocking disclosure-policy chain depth per admission.
    pub depth: usize,
    /// Failing policy alternatives per chain level.
    pub alternatives: usize,
    /// Per-direction message loss, in percent (0 ⇒ a reliable plan with
    /// zero latency; >0 ⇒ the netsim lossy profile).
    pub loss_pct: u32,
    /// Ontology drift: how many of the profile-exchange concept lookups
    /// use paraphrased names that only similarity mapping resolves.
    pub drift: usize,
    /// Revocation storms applied during the operation phase.
    pub storms: Vec<Storm>,
    /// Member churn applied during the operation phase.
    pub churn: Vec<Churn>,
    /// Network partitions cutting off the TN service.
    pub partitions: Vec<Window>,
    /// Crash outages of the TN service (state wiped; sessions must
    /// resume from durable checkpoints).
    pub crashes: Vec<Window>,
    /// Optional tight per-party flow budget at the bus boundary.
    pub mana: Option<ManaClause>,
}

impl Scenario {
    /// The smallest interesting scenario: one party, shallow chain, no
    /// faults. The shrinker converges toward this.
    pub fn minimal(seed: u64) -> Self {
        Scenario {
            seed,
            parties: 1,
            depth: 1,
            alternatives: 1,
            loss_pct: 0,
            drift: 0,
            storms: Vec::new(),
            churn: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            mana: None,
        }
    }

    /// Generate the scenario for `seed` — a pure function of the seed.
    ///
    /// Populations stay small (≤ 3 parties, chain depth ≤ 2) so a smoke
    /// sweep of hundreds of scenarios, each run several ways, finishes in
    /// seconds; the *variety* comes from clause combinations, not world
    /// size.
    pub fn generate(seed: u64) -> Self {
        let mut rng = SplitMix64::new(mix(&[seed, hash_str("scenario.generate")]));
        let parties = rng.in_range(1, 3) as usize;
        let depth = rng.in_range(1, 2) as usize;
        let alternatives = rng.in_range(1, 2) as usize;
        let loss_pct = *[0u32, 0, 5, 10, 20]
            .get(rng.in_range(0, 4) as usize)
            .expect("index in range");
        let drift = if rng.chance(0.4) {
            rng.in_range(1, 4) as usize
        } else {
            0
        };
        let storms = if rng.chance(0.35) {
            vec![Storm {
                revoke: rng.in_range(1, parties as u64) as usize,
            }]
        } else {
            Vec::new()
        };
        let mut churn = Vec::new();
        if rng.chance(0.4) {
            churn.push(Churn::Replace {
                role: rng.in_range(0, parties as u64 - 1) as usize,
            });
        }
        if rng.chance(0.25) {
            churn.push(Churn::Renew {
                member: rng.in_range(0, parties as u64 - 1) as usize,
            });
        }
        let partitions = if rng.chance(0.25) {
            vec![Window {
                start_pct: rng.in_range(10, 70) as u32,
                len_ms: rng.in_range(50, 800) as u32,
            }]
        } else {
            Vec::new()
        };
        let crashes = if rng.chance(0.25) {
            vec![Window {
                start_pct: rng.in_range(20, 60) as u32,
                len_ms: rng.in_range(200, 1_500) as u32,
            }]
        } else {
            Vec::new()
        };
        let mana = if rng.chance(0.3) {
            Some(ManaClause {
                capacity_milli: rng.in_range(1_000, 4_000) as u32,
                refill_milli: rng.in_range(500, 4_000) as u32,
            })
        } else {
            None
        };
        Scenario {
            seed,
            parties,
            depth,
            alternatives,
            loss_pct,
            drift,
            storms,
            churn,
            partitions,
            crashes,
            mana,
        }
    }

    /// The number of *fault clauses* in the scenario: loss, partitions,
    /// crash windows, and the mana cap. (Storms and churn are lifecycle
    /// script steps, not injected faults.) The acceptance bar for a
    /// shrunk repro is stated in these units.
    pub fn fault_clauses(&self) -> usize {
        usize::from(self.loss_pct > 0)
            + self.partitions.len()
            + self.crashes.len()
            + usize::from(self.mana.is_some())
    }

    /// Whether any clause makes run behavior depend on *call arrival
    /// order*: partitions and crash windows fire on whichever call
    /// reaches them first, and the mana gate's bucket charges are
    /// stateful per party. Those scenarios are only deterministic under
    /// a serial drive, so the parallel-equivalence leg is skipped for
    /// them (the crash row of E11 set the precedent; E14 only ever
    /// drives the gate serially).
    pub fn serial_only(&self) -> bool {
        !self.partitions.is_empty() || !self.crashes.is_empty() || self.mana.is_some()
    }

    /// Render the scenario as `trustvo scenario repro` arguments —
    /// the exact inverse of [`Scenario::from_args`].
    pub fn repro_args(&self) -> Vec<String> {
        let mut args = vec![
            "--seed".into(),
            self.seed.to_string(),
            "--parties".into(),
            self.parties.to_string(),
            "--depth".into(),
            self.depth.to_string(),
            "--alternatives".into(),
            self.alternatives.to_string(),
        ];
        if self.loss_pct > 0 {
            args.push("--loss".into());
            args.push(self.loss_pct.to_string());
        }
        if self.drift > 0 {
            args.push("--drift".into());
            args.push(self.drift.to_string());
        }
        for s in &self.storms {
            args.push("--storm".into());
            args.push(s.revoke.to_string());
        }
        for c in &self.churn {
            args.push("--churn".into());
            args.push(match c {
                Churn::Replace { role } => format!("replace:{role}"),
                Churn::Renew { member } => format!("renew:{member}"),
            });
        }
        for w in &self.partitions {
            args.push("--partition".into());
            args.push(format!("{}:{}", w.start_pct, w.len_ms));
        }
        for w in &self.crashes {
            args.push("--crash".into());
            args.push(format!("{}:{}", w.start_pct, w.len_ms));
        }
        if let Some(m) = &self.mana {
            args.push("--mana".into());
            args.push(format!("{}:{}", m.capacity_milli, m.refill_milli));
        }
        args
    }

    /// The full repro command line, as printed next to a shrunk failure.
    pub fn repro_command(&self) -> String {
        let mut cmd = "trustvo scenario repro".to_owned();
        for a in self.repro_args() {
            cmd.push(' ');
            cmd.push_str(&a);
        }
        cmd
    }

    /// Parse `trustvo scenario repro` arguments back into a scenario —
    /// the exact inverse of [`Scenario::repro_args`].
    pub fn from_args(args: &[String]) -> Result<Scenario, String> {
        let mut s = Scenario::minimal(0);
        let mut i = 0;
        fn parse_pair(v: &str, flag: &str) -> Result<(u32, u32), String> {
            let (a, b) = v
                .split_once(':')
                .ok_or_else(|| format!("{flag} takes A:B, got '{v}'"))?;
            Ok((
                a.parse().map_err(|_| format!("bad {flag} '{v}'"))?,
                b.parse().map_err(|_| format!("bad {flag} '{v}'"))?,
            ))
        }
        while i < args.len() {
            let flag = args[i].as_str();
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            match flag {
                "--seed" => s.seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?,
                "--parties" => {
                    s.parties = value
                        .parse()
                        .map_err(|_| format!("bad parties '{value}'"))?
                }
                "--depth" => s.depth = value.parse().map_err(|_| format!("bad depth '{value}'"))?,
                "--alternatives" => {
                    s.alternatives = value
                        .parse()
                        .map_err(|_| format!("bad alternatives '{value}'"))?
                }
                "--loss" => {
                    s.loss_pct = value.parse().map_err(|_| format!("bad loss '{value}'"))?
                }
                "--drift" => s.drift = value.parse().map_err(|_| format!("bad drift '{value}'"))?,
                "--storm" => s.storms.push(Storm {
                    revoke: value.parse().map_err(|_| format!("bad storm '{value}'"))?,
                }),
                "--churn" => {
                    let (kind, idx) = value
                        .split_once(':')
                        .ok_or_else(|| format!("--churn takes kind:index, got '{value}'"))?;
                    let idx: usize = idx.parse().map_err(|_| format!("bad churn '{value}'"))?;
                    s.churn.push(match kind {
                        "replace" => Churn::Replace { role: idx },
                        "renew" => Churn::Renew { member: idx },
                        other => return Err(format!("unknown churn kind '{other}'")),
                    });
                }
                "--partition" => {
                    let (start_pct, len_ms) = parse_pair(value, "--partition")?;
                    s.partitions.push(Window { start_pct, len_ms });
                }
                "--crash" => {
                    let (start_pct, len_ms) = parse_pair(value, "--crash")?;
                    s.crashes.push(Window { start_pct, len_ms });
                }
                "--mana" => {
                    let (capacity_milli, refill_milli) = parse_pair(value, "--mana")?;
                    s.mana = Some(ManaClause {
                        capacity_milli,
                        refill_milli,
                    });
                }
                other => return Err(format!("unknown scenario flag '{other}'")),
            }
            i += 2;
        }
        if s.parties == 0 || s.depth == 0 || s.alternatives == 0 {
            return Err("parties, depth, and alternatives must be ≥ 1".into());
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for seed in 0..200 {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
        // And seeds actually vary the shape.
        let distinct: std::collections::BTreeSet<String> = (0..50)
            .map(|seed| format!("{:?}", Scenario::generate(seed)))
            .collect();
        assert!(
            distinct.len() > 20,
            "only {} distinct shapes",
            distinct.len()
        );
    }

    #[test]
    fn repro_args_round_trip() {
        for seed in 0..300 {
            let s = Scenario::generate(seed);
            let back = Scenario::from_args(&s.repro_args()).expect("parse own args");
            assert_eq!(s, back, "seed {seed}");
        }
    }

    #[test]
    fn fault_clause_accounting() {
        let mut s = Scenario::minimal(1);
        assert_eq!(s.fault_clauses(), 0);
        assert!(!s.serial_only());
        s.loss_pct = 5;
        assert_eq!(s.fault_clauses(), 1);
        assert!(!s.serial_only(), "loss alone is parallel-deterministic");
        s.mana = Some(ManaClause {
            capacity_milli: 1_000,
            refill_milli: 500,
        });
        assert_eq!(s.fault_clauses(), 2);
        assert!(s.serial_only(), "gate bucket state is order-dependent");
        s.crashes.push(Window {
            start_pct: 40,
            len_ms: 300,
        });
        assert_eq!(s.fault_clauses(), 3);
        assert!(s.serial_only());
    }

    #[test]
    fn bad_args_are_rejected() {
        let bad = |v: &[&str]| {
            Scenario::from_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
                .expect_err("must reject")
        };
        bad(&["--seed"]);
        bad(&["--nope", "1"]);
        bad(&["--churn", "evict:0"]);
        bad(&["--partition", "40"]);
        bad(&["--parties", "0"]);
    }
}
