//! Executing one scenario: compile it to a fault plan, drive the full VO
//! lifecycle through the transport-backed formation drivers, and check
//! the four lifecycle properties on the result.
//!
//! The properties (DESIGN §8):
//!
//! * **P1 — no certificate without a completed TN**: a successful run
//!   fills every contract role exactly once, every membership
//!   certificate has a distinct serial, and the driver reports at least
//!   one completed negotiation per admitted member. Revocation storms
//!   must take effect: a revoked certificate never verifies, an intact
//!   one always does.
//! * **P2 — drive equivalence**: the same scenario re-run is
//!   byte-identical (outcome and journal), and — when no clause is
//!   order-dependent — the parallel driver replays the serial outcome.
//! * **P3 — kill-anywhere recovery**: truncating the run's journal at
//!   any byte and restoring yields exactly the state at the last clean
//!   record boundary.
//! * **P4 — honest refusals**: every typed refusal carries a
//!   `retry_after_us` hint, and no retry of the same logical call
//!   arrives before the hinted time.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;
use trust_vo_admission::{AdmissionGate, ManaConfig, ManaLedger};
use trust_vo_credential::RevocationList;
use trust_vo_journal::Journal;
use trust_vo_negotiation::Strategy;
use trust_vo_netsim::rng::{hash_str, mix, SplitMix64};
use trust_vo_netsim::{FaultPlan, NetSim};
use trust_vo_obs::Collector;
use trust_vo_soa::simclock::{CostModel, SimClock, SimDuration};
use trust_vo_soa::{Envelope, Fault, ResumePolicy, RetryPolicy, ServiceBus, TnService, Transport};
use trust_vo_store::Database;
use trust_vo_vo::dissolution::dissolve;
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::operation::{renew_membership, replace_member, verify_membership};
use trust_vo_vo::{
    form_vo_resilient_admitted, form_vo_resilient_parallel_admitted, register_formation_parties,
    AdmissionControl, ReputationLedger,
};

use crate::dsl::{Churn, Scenario};
use crate::world::{build_world, run_drift, ScenarioWorld};

/// Workers used by the parallel-equivalence leg.
pub const WORKERS: usize = 4;

/// How the formation is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The serial resilient driver — sound under every fault clause.
    Serial,
    /// The parallel resilient driver with [`WORKERS`] workers.
    Parallel,
}

/// A violated lifecycle property, with enough detail to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The property that failed (stable identifier, e.g. `"journal-recovery"`).
    pub property: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl Failure {
    fn new(property: &str, detail: impl Into<String>) -> Self {
        Failure {
            property: property.to_owned(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.property, self.detail)
    }
}

/// What a successful formation produced and what the operation phase did
/// with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formed {
    /// `(provider, role, certificate serial)` per member, contract order.
    pub members: Vec<(String, String, u64)>,
    /// Negotiations completed through the service.
    pub negotiations: u64,
    /// Transport-level call retries.
    pub retries: u64,
    /// Sessions resumed from a durable checkpoint.
    pub resumes: u64,
    /// Sessions restarted from phase 1.
    pub restarts: u64,
    /// Certificates revoked by storm clauses.
    pub revoked: usize,
    /// Revoked certificates that *still verified* (must be 0).
    pub revoked_still_valid: usize,
    /// Intact certificates that *failed* verification (must be 0).
    pub intact_invalid: usize,
    /// One line per churn operation and how it went.
    pub churn: Vec<String>,
    /// Members released by dissolution.
    pub released: usize,
}

/// Everything about one run that determinism must preserve. `PartialEq`
/// over this struct *is* the replay/parallel-equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Paraphrased ontology lookups that resolved in the drift stage.
    pub mapped: usize,
    /// The formation result: members + recovery counters, or the
    /// formation error. A failed formation under a harsh plan is a
    /// legitimate *outcome*, not a property violation — but it must fail
    /// the same way on every drive.
    pub formed: Result<Formed, String>,
    /// Total simulated time burned by the run.
    pub elapsed_us: u64,
    /// Messages the fault injector delivered.
    pub delivered: u64,
    /// Messages it dropped.
    pub drops: u64,
    /// Duplicate deliveries it injected.
    pub dups: u64,
    /// Duplicates absorbed by receiver-side dedup.
    pub dedup_replays: u64,
    /// Crash outages that wiped service state.
    pub crashes: u64,
    /// Calls refused because the service was partitioned off.
    pub partitioned: u64,
    /// Calls refused at the gate or shed under overload.
    pub refusals: u64,
    /// Sessions the TN service resumed from a checkpoint.
    pub service_resumed: u64,
}

impl Outcome {
    /// A stable one-scenario summary, pinned byte-for-byte by the
    /// `scenario_lifecycle` corpus test.
    pub fn summary(&self) -> String {
        format!("{self:?}")
    }
}

/// One observed transport call (the probe's log record).
#[derive(Debug, Clone)]
struct CallRecord {
    key: Option<u64>,
    /// Sim-elapsed immediately before the call was issued.
    at_us: u64,
    /// `Some(hint)` when the call was refused with a typed
    /// budget-exhausted/overloaded fault carrying that retry-after hint;
    /// `Some(None)` when the refusal carried *no* hint (a P4 violation).
    refused: Option<Option<u64>>,
}

/// A transport shim that records every call (time, idempotency key,
/// refusal hint) on its way through the fault injector.
struct Probe<'a> {
    net: &'a NetSim,
    log: Mutex<Vec<CallRecord>>,
}

impl Transport for Probe<'_> {
    fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
        let at_us = self.net.clock().elapsed().0;
        let result = self.net.call(service, request);
        let refused = match &result {
            Err(f) if f.is_budget_exhausted() || f.is_overloaded() => Some(f.retry_after_us),
            _ => None,
        };
        self.log.lock().push(CallRecord {
            key: request.idempotency_key,
            at_us,
            refused,
        });
        result
    }

    fn clock(&self) -> &SimClock {
        self.net.clock()
    }
}

/// A full run's observables: the deterministic [`Outcome`] plus the raw
/// journal and call log the property checks consume.
pub struct RunResult {
    /// The deterministic outcome.
    pub outcome: Outcome,
    /// The TN database's journal bytes at end of run.
    pub journal: Vec<u8>,
    /// The live database's state digest at end of run.
    pub live_digest: u64,
    /// Every transport call, in issue order (serial drive only: the
    /// parallel log interleaves and is not used for checks).
    calls: Vec<CallRecord>,
}

/// A paper-cost clock anchored at the scenario epoch.
fn paper_clock() -> SimClock {
    SimClock::new(CostModel::paper_testbed(), crate::world::epoch())
}

/// Measure a clean serial formation of this scenario's world (no faults,
/// no gate) — the time base partition/crash windows anchor to.
fn probe_elapsed(s: &Scenario) -> SimDuration {
    let clean = Scenario {
        loss_pct: 0,
        partitions: Vec::new(),
        crashes: Vec::new(),
        mana: None,
        ..s.clone()
    };
    let result = run_scenario(&clean, Mode::Serial, SimDuration::ZERO, None);
    SimDuration(result.outcome.elapsed_us)
}

/// Compile the scenario's fault clauses into a netsim [`FaultPlan`],
/// anchoring windows to `base` (the fault-free formation time).
pub fn compile_plan(s: &Scenario, base: SimDuration) -> FaultPlan {
    let mut plan = if s.loss_pct == 0 {
        FaultPlan::reliable(s.seed)
    } else {
        FaultPlan::lossy(s.seed, f64::from(s.loss_pct) / 100.0)
    };
    let at_pct = |pct: u32| SimDuration((base.0 as u128 * u128::from(pct) / 100) as u64);
    for (i, w) in s.partitions.iter().enumerate() {
        let start = at_pct(w.start_pct);
        plan = plan.partition(
            format!("split{i}"),
            vec!["tn".to_owned()],
            start,
            start + SimDuration::from_millis(u64::from(w.len_ms)),
        );
    }
    for w in &s.crashes {
        let start = at_pct(w.start_pct);
        plan = plan.outage(
            "tn",
            start,
            start + SimDuration::from_millis(u64::from(w.len_ms)),
            true,
        );
    }
    plan
}

/// Execute the scenario once. Pure in the scenario value: same scenario
/// and mode ⇒ identical [`RunResult`] (that's property P2, checked by
/// [`check_scenario`] rather than assumed).
///
/// `window_base` anchors partition/crash windows; pass the fault-free
/// formation time measured on a clean serial run (or `ZERO` when there
/// are none).
/// `obs` optionally attaches a collector to the run's clock.
pub fn run_scenario(
    s: &Scenario,
    mode: Mode,
    window_base: SimDuration,
    obs: Option<&Collector>,
) -> RunResult {
    let mapped = run_drift(s.drift);

    let mut world = build_world(s);
    let clock = paper_clock();
    if let Some(collector) = obs {
        clock.attach_obs(collector);
    }
    let bus = ServiceBus::new(clock.clone());
    let journal = Arc::new(Journal::in_memory());
    let db = Database::new();
    db.attach_journal(Arc::clone(&journal));
    let svc = Arc::new(TnService::new(clock.clone(), db));
    register_formation_parties(&svc, &world.contract, &world.initiator, &world.providers);
    bus.register("tn", svc.clone());
    if let Some(m) = &s.mana {
        let ledger = Arc::new(ManaLedger::new(ManaConfig {
            capacity: f64::from(m.capacity_milli) / 1_000.0,
            refill_per_sec: f64::from(m.refill_milli) / 1_000.0,
            cost_per_call: 1.0,
        }));
        bus.set_gate(Arc::new(AdmissionGate::new(ledger, clock.clone())));
    }
    let net = NetSim::new(bus, compile_plan(s, window_base));
    let probe = Probe {
        net: &net,
        log: Mutex::new(Vec::new()),
    };

    let mut mailboxes = MailboxSystem::new();
    let mut reputation = ReputationLedger::new();
    let admission = AdmissionControl::default();
    let retry = RetryPolicy::standard();
    let resume = ResumePolicy::standard();
    let formed = match mode {
        Mode::Serial => form_vo_resilient_admitted(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &probe,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            s.seed,
            &admission,
        ),
        Mode::Parallel => form_vo_resilient_parallel_admitted(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &probe,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            s.seed,
            WORKERS,
            &admission,
        ),
    };

    let formed = match formed {
        Err(e) => Err(e.to_string()),
        Ok((mut vo, stats)) => {
            // The roster as admitted, before churn mutates it — what P1
            // audits against the completed-negotiation count.
            let members = stats_members(&vo);
            // Operation phase: storms, churn, dissolution — all in-process
            // (the paper's toolkit GUI flow), on the same sim clock. The
            // standby providers come online now: they declined formation
            // invitations (see `world.rs`) but serve `Replace` churn.
            for i in 0..s.parties {
                if let Some(spare) = world.providers.get_mut(&ScenarioWorld::spare(i)) {
                    spare.accepts_invitations = true;
                }
            }
            let mut crl = RevocationList::new();
            let mut revoked = 0usize;
            let mut revoked_set: BTreeSet<String> = BTreeSet::new();
            for storm in &s.storms {
                let n = storm.revoke.min(vo.members().len());
                for m in &vo.members()[..n] {
                    crl.revoke(m.certificate.revocation_id(), clock.timestamp());
                    revoked_set.insert(m.provider.clone());
                    revoked += 1;
                }
            }
            let mut revoked_still_valid = 0usize;
            let mut intact_invalid = 0usize;
            for m in vo.members() {
                let ok = verify_membership(&vo, m, clock.timestamp(), &crl).is_ok();
                match (revoked_set.contains(&m.provider), ok) {
                    (true, true) => revoked_still_valid += 1,
                    (false, false) => intact_invalid += 1,
                    _ => {}
                }
            }

            let mut churn_log = Vec::new();
            for op in &s.churn {
                let line = match *op {
                    Churn::Replace { role } => {
                        let role = ScenarioWorld::role(role % s.parties);
                        match replace_member(
                            &mut vo,
                            &world.initiator,
                            &world.providers,
                            &world.registry,
                            &role,
                            &mut crl,
                            &mut mailboxes,
                            &mut reputation,
                            &clock,
                            Strategy::Standard,
                        ) {
                            Ok(r) => format!(
                                "replace {role} -> {} serial={}",
                                r.provider, r.certificate.serial
                            ),
                            Err(e) => format!("replace {role} !{e}"),
                        }
                    }
                    Churn::Renew { member } => {
                        if vo.members().is_empty() {
                            "renew !no members".to_owned()
                        } else {
                            let name = vo.members()[member % vo.members().len()].provider.clone();
                            match renew_membership(
                                &mut vo,
                                &world.initiator,
                                &world.providers,
                                &name,
                                &mut mailboxes,
                                &mut reputation,
                                &clock,
                                Strategy::Standard,
                            ) {
                                Ok(r) => {
                                    format!("renew {name} serial={}", r.certificate.serial)
                                }
                                Err(e) => format!("renew {name} !{e}"),
                            }
                        }
                    }
                };
                churn_log.push(line);
            }

            let released = match dissolve(&mut vo, &mut crl, &clock) {
                Ok(report) => report.members_released.len(),
                Err(_) => 0,
            };

            Ok(Formed {
                members,
                negotiations: stats.negotiations,
                retries: stats.retries,
                resumes: stats.resumes,
                restarts: stats.restarts,
                revoked,
                revoked_still_valid,
                intact_invalid,
                churn: churn_log,
                released,
            })
        }
    };

    let calls = probe.log.into_inner();
    let refusals = calls.iter().filter(|c| c.refused.is_some()).count() as u64;
    let metrics = net.metrics();
    RunResult {
        outcome: Outcome {
            mapped,
            formed,
            elapsed_us: net.clock().elapsed().0,
            delivered: metrics.delivered.get(),
            drops: metrics.drops.get(),
            dups: metrics.dups.get(),
            dedup_replays: metrics.dedup_replays.get(),
            crashes: metrics.crashes.get(),
            partitioned: metrics.partitioned.get(),
            refusals,
            service_resumed: svc.resumed_count(),
        },
        journal: journal.bytes(),
        live_digest: svc.database().state_digest(),
        calls,
    }
}

fn stats_members(vo: &trust_vo_vo::FormedVo) -> Vec<(String, String, u64)> {
    vo.members()
        .iter()
        .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
        .collect()
}

/// P3: truncate the journal at `cuts` seeded byte offsets (plus the full
/// length) and require every restore to land exactly on the last clean
/// record boundary's state.
fn check_journal_recovery(seed: u64, journal: &[u8], live_digest: u64) -> Result<(), Failure> {
    let restore_digest = |bytes: &[u8]| {
        let db = Database::new();
        db.restore_from_journal(&Journal::from_bytes(bytes.to_vec()));
        db.state_digest()
    };
    if restore_digest(journal) != live_digest {
        return Err(Failure::new(
            "journal-recovery",
            "full-journal restore diverges from the live database state",
        ));
    }
    let mut rng = SplitMix64::new(mix(&[seed, hash_str("scenario.cuts")]));
    for _ in 0..3 {
        let cut = rng.in_range(0, journal.len() as u64) as usize;
        let replay = Journal::replay_bytes(&journal[..cut]);
        let clean = replay.clean_len as usize;
        let cut_digest = restore_digest(&journal[..cut]);
        let clean_digest = restore_digest(&journal[..clean]);
        if cut_digest != clean_digest {
            return Err(Failure::new(
                "journal-recovery",
                format!(
                    "kill at byte {cut}/{} restored digest {cut_digest:#x}, but the last \
                     clean boundary ({clean}) restores {clean_digest:#x}",
                    journal.len()
                ),
            ));
        }
    }
    Ok(())
}

/// P4: every typed refusal carries a hint, and no same-key retry arrives
/// before refusal time + hint.
fn check_retry_after(calls: &[CallRecord]) -> Result<(), Failure> {
    for (i, call) in calls.iter().enumerate() {
        let Some(hint) = call.refused else { continue };
        let Some(hint) = hint else {
            return Err(Failure::new(
                "retry-after",
                format!("refusal at {}µs carries no retry_after_us hint", call.at_us),
            ));
        };
        let Some(key) = call.key else { continue };
        // Saturate: a `u64::MAX` hint means "never retry this call".
        let earliest = call.at_us.saturating_add(hint);
        if let Some(next) = calls[i + 1..].iter().find(|c| c.key == Some(key)) {
            if next.at_us < earliest {
                return Err(Failure::new(
                    "retry-after",
                    format!(
                        "call {key:#x} refused at {}µs with retry_after {hint}µs was \
                         retried early at {}µs",
                        call.at_us, next.at_us
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// P1: membership ⇔ completed TN, plus storm efficacy.
fn check_membership(s: &Scenario, formed: &Formed) -> Result<(), Failure> {
    if formed.members.len() != s.parties {
        return Err(Failure::new(
            "cert-without-tn",
            format!(
                "formation succeeded with {}/{} roles filled",
                formed.members.len(),
                s.parties
            ),
        ));
    }
    let serials: BTreeSet<u64> = formed
        .members
        .iter()
        .map(|(_, _, serial)| *serial)
        .collect();
    if serials.len() != formed.members.len() {
        return Err(Failure::new(
            "cert-without-tn",
            "duplicate certificate serials across members",
        ));
    }
    if formed.negotiations < formed.members.len() as u64 {
        return Err(Failure::new(
            "cert-without-tn",
            format!(
                "{} membership certificates but only {} completed negotiations",
                formed.members.len(),
                formed.negotiations
            ),
        ));
    }
    if formed.revoked_still_valid > 0 || formed.intact_invalid > 0 {
        return Err(Failure::new(
            "revocation",
            format!(
                "{} revoked certificates still verify, {} intact certificates fail",
                formed.revoked_still_valid, formed.intact_invalid
            ),
        ));
    }
    Ok(())
}

/// Run the scenario every way it supports and check all four lifecycle
/// properties. `Ok` carries the serial outcome (for corpora and reports).
pub fn check_scenario(s: &Scenario) -> Result<Outcome, Failure> {
    check_scenario_canary(s, false)
}

/// [`check_scenario`] with an optional *canary* property that demands the
/// formation FAIL — deliberately violated by any healthy scenario, so ci
/// can prove the shrinker minimizes a real failing seed.
pub fn check_scenario_canary(s: &Scenario, canary: bool) -> Result<Outcome, Failure> {
    let base = if s.partitions.is_empty() && s.crashes.is_empty() {
        SimDuration::ZERO
    } else {
        probe_elapsed(s)
    };

    let serial = run_scenario(s, Mode::Serial, base, None);

    // P2a: re-running the same scenario is byte-identical.
    let replay = run_scenario(s, Mode::Serial, base, None);
    if serial.outcome != replay.outcome {
        return Err(Failure::new(
            "replay-equivalence",
            format!(
                "same scenario, different outcome:\n  first:  {:?}\n  second: {:?}",
                serial.outcome, replay.outcome
            ),
        ));
    }
    if serial.journal != replay.journal {
        return Err(Failure::new(
            "replay-equivalence",
            "same scenario produced different journal bytes",
        ));
    }

    // P2b: the parallel driver replays the serial outcome (only sound
    // when no clause is call-order-dependent).
    if !s.serial_only() {
        let parallel = run_scenario(s, Mode::Parallel, base, None);
        if parallel.outcome != serial.outcome {
            return Err(Failure::new(
                "parallel-equivalence",
                format!(
                    "parallel drive diverged:\n  serial:   {:?}\n  parallel: {:?}",
                    serial.outcome, parallel.outcome
                ),
            ));
        }
    }

    // P1 on successful formations (a failed formation under a harsh plan
    // is a legitimate outcome; P2/P3/P4 still had to hold for it).
    if let Ok(formed) = &serial.outcome.formed {
        check_membership(s, formed)?;
    }

    // P3: kill-anywhere journal recovery.
    check_journal_recovery(s.seed, &serial.journal, serial.live_digest)?;

    // P4: refusal hints are present and honored.
    check_retry_after(&serial.calls)?;

    if canary && serial.outcome.formed.is_ok() {
        return Err(Failure::new(
            "canary",
            "formation succeeded but the canary property demands failure",
        ));
    }

    Ok(serial.outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{ManaClause, Storm, Window};

    #[test]
    fn minimal_scenario_passes_all_properties() {
        let outcome = check_scenario(&Scenario::minimal(7)).expect("clean scenario passes");
        let formed = outcome.formed.expect("forms");
        assert_eq!(formed.members.len(), 1);
        assert_eq!(formed.released, 1, "dissolution releases the member");
    }

    #[test]
    fn lossy_scenario_retries_and_still_passes() {
        let s = Scenario {
            parties: 2,
            loss_pct: 20,
            ..Scenario::minimal(11)
        };
        let outcome = check_scenario(&s).expect("lossy scenario passes");
        assert!(outcome.drops > 0, "20% loss must drop something");
        let formed = outcome.formed.expect("forms through retries");
        assert!(formed.retries > 0, "drops must surface as retries");
    }

    #[test]
    fn storm_revokes_and_churn_replaces() {
        let s = Scenario {
            parties: 2,
            storms: vec![Storm { revoke: 1 }],
            churn: vec![Churn::Replace { role: 1 }, Churn::Renew { member: 0 }],
            ..Scenario::minimal(13)
        };
        let outcome = check_scenario(&s).expect("storm+churn scenario passes");
        let formed = outcome.formed.expect("forms");
        assert_eq!(formed.revoked, 1);
        assert_eq!(formed.revoked_still_valid, 0);
        assert!(
            formed.churn[0].contains("-> Spare001"),
            "replacement must land on the spare: {}",
            formed.churn[0]
        );
        assert!(formed.churn[1].starts_with("renew "), "{}", formed.churn[1]);
    }

    #[test]
    fn crash_window_forces_recovery_and_replays() {
        let s = Scenario {
            parties: 3,
            depth: 2,
            loss_pct: 20,
            crashes: vec![Window {
                start_pct: 40,
                len_ms: 900,
            }],
            ..Scenario::minimal(17)
        };
        let outcome = check_scenario(&s).expect("crash scenario passes");
        assert!(outcome.crashes > 0, "the outage must actually crash");
        let formed = outcome.formed.expect("formation rides out the crash");
        assert!(
            formed.resumes + formed.restarts > 0,
            "wiped sessions must recover (resumes {}, restarts {})",
            formed.resumes,
            formed.restarts
        );
    }

    #[test]
    fn uncoverable_mana_cost_refuses_and_fails_formation() {
        // Capacity 0.5 < the 1-token call cost: the gate refuses every
        // start with a `u64::MAX` hint, the client fails fast, and the
        // formation aborts — a legitimate outcome every property still
        // holds on.
        let s = Scenario {
            parties: 3,
            mana: Some(ManaClause {
                capacity_milli: 500,
                refill_milli: 700,
            }),
            ..Scenario::minimal(19)
        };
        let outcome = check_scenario(&s).expect("gated scenario passes");
        assert!(outcome.refusals > 0, "an uncoverable cost must refuse");
        assert!(outcome.formed.is_err(), "no start admitted ⇒ no formation");
    }

    #[test]
    fn canary_flags_healthy_scenarios() {
        let err = check_scenario_canary(&Scenario::minimal(23), true)
            .expect_err("canary must fire on a forming scenario");
        assert_eq!(err.property, "canary");
    }
}
