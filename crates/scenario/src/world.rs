//! Compiling a [`Scenario`] into a concrete VO
//! world: contract, initiator, candidate providers, and registry.
//!
//! The shape follows the E10 batch-admission workload (one contract role
//! per applicant, each guarded by an interlocking disclosure-policy
//! chain), with one addition the lifecycle script needs: every role also
//! has a *spare* provider published at lower advertised quality, so the
//! `Replace` churn operation — which excludes the removed member from the
//! candidate list — always has somewhere to go.

use std::collections::BTreeMap;

use trust_vo_credential::{
    Attribute, CredentialAuthority, Sensitivity, TimeRange, Timestamp, XProfile,
};
use trust_vo_crypto::KeyPair;
use trust_vo_negotiation::Party;
use trust_vo_ontology::mapping::map_concept;
use trust_vo_ontology::{Concept, Ontology};
use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
use trust_vo_vo::{Contract, ResourceDescription, Role, ServiceProvider, ServiceRegistry};

use crate::dsl::Scenario;

/// The wall-clock instant every scenario runs at (the repo-wide scenario
/// epoch, so credentials issued here are valid on every workload clock).
pub fn epoch() -> Timestamp {
    trust_vo_vo::scenario::scenario_time()
}

/// Everything a scenario run drives: the contract, the initiator, every
/// candidate (primaries and spares), and the registry they advertise in.
pub struct ScenarioWorld {
    /// The contract: `Role000..`, one per party.
    pub contract: Contract,
    /// The VO Initiator, holding the controller half of every chain.
    pub initiator: ServiceProvider,
    /// Primary applicants `P000..` plus spares `Spare000..`, keyed by name.
    pub providers: BTreeMap<String, ServiceProvider>,
    /// Registry advertising primary (quality 0.9) and spare (0.8)
    /// capabilities.
    pub registry: ServiceRegistry,
}

impl ScenarioWorld {
    /// The primary applicant name for role index `i`.
    pub fn primary(i: usize) -> String {
        format!("P{i:03}")
    }

    /// The spare provider name for role index `i`.
    pub fn spare(i: usize) -> String {
        format!("Spare{i:03}")
    }

    /// The contract role name for index `i`.
    pub fn role(i: usize) -> String {
        format!("Role{i:03}")
    }
}

/// Issue a party's half of the interlocking chain (even levels belong to
/// applicants, odd levels to the initiator — the E4/E10 convention).
fn add_chain_half(
    party: &mut Party,
    ca: &mut CredentialAuthority,
    window: TimeRange,
    depth: usize,
    alternatives: usize,
    applicant_side: bool,
) {
    let app_type = |level: usize| format!("AppL{level}");
    let init_type = |level: usize| format!("InitL{level}");
    let type_name = |level: usize| {
        if level.is_multiple_of(2) {
            app_type(level)
        } else {
            init_type(level)
        }
    };
    let start = usize::from(!applicant_side);
    let own_type = |level: usize| {
        if applicant_side {
            app_type(level)
        } else {
            init_type(level)
        }
    };
    let prefix = if applicant_side { "ap" } else { "ip" };
    for level in (start..depth).step_by(2) {
        let cred = ca
            .issue(
                &own_type(level),
                &party.name.clone(),
                party.keys.public,
                vec![Attribute::new("Level", level as i64)],
                window,
            )
            .expect("open schema");
        party.profile.add(cred);
        let resource = Resource::credential(own_type(level));
        if level + 1 < depth {
            for alt in 0..alternatives.saturating_sub(1) {
                party.policies.add(DisclosurePolicy::rule(
                    format!("{prefix}{level}-fail{alt}"),
                    resource.clone(),
                    vec![Term::of_type(format!("Missing{prefix}{level}x{alt}"))],
                ));
            }
            party.policies.add(DisclosurePolicy::rule(
                format!("{prefix}{level}-real"),
                resource.clone(),
                vec![Term::of_type(type_name(level + 1))],
            ));
        } else {
            party.policies.add(DisclosurePolicy::deliv(
                format!("{prefix}{level}-deliv"),
                resource,
            ));
        }
    }
}

/// Build the world a scenario runs in — a pure function of the
/// scenario's `(parties, depth, alternatives)` shape.
pub fn build_world(s: &Scenario) -> ScenarioWorld {
    let mut ca = CredentialAuthority::new("ScenarioCA");
    let window = TimeRange::one_year_from(epoch());
    let mut initiator = Party::new("ScenarioInitiator");
    initiator.trust_root(ca.public_key());
    add_chain_half(
        &mut initiator,
        &mut ca,
        window,
        s.depth,
        s.alternatives,
        false,
    );

    let mut contract = Contract::new("ScenarioVo", "generated lifecycle scenario");
    let mut providers = BTreeMap::new();
    let mut registry = ServiceRegistry::new();
    for i in 0..s.parties {
        let role_name = ScenarioWorld::role(i);
        let capability = format!("cap{i:03}");
        contract = contract.with_role(Role::new(&role_name, &capability, "scenario admission"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            format!("vo-a{i}"),
            Resource::service("VoMembership"),
            vec![Term::of_type("AppL0")],
        ));
        contract.set_role_policies(&role_name, policies);
        // Primary at quality 0.9, spare at 0.8. Spares *decline*
        // invitations: they exist for `Replace` churn (the runner flips
        // them to accepting once the operation phase starts), and a
        // declining candidate is the only shape that keeps serial and
        // parallel formation wire-identical — the parallel driver
        // speculates one negotiation per *accepting* candidate, so a
        // standby that negotiates would burn wire traffic the serial
        // driver never issues.
        for (name, quality, standby) in [
            (ScenarioWorld::primary(i), 0.9, false),
            (ScenarioWorld::spare(i), 0.8, true),
        ] {
            let mut party = Party::new(&name);
            party.trust_root(ca.public_key());
            add_chain_half(&mut party, &mut ca, window, s.depth, s.alternatives, true);
            registry.publish(ResourceDescription::new(&name, &capability, "x", quality));
            let provider = ServiceProvider::new(party);
            providers.insert(
                name,
                if standby {
                    provider.declining()
                } else {
                    provider
                },
            );
        }
    }

    ScenarioWorld {
        contract,
        initiator: ServiceProvider::new(initiator),
        providers,
        registry,
    }
}

/// The ontology-drift stage: `n` concept lookups, every one paraphrased
/// (underscore + reordering) so only similarity mapping resolves it.
/// Returns how many mapped — recorded in the outcome, so a regression in
/// the similarity engine shows up as a scenario-outcome divergence.
pub fn run_drift(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut ontology = Ontology::new();
    let mut ca = CredentialAuthority::new("DriftCA");
    let window = TimeRange::one_year_from(epoch());
    let keys = KeyPair::from_seed(b"scenario-drift-holder");
    let mut profile = XProfile::new("drift-holder");
    for i in 0..n {
        let cred_type = format!("DriftType{i}");
        ontology.add(
            Concept::new(format!("Drift{i}Quality"))
                .keyword(format!("domain{}", i % 3))
                .implemented_by(&format!("{cred_type}.Attr{i}")),
        );
        let cred = ca
            .issue(
                &cred_type,
                "drift-holder",
                keys.public,
                vec![Attribute::new(format!("Attr{i}"), i as i64)],
                window,
            )
            .expect("open schema");
        profile.add_with_sensitivity(cred, Sensitivity::Low);
    }
    (0..n)
        .filter(|i| map_concept(&ontology, &profile, &format!("Quality_Drift{i}"), 0.2).is_mapped())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_negotiation::Strategy;

    #[test]
    fn world_forms_and_spares_stay_on_the_bench() {
        let s = Scenario {
            parties: 2,
            depth: 2,
            alternatives: 2,
            ..Scenario::minimal(3)
        };
        let w = build_world(&s);
        let clock = trust_vo_soa::simclock::SimClock::new(
            trust_vo_soa::simclock::CostModel::free(),
            epoch(),
        );
        let vo = trust_vo_vo::form_vo(
            w.contract,
            &w.initiator,
            &w.providers,
            &w.registry,
            &mut trust_vo_vo::mailbox::MailboxSystem::new(),
            &mut trust_vo_vo::ReputationLedger::new(),
            &clock,
            Strategy::Standard,
        )
        .expect("scenario world forms");
        assert_eq!(vo.members().len(), 2);
        for i in 0..2 {
            assert!(vo.is_member(&ScenarioWorld::primary(i)), "primary {i} wins");
            assert!(!vo.is_member(&ScenarioWorld::spare(i)), "spare {i} benched");
        }
    }

    #[test]
    fn drift_lookups_resolve_by_similarity() {
        assert_eq!(run_drift(0), 0);
        let mapped = run_drift(4);
        assert!(mapped >= 3, "only {mapped}/4 paraphrased lookups mapped");
    }
}
