//! Journal facts: the logical operations the journal makes durable.
//!
//! Facts are deliberately domain-light — collections and documents are
//! named by strings and documents travel as serialized XML — so the
//! journal crate sits below `store`, `ontology`, and `soa` without
//! depending on any of them.

/// One durable operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fact {
    /// A document insert/update in a named collection (appends one
    /// revision on replay, exactly as the original `put` did).
    Put {
        /// The collection name.
        collection: String,
        /// The document id within the collection.
        id: String,
        /// The document, serialized XML.
        xml: String,
    },
    /// A document tombstone (history retained, as in the live store).
    Delete {
        /// The collection name.
        collection: String,
        /// The document id within the collection.
        id: String,
    },
    /// A resolved concept pair from the mapping memo: `alias` (the
    /// counterpart's name) resolved to the local `canonical` concept —
    /// replayable as the paper's §4.3 dictionary.
    Mapping {
        /// The requested (foreign) concept name.
        alias: String,
        /// The local concept it resolved to.
        canonical: String,
    },
    /// A party's reputation score after one recorded outcome (spilled by
    /// the admission scoring engine). The *resulting* state is journaled,
    /// not the outcome, so replay restores the exact score even if the
    /// scoring configuration changed between runs.
    Reputation {
        /// The party whose score changed.
        party: String,
        /// The new score, as IEEE-754 bits (`f64::to_bits`) so the fact
        /// stays `Eq` and byte-exact across the journal round trip.
        score_bits: u64,
        /// The party's effective event count after this outcome.
        events: u64,
        /// Sim-time of the mutation (µs since the run epoch) — the decay
        /// anchor the restored engine resumes from.
        at_us: u64,
    },
    /// A party's flow-budget bucket level after one mutation (spilled by
    /// the admission mana ledger). Same resulting-state contract as
    /// [`Fact::Reputation`].
    Mana {
        /// The party whose bucket changed.
        party: String,
        /// Remaining micro-tokens (1 token = 10⁶ µtokens), stored as the
        /// IEEE-754 bits (`f64::to_bits`) of the integral count — exact,
        /// since any realistic count is far below 2⁵³.
        tokens_bits: u64,
        /// Sim-time of the mutation (µs since the run epoch) — the
        /// regeneration anchor the restored ledger resumes from.
        at_us: u64,
    },
}

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_MAPPING: u8 = 3;
const TAG_REPUTATION: u8 = 4;
const TAG_MANA: u8 = 5;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let end = pos.checked_add(8)?;
    let v = u64::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len_end = pos.checked_add(4)?;
    let len = u32::from_le_bytes(bytes.get(*pos..len_end)?.try_into().ok()?) as usize;
    let end = len_end.checked_add(len)?;
    let s = std::str::from_utf8(bytes.get(len_end..end)?).ok()?;
    *pos = end;
    Some(s.to_owned())
}

impl Fact {
    /// Append this fact's canonical byte encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Fact::Put {
                collection,
                id,
                xml,
            } => {
                out.push(TAG_PUT);
                put_str(out, collection);
                put_str(out, id);
                put_str(out, xml);
            }
            Fact::Delete { collection, id } => {
                out.push(TAG_DELETE);
                put_str(out, collection);
                put_str(out, id);
            }
            Fact::Mapping { alias, canonical } => {
                out.push(TAG_MAPPING);
                put_str(out, alias);
                put_str(out, canonical);
            }
            Fact::Reputation {
                party,
                score_bits,
                events,
                at_us,
            } => {
                out.push(TAG_REPUTATION);
                put_str(out, party);
                put_u64(out, *score_bits);
                put_u64(out, *events);
                put_u64(out, *at_us);
            }
            Fact::Mana {
                party,
                tokens_bits,
                at_us,
            } => {
                out.push(TAG_MANA);
                put_str(out, party);
                put_u64(out, *tokens_bits);
                put_u64(out, *at_us);
            }
        }
    }

    /// The canonical byte encoding.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode one fact starting at `*pos`, advancing it past the fact.
    /// `None` on any malformed byte — the caller treats the whole record
    /// as corrupt.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<Fact> {
        let tag = *bytes.get(*pos)?;
        *pos += 1;
        match tag {
            TAG_PUT => Some(Fact::Put {
                collection: get_str(bytes, pos)?,
                id: get_str(bytes, pos)?,
                xml: get_str(bytes, pos)?,
            }),
            TAG_DELETE => Some(Fact::Delete {
                collection: get_str(bytes, pos)?,
                id: get_str(bytes, pos)?,
            }),
            TAG_MAPPING => Some(Fact::Mapping {
                alias: get_str(bytes, pos)?,
                canonical: get_str(bytes, pos)?,
            }),
            TAG_REPUTATION => Some(Fact::Reputation {
                party: get_str(bytes, pos)?,
                score_bits: get_u64(bytes, pos)?,
                events: get_u64(bytes, pos)?,
                at_us: get_u64(bytes, pos)?,
            }),
            TAG_MANA => Some(Fact::Mana {
                party: get_str(bytes, pos)?,
                tokens_bits: get_u64(bytes, pos)?,
                at_us: get_u64(bytes, pos)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(fact: &Fact) {
        let enc = fact.encoded();
        let mut pos = 0;
        let back = Fact::decode(&enc, &mut pos).expect("decodes");
        assert_eq!(&back, fact);
        assert_eq!(pos, enc.len(), "decode consumes the whole encoding");
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(&Fact::Put {
            collection: "profiles".into(),
            id: "Aerospace".into(),
            xml: "<profile owner=\"Aerospace\"/>".into(),
        });
        roundtrip(&Fact::Delete {
            collection: "checkpoints".into(),
            id: "7".into(),
        });
        roundtrip(&Fact::Mapping {
            alias: "Bilancio".into(),
            canonical: "BalanceSheet".into(),
        });
        roundtrip(&Fact::Put {
            collection: String::new(),
            id: String::new(),
            xml: String::new(),
        });
        roundtrip(&Fact::Reputation {
            party: "Flooder Inc".into(),
            score_bits: 0.35_f64.to_bits(),
            events: 7,
            at_us: 1_234_567,
        });
        roundtrip(&Fact::Mana {
            party: "HPC-A".into(),
            tokens_bits: 2.5_f64.to_bits(),
            at_us: 42,
        });
    }

    #[test]
    fn score_bits_round_trip_exactly() {
        // f64 travels as raw bits, so even non-representable-in-decimal
        // and negative-zero values survive byte-exactly.
        for score in [0.0, -0.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1.0] {
            let fact = Fact::Reputation {
                party: "X".into(),
                score_bits: score.to_bits(),
                events: 0,
                at_us: 0,
            };
            let mut pos = 0;
            let back = Fact::decode(&fact.encoded(), &mut pos).unwrap();
            let Fact::Reputation { score_bits, .. } = back else {
                panic!("wrong variant");
            };
            assert_eq!(score_bits, score.to_bits());
        }
    }

    #[test]
    fn malformed_bytes_rejected() {
        // Unknown tag.
        assert!(Fact::decode(&[9], &mut 0).is_none());
        // Truncated string length.
        assert!(Fact::decode(&[2, 5, 0, 0], &mut 0).is_none());
        // String length past the end.
        assert!(Fact::decode(&[2, 255, 0, 0, 0, b'x'], &mut 0).is_none());
        // Empty input.
        assert!(Fact::decode(&[], &mut 0).is_none());
        // Reputation fact truncated mid-u64.
        let mut trunc = Fact::Reputation {
            party: "X".into(),
            score_bits: 1,
            events: 2,
            at_us: 3,
        }
        .encoded();
        trunc.truncate(trunc.len() - 3);
        assert!(Fact::decode(&trunc, &mut 0).is_none());
        // Mana fact with only the party string.
        assert!(Fact::decode(&[5, 1, 0, 0, 0, b'p'], &mut 0).is_none());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_strings(c in ".{0,40}", i in ".{0,40}", x in ".{0,80}") {
            roundtrip(&Fact::Put { collection: c.clone(), id: i.clone(), xml: x });
            roundtrip(&Fact::Delete { collection: c.clone(), id: i.clone() });
            roundtrip(&Fact::Mapping { alias: c, canonical: i });
        }

        #[test]
        fn roundtrip_arbitrary_admission_facts(
            p in ".{0,40}", a in any::<u64>(), b in any::<u64>(), t in any::<u64>()
        ) {
            roundtrip(&Fact::Reputation {
                party: p.clone(), score_bits: a, events: b, at_us: t,
            });
            roundtrip(&Fact::Mana { party: p, tokens_bits: a, at_us: t });
        }
    }
}
