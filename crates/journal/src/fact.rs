//! Journal facts: the logical operations the journal makes durable.
//!
//! Facts are deliberately domain-light — collections and documents are
//! named by strings and documents travel as serialized XML — so the
//! journal crate sits below `store`, `ontology`, and `soa` without
//! depending on any of them.

/// One durable operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fact {
    /// A document insert/update in a named collection (appends one
    /// revision on replay, exactly as the original `put` did).
    Put {
        /// The collection name.
        collection: String,
        /// The document id within the collection.
        id: String,
        /// The document, serialized XML.
        xml: String,
    },
    /// A document tombstone (history retained, as in the live store).
    Delete {
        /// The collection name.
        collection: String,
        /// The document id within the collection.
        id: String,
    },
    /// A resolved concept pair from the mapping memo: `alias` (the
    /// counterpart's name) resolved to the local `canonical` concept —
    /// replayable as the paper's §4.3 dictionary.
    Mapping {
        /// The requested (foreign) concept name.
        alias: String,
        /// The local concept it resolved to.
        canonical: String,
    },
}

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_MAPPING: u8 = 3;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len_end = pos.checked_add(4)?;
    let len = u32::from_le_bytes(bytes.get(*pos..len_end)?.try_into().ok()?) as usize;
    let end = len_end.checked_add(len)?;
    let s = std::str::from_utf8(bytes.get(len_end..end)?).ok()?;
    *pos = end;
    Some(s.to_owned())
}

impl Fact {
    /// Append this fact's canonical byte encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Fact::Put {
                collection,
                id,
                xml,
            } => {
                out.push(TAG_PUT);
                put_str(out, collection);
                put_str(out, id);
                put_str(out, xml);
            }
            Fact::Delete { collection, id } => {
                out.push(TAG_DELETE);
                put_str(out, collection);
                put_str(out, id);
            }
            Fact::Mapping { alias, canonical } => {
                out.push(TAG_MAPPING);
                put_str(out, alias);
                put_str(out, canonical);
            }
        }
    }

    /// The canonical byte encoding.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode one fact starting at `*pos`, advancing it past the fact.
    /// `None` on any malformed byte — the caller treats the whole record
    /// as corrupt.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<Fact> {
        let tag = *bytes.get(*pos)?;
        *pos += 1;
        match tag {
            TAG_PUT => Some(Fact::Put {
                collection: get_str(bytes, pos)?,
                id: get_str(bytes, pos)?,
                xml: get_str(bytes, pos)?,
            }),
            TAG_DELETE => Some(Fact::Delete {
                collection: get_str(bytes, pos)?,
                id: get_str(bytes, pos)?,
            }),
            TAG_MAPPING => Some(Fact::Mapping {
                alias: get_str(bytes, pos)?,
                canonical: get_str(bytes, pos)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(fact: &Fact) {
        let enc = fact.encoded();
        let mut pos = 0;
        let back = Fact::decode(&enc, &mut pos).expect("decodes");
        assert_eq!(&back, fact);
        assert_eq!(pos, enc.len(), "decode consumes the whole encoding");
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(&Fact::Put {
            collection: "profiles".into(),
            id: "Aerospace".into(),
            xml: "<profile owner=\"Aerospace\"/>".into(),
        });
        roundtrip(&Fact::Delete {
            collection: "checkpoints".into(),
            id: "7".into(),
        });
        roundtrip(&Fact::Mapping {
            alias: "Bilancio".into(),
            canonical: "BalanceSheet".into(),
        });
        roundtrip(&Fact::Put {
            collection: String::new(),
            id: String::new(),
            xml: String::new(),
        });
    }

    #[test]
    fn malformed_bytes_rejected() {
        // Unknown tag.
        assert!(Fact::decode(&[9], &mut 0).is_none());
        // Truncated string length.
        assert!(Fact::decode(&[2, 5, 0, 0], &mut 0).is_none());
        // String length past the end.
        assert!(Fact::decode(&[2, 255, 0, 0, 0, b'x'], &mut 0).is_none());
        // Empty input.
        assert!(Fact::decode(&[], &mut 0).is_none());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_strings(c in ".{0,40}", i in ".{0,40}", x in ".{0,80}") {
            roundtrip(&Fact::Put { collection: c.clone(), id: i.clone(), xml: x });
            roundtrip(&Fact::Delete { collection: c.clone(), id: i.clone() });
            roundtrip(&Fact::Mapping { alias: c, canonical: i });
        }
    }
}
