//! The journal proper: append, replay, snapshot compaction.

use crate::digest::Fnv64;
use crate::fact::Fact;
use crate::frame;
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use trust_vo_obs::{Collector, Counter};

/// Record kind byte: a single fact.
const KIND_FACT: u8 = 0;
/// Record kind byte: a snapshot (compaction baseline) holding many facts.
const KIND_SNAPSHOT: u8 = 1;

#[derive(Debug)]
enum Backend {
    /// Deterministic in-memory log (tests, benches, digest gates).
    Mem(Mutex<Vec<u8>>),
    /// File-backed log. Appends go straight to the file descriptor;
    /// nothing is fsynced — crash durability is the OS's page cache
    /// contract, torn tails are handled by replay.
    File {
        file: Mutex<std::fs::File>,
        path: PathBuf,
    },
}

/// Point-in-time journal counter totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Facts appended (compaction snapshots not included).
    pub appends: u64,
    /// Bytes written, frames included.
    pub bytes_written: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
    /// Records decoded by replays through this handle.
    pub replayed_records: u64,
}

/// An append-only fact journal with snapshot compaction.
///
/// All methods take `&self`; interior locking makes a shared
/// `Arc<Journal>` safe to hand to every producer. Appends are atomic per
/// record: the frame (length + CRC + payload) is pushed under one lock
/// hold, so concurrent producers interleave at record granularity and a
/// reader never observes a half-framed record except as a torn tail.
#[derive(Debug)]
pub struct Journal {
    backend: Backend,
    obs: OnceLock<Collector>,
    appends: Counter,
    bytes_written: Counter,
    compactions: Counter,
    replayed: Counter,
}

/// The outcome of replaying a journal byte stream.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Every replayable fact in order, snapshots expanded in place.
    pub facts: Vec<Fact>,
    /// Physical records decoded (a snapshot counts once).
    pub records: u64,
    /// Byte length of the clean record prefix.
    pub clean_len: u64,
    /// Whether a torn or corrupt tail was discarded.
    pub truncated: bool,
}

impl Replay {
    /// Deterministic digest of the replayed fact stream. Equal fact
    /// streams — regardless of backend or of how the bytes were framed —
    /// give equal digests.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for fact in &self.facts {
            h.write_framed(&fact.encoded());
        }
        h.finish()
    }

    /// [`Replay::digest`] as fixed-width hex, for text gates.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }
}

impl Journal {
    fn with_backend(backend: Backend) -> Self {
        Journal {
            backend,
            obs: OnceLock::new(),
            appends: Counter::new(),
            bytes_written: Counter::new(),
            compactions: Counter::new(),
            replayed: Counter::new(),
        }
    }

    /// A fresh in-memory journal.
    pub fn in_memory() -> Self {
        Self::with_backend(Backend::Mem(Mutex::new(Vec::new())))
    }

    /// An in-memory journal seeded with existing bytes (e.g. the salvaged
    /// content of a crashed process's log).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self::with_backend(Backend::Mem(Mutex::new(bytes)))
    }

    /// Open (or create) a file-backed journal at `path`, appending after
    /// any existing content.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(Self::with_backend(Backend::File {
            file: Mutex::new(file),
            path,
        }))
    }

    /// Attach a collector: appends, bytes, compactions, and replayed
    /// records are mirrored to `journal.*` registry counters. First
    /// attachment wins.
    pub fn attach_obs(&self, collector: &Collector) {
        if collector.is_enabled() {
            let _ = self.obs.set(collector.clone());
        }
    }

    fn obs_add(&self, name: &str, n: u64) {
        if let Some(obs) = self.obs.get() {
            obs.counter_add(name, n);
        }
    }

    fn write_frame(&self, payload: &[u8]) -> u64 {
        let framed_len = (frame::HEADER_LEN + payload.len()) as u64;
        let end = match &self.backend {
            Backend::Mem(buf) => {
                let mut buf = buf.lock().expect("journal lock");
                frame::push_record(&mut buf, payload);
                buf.len() as u64
            }
            Backend::File { file, .. } => {
                let mut buf = Vec::with_capacity(frame::HEADER_LEN + payload.len());
                frame::push_record(&mut buf, payload);
                let mut file = file.lock().expect("journal lock");
                file.write_all(&buf).expect("journal append");
                file.stream_position().expect("journal position")
            }
        };
        self.bytes_written.add(framed_len);
        self.obs_add("journal.bytes", framed_len);
        end
    }

    /// Append one fact; returns the byte offset of the record boundary
    /// just written (useful as a truncation point in recovery tests).
    pub fn append(&self, fact: &Fact) -> u64 {
        let mut payload = vec![KIND_FACT];
        fact.encode_into(&mut payload);
        let end = self.write_frame(&payload);
        self.appends.inc();
        self.obs_add("journal.appends", 1);
        end
    }

    /// Replace the whole log with a single snapshot record reproducing
    /// `snapshot` — the compaction baseline subsequent appends build on.
    pub fn compact(&self, snapshot: &[Fact]) {
        let mut payload = vec![KIND_SNAPSHOT];
        payload.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
        for fact in snapshot {
            fact.encode_into(&mut payload);
        }
        let mut framed = Vec::with_capacity(frame::HEADER_LEN + payload.len());
        frame::push_record(&mut framed, &payload);
        let framed_len = framed.len() as u64;
        match &self.backend {
            Backend::Mem(buf) => {
                *buf.lock().expect("journal lock") = framed;
            }
            Backend::File { file, .. } => {
                let mut file = file.lock().expect("journal lock");
                file.set_len(0).expect("journal truncate");
                file.seek(SeekFrom::Start(0)).expect("journal seek");
                file.write_all(&framed).expect("journal rewrite");
            }
        }
        self.bytes_written.add(framed_len);
        self.compactions.inc();
        self.obs_add("journal.bytes", framed_len);
        self.obs_add("journal.compactions", 1);
    }

    /// Current log length in bytes (every value returned is a record
    /// boundary — appends are atomic per record).
    pub fn len_bytes(&self) -> u64 {
        match &self.backend {
            Backend::Mem(buf) => buf.lock().expect("journal lock").len() as u64,
            Backend::File { file, .. } => file
                .lock()
                .expect("journal lock")
                .metadata()
                .expect("journal metadata")
                .len(),
        }
    }

    /// A snapshot of the raw log bytes.
    pub fn bytes(&self) -> Vec<u8> {
        match &self.backend {
            Backend::Mem(buf) => buf.lock().expect("journal lock").clone(),
            Backend::File { path, file } => {
                let _guard = file.lock().expect("journal lock");
                std::fs::read(path).expect("journal read")
            }
        }
    }

    /// Decode a raw byte stream into its replayable fact prefix. Pure —
    /// no counters move; use [`Journal::replay`] on a handle for counted
    /// recovery.
    pub fn replay_bytes(bytes: &[u8]) -> Replay {
        let scan = frame::scan(bytes);
        let mut facts = Vec::new();
        let mut records = 0u64;
        let mut clean_len = 0usize;
        let mut truncated = scan.truncated;
        let mut pos_after = 0usize;
        for payload in scan.payloads {
            pos_after += frame::HEADER_LEN + payload.len();
            match decode_payload(payload) {
                Some(decoded) => {
                    facts.extend(decoded);
                    records += 1;
                    clean_len = pos_after;
                }
                None => {
                    // A checksummed-but-undecodable record: treat like a
                    // torn tail starting here.
                    truncated = true;
                    break;
                }
            }
        }
        Replay {
            facts,
            records,
            clean_len: clean_len as u64,
            truncated,
        }
    }

    /// Replay this journal's current content, counting replayed records.
    pub fn replay(&self) -> Replay {
        let replay = Self::replay_bytes(&self.bytes());
        self.replayed.add(replay.records);
        self.obs_add("journal.replayed_records", replay.records);
        replay
    }

    /// Current counter totals.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appends: self.appends.get(),
            bytes_written: self.bytes_written.get(),
            compactions: self.compactions.get(),
            replayed_records: self.replayed.get(),
        }
    }
}

/// Decode one record payload into its facts; `None` means corrupt.
fn decode_payload(payload: &[u8]) -> Option<Vec<Fact>> {
    let (&kind, body) = payload.split_first()?;
    match kind {
        KIND_FACT => {
            let mut pos = 0;
            let fact = Fact::decode(body, &mut pos)?;
            (pos == body.len()).then(|| vec![fact])
        }
        KIND_SNAPSHOT => {
            let count = u32::from_le_bytes(body.get(..4)?.try_into().ok()?) as usize;
            let mut pos = 4;
            let mut facts = Vec::with_capacity(count);
            for _ in 0..count {
                facts.push(Fact::decode(body, &mut pos)?);
            }
            (pos == body.len()).then_some(facts)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(n: u32) -> Fact {
        Fact::Put {
            collection: "c".into(),
            id: format!("d{n}"),
            xml: format!("<doc n=\"{n}\"/>"),
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let j = Journal::in_memory();
        let facts = vec![
            put(1),
            Fact::Delete {
                collection: "c".into(),
                id: "d1".into(),
            },
            Fact::Mapping {
                alias: "Bilancio".into(),
                canonical: "BalanceSheet".into(),
            },
        ];
        for f in &facts {
            j.append(f);
        }
        let replay = j.replay();
        assert!(!replay.truncated);
        assert_eq!(replay.facts, facts);
        assert_eq!(replay.records, 3);
        assert_eq!(replay.clean_len, j.len_bytes());
        let stats = j.stats();
        assert_eq!(stats.appends, 3);
        assert_eq!(stats.replayed_records, 3);
        assert_eq!(stats.bytes_written, j.len_bytes());
    }

    #[test]
    fn append_returns_record_boundaries() {
        let j = Journal::in_memory();
        let b1 = j.append(&put(1));
        let b2 = j.append(&put(2));
        assert!(b1 < b2);
        assert_eq!(b2, j.len_bytes());
        // Truncating exactly at b1 keeps exactly the first fact.
        let bytes = j.bytes();
        let replay = Journal::replay_bytes(&bytes[..b1 as usize]);
        assert_eq!(replay.facts, vec![put(1)]);
        assert!(!replay.truncated);
    }

    #[test]
    fn torn_tail_drops_to_last_boundary() {
        let j = Journal::in_memory();
        let b1 = j.append(&put(1));
        j.append(&put(2));
        let bytes = j.bytes();
        for cut in (b1 + 1)..j.len_bytes() {
            let replay = Journal::replay_bytes(&bytes[..cut as usize]);
            assert!(replay.truncated, "cut at {cut}");
            assert_eq!(replay.facts, vec![put(1)], "cut at {cut}");
            assert_eq!(replay.clean_len, b1, "cut at {cut}");
        }
    }

    #[test]
    fn compaction_resets_to_snapshot_baseline() {
        let j = Journal::in_memory();
        for n in 0..10 {
            j.append(&put(n));
        }
        let before = j.len_bytes();
        j.compact(&[put(100), put(101)]);
        assert!(j.len_bytes() < before);
        j.append(&put(102));
        let replay = j.replay();
        assert_eq!(replay.facts, vec![put(100), put(101), put(102)]);
        assert_eq!(replay.records, 2); // snapshot + one append
        assert_eq!(j.stats().compactions, 1);
    }

    #[test]
    fn digest_is_framing_independent() {
        // Same logical facts via appends vs via one snapshot: same digest.
        let a = Journal::in_memory();
        a.append(&put(1));
        a.append(&put(2));
        let b = Journal::in_memory();
        b.compact(&[put(1), put(2)]);
        assert_eq!(a.replay().digest(), b.replay().digest());
        // Different facts: different digest.
        let c = Journal::in_memory();
        c.append(&put(1));
        c.append(&put(3));
        assert_ne!(a.replay().digest(), c.replay().digest());
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("trust-vo-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.journal");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            j.append(&put(1));
            j.append(&put(2));
            j.compact(&[put(1), put(2)]);
            j.append(&put(3));
        }
        // Re-open (a "restarted process") and both replay and append.
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replay().facts, vec![put(1), put(2), put(3)]);
        j.append(&put(4));
        assert_eq!(j.replay().facts.len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_snapshot_record_is_dropped_whole() {
        let j = Journal::in_memory();
        j.compact(&[put(1), put(2)]);
        let mut bytes = j.bytes();
        // Flip one payload byte; the CRC catches it and replay yields the
        // empty prefix (a snapshot is all-or-nothing).
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let replay = Journal::replay_bytes(&bytes);
        assert!(replay.truncated);
        assert!(replay.facts.is_empty());
    }

    #[test]
    fn obs_counters_mirror_stats() {
        let collector = Collector::new();
        if !collector.is_enabled() {
            return; // obs compiled out
        }
        let j = Journal::in_memory();
        j.attach_obs(&collector);
        j.append(&put(1));
        j.compact(&[put(1)]);
        j.replay();
        let metrics = collector.metrics();
        assert_eq!(metrics.counter("journal.appends"), 1);
        assert_eq!(metrics.counter("journal.compactions"), 1);
        assert_eq!(metrics.counter("journal.replayed_records"), 1);
        assert_eq!(metrics.counter("journal.bytes"), j.stats().bytes_written);
    }
}
