//! Record framing: `[len: u32 LE][crc32: u32 LE][payload]`.
//!
//! The length is of the payload alone; the CRC is the IEEE CRC-32 of the
//! payload. A record whose frame runs past the end of the buffer, or
//! whose payload fails its checksum, ends the clean prefix — everything
//! before it replays, everything from it on is a torn tail.

/// Bytes of frame header preceding every payload.
pub const HEADER_LEN: usize = 8;

/// Slicing-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[j][b]` is the CRC contribution of byte `b` seen `j`
/// positions earlier in an 8-byte block. Eight table lookups then advance
/// the CRC eight input bytes at once, which matters because every wire
/// frame and journal record pays this checksum twice (frame + scan).
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = t[0][(t[j - 1][i] & 0xFF) as usize] ^ (t[j - 1][i] >> 8);
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// IEEE CRC-32 (the zlib/PNG polynomial) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = c ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append one framed record to `buf`.
pub fn push_record(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Open a record at the end of `buf`, reserving its header; encode the
/// payload directly into `buf`, then close with [`end_record`]. Skips
/// the intermediate payload buffer `push_record` would need.
pub fn begin_record(buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; HEADER_LEN]);
    start
}

/// Close the record opened at `start`: backfill the length and checksum
/// of everything appended since [`begin_record`].
pub fn end_record(buf: &mut [u8], start: usize) {
    let body = start + HEADER_LEN;
    debug_assert!(body <= buf.len(), "end_record before begin_record");
    let len = (buf.len() - body) as u32;
    let crc = crc32(&buf[body..]);
    buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    buf[start + 4..body].copy_from_slice(&crc.to_le_bytes());
}

/// The payload of a buffer holding exactly one intact record — the
/// wire-path hot case, with none of [`scan`]'s bookkeeping allocations.
/// `None` if the buffer is torn, corrupt, or holds anything else.
pub fn single_record(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let payload = bytes.get(HEADER_LEN..)?;
    if payload.len() != len || crc32(payload) != crc {
        return None;
    }
    Some(payload)
}

/// The clean record prefix of a (possibly torn) journal byte stream.
#[derive(Debug)]
pub struct ScanOutcome<'a> {
    /// Payloads of every intact record, in append order.
    pub payloads: Vec<&'a [u8]>,
    /// Byte length of the clean prefix (end of the last intact record).
    pub clean_len: usize,
    /// Whether bytes after the clean prefix were discarded.
    pub truncated: bool,
}

/// Scan framed records from the front, stopping at the first incomplete
/// or checksum-failing record.
pub fn scan(bytes: &[u8]) -> ScanOutcome<'_> {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return ScanOutcome {
                payloads,
                clean_len: pos,
                truncated: false,
            };
        }
        if remaining < HEADER_LEN {
            return ScanOutcome {
                payloads,
                clean_len: pos,
                truncated: true,
            };
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + HEADER_LEN;
        if len > bytes.len() - body_start {
            // Torn mid-payload (or a corrupt length field): drop the tail.
            return ScanOutcome {
                payloads,
                clean_len: pos,
                truncated: true,
            };
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != crc {
            return ScanOutcome {
                payloads,
                clean_len: pos,
                truncated: true,
            };
        }
        payloads.push(payload);
        pos = body_start + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn begin_end_record_matches_push_record() {
        let mut pushed = Vec::new();
        push_record(&mut pushed, b"payload");
        let mut streamed = vec![0xAA]; // records can start mid-buffer
        let start = begin_record(&mut streamed);
        streamed.extend_from_slice(b"pay");
        streamed.extend_from_slice(b"load");
        end_record(&mut streamed, start);
        assert_eq!(&streamed[1..], pushed.as_slice());
    }

    #[test]
    fn single_record_reads_exactly_one_intact_record() {
        let mut buf = Vec::new();
        push_record(&mut buf, b"only");
        assert_eq!(single_record(&buf), Some(b"only".as_slice()));
        // Torn, corrupt, under-length, and multi-record buffers all fail.
        assert_eq!(single_record(&buf[..buf.len() - 1]), None);
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert_eq!(single_record(&corrupt), None);
        assert_eq!(single_record(b""), None);
        push_record(&mut buf, b"second");
        assert_eq!(single_record(&buf), None);
        // An empty payload is still one intact record.
        let mut empty = Vec::new();
        push_record(&mut empty, b"");
        assert_eq!(single_record(&empty), Some(b"".as_slice()));
    }

    #[test]
    fn roundtrip_multiple_records() {
        let mut buf = Vec::new();
        push_record(&mut buf, b"alpha");
        push_record(&mut buf, b"");
        push_record(&mut buf, b"gamma-gamma");
        let scan = scan(&buf);
        assert!(!scan.truncated);
        assert_eq!(scan.clean_len, buf.len());
        assert_eq!(
            scan.payloads,
            vec![
                b"alpha".as_slice(),
                b"".as_slice(),
                b"gamma-gamma".as_slice()
            ]
        );
    }

    #[test]
    fn corrupt_record_ends_prefix() {
        let mut buf = Vec::new();
        push_record(&mut buf, b"good");
        let boundary = buf.len();
        push_record(&mut buf, b"bad!");
        // Flip a payload byte of the second record.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let scan = scan(&buf);
        assert!(scan.truncated);
        assert_eq!(scan.clean_len, boundary);
        assert_eq!(scan.payloads, vec![b"good".as_slice()]);
    }

    proptest! {
        /// Every byte-truncation point recovers some record prefix, and
        /// truncation exactly at a boundary keeps all records before it.
        #[test]
        fn truncation_yields_prefix(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..12),
            cut_permille in 0u32..1000,
        ) {
            let mut buf = Vec::new();
            let mut boundaries = vec![0usize];
            for p in &payloads {
                push_record(&mut buf, p);
                boundaries.push(buf.len());
            }
            let cut = buf.len() * cut_permille as usize / 1000;
            let scanned = scan(&buf[..cut]);
            // The clean prefix is a record boundary ≤ cut, and the record
            // count equals the number of boundaries passed.
            let expect_records = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            prop_assert_eq!(scanned.payloads.len(), expect_records);
            prop_assert_eq!(scanned.clean_len, boundaries[expect_records]);
            for (got, want) in scanned.payloads.iter().zip(&payloads) {
                prop_assert_eq!(*got, want.as_slice());
            }
        }
    }
}
