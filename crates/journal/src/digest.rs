//! FNV-1a 64-bit folding, for replay and state digests.
//!
//! Not cryptographic — the journal's integrity guard is the per-record
//! CRC in [`crate::frame`]; this digest only has to make *unequal
//! replayed states* collide with negligible probability so determinism
//! gates can compare one number instead of whole journals.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold bytes into the running digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a length-prefixed chunk: `write_framed(a); write_framed(b)`
    /// never collides with `write_framed(a ++ b)`.
    pub fn write_framed(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot digest of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn framing_separates_chunks() {
        let mut a = Fnv64::new();
        a.write_framed(b"ab");
        a.write_framed(b"c");
        let mut b = Fnv64::new();
        b.write_framed(b"a");
        b.write_framed(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
