//! The append-only **fact journal**: the durable substrate behind the
//! store, the mapping memo, and negotiation checkpoints.
//!
//! The paper's toolkit "adopts MySQL as storage support" (§6.3) so that
//! VOs, members, and membership certificates survive restarts. This crate
//! substitutes a write-ahead log of *facts*: every state mutation the
//! process wants to survive a crash is appended as one length-framed,
//! CRC-checksummed record, and recovery is a deterministic replay of the
//! longest clean record prefix.
//!
//! Three producers spill into one journal:
//!
//! * the multi-versioned document [`Database`](../trust_vo_store) — every
//!   `put`/`delete` becomes a [`Fact::Put`]/[`Fact::Delete`]; replay
//!   reconstructs revision histories exactly,
//! * the `MapMemo` — resolved concept pairs become [`Fact::Mapping`]
//!   entries, recoverable as the paper's §4.3 *dictionary*,
//! * phase-2 negotiation checkpoints — the TN service persists them
//!   through the journaled database, so a restarted process resumes live
//!   negotiations through the signed resume-token path.
//!
//! # Torn-tail semantics
//!
//! A crash can truncate the log at any byte. Replay scans records until
//! the first frame that is incomplete or fails its checksum and discards
//! everything from there on — so the recovered state is always equal to
//! the state after some *prefix* of the committed operations (the
//! kill-at-any-prefix property, tested in `tests/journal_recovery.rs`).
//!
//! # Determinism
//!
//! Nothing here fsyncs, reads clocks, or injects randomness: the byte
//! stream is a pure function of the appended facts, and
//! [`Replay::digest`] is a pure function of the byte stream — two runs of
//! the same seeded workload produce byte-identical journals, which
//! `ci.sh` enforces by comparing replay digests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod fact;
pub mod frame;
pub mod journal;

pub use digest::Fnv64;
pub use fact::Fact;
pub use journal::{Journal, JournalStats, Replay};
