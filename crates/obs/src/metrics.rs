//! Atomic metric primitives and the name-keyed [`Registry`].
//!
//! Counters are sharded across cache-line-padded atomics so concurrent
//! workers (the parallel formation path) never contend on a single word.
//! The registry itself is only locked when a handle is first created;
//! callers clone the handle once and increment lock-free thereafter.
//!
//! Metric primitives always count, independent of the crate's `enabled`
//! feature: subsystem stats facades (e.g. the negotiation cache's
//! `CacheStats`) are built on top of them and must stay correct even when
//! span/event collection is compiled out.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent shards per [`Counter`]. Eight covers the worker
/// counts the formation benches exercise without bloating `get()`.
const COUNTER_SHARDS: usize = 8;

/// One atomic padded out to a cache line so neighbouring shards never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Round-robin source for per-thread shard indices.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Lazily-assigned shard index for the current thread. `usize::MAX`
    /// means "not yet assigned".
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            slot.set(idx);
        }
        idx
    })
}

/// A monotonically increasing counter, sharded to avoid contention.
///
/// Cloning is cheap (an `Arc` bump) and all clones observe the same
/// value. Increments are a single relaxed `fetch_add` on the calling
/// thread's shard; reads sum all shards.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    shards: Arc<[PaddedU64; COUNTER_SHARDS]>,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Returns the current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous value (e.g. current queue depth).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is currently lower — a high-water
    /// mark (e.g. peak queue depth), monotone under concurrent updates.
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds, in microseconds: a 1-2-5
/// exponential series spanning 1 µs .. 10 s, suitable for both store op
/// latencies and whole-negotiation sim durations.
pub const DEFAULT_LATENCY_BOUNDS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds of each bucket, strictly increasing.
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` buckets; the last one catches overflow.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples (microsecond latencies by
/// convention). Recording is lock-free: a binary search over the bounds
/// plus three relaxed `fetch_add`s.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Creates a histogram with the given inclusive bucket upper bounds.
    /// Bounds must be strictly increasing; an extra overflow bucket is
    /// appended automatically.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.into(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a histogram with [`DEFAULT_LATENCY_BOUNDS_US`].
    pub fn with_default_bounds() -> Self {
        Self::new(DEFAULT_LATENCY_BOUNDS_US)
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = self.inner.bounds.partition_point(|&b| b < v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot of the histogram state.
    ///
    /// Under concurrent recording the bucket totals and `count` may be
    /// momentarily out of step by in-flight samples; with recording
    /// quiesced they agree exactly.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.to_vec(),
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of each bucket.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; one longer than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

/// Name-keyed store of metric handles.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call for a
/// name registers the metric, later calls return a clone of the same
/// handle. Lookups take a read lock only; the write lock is taken once
/// per name, at registration.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("registry lock").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().expect("registry lock").get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bounds if absent. Bounds are fixed at first registration;
    /// later calls ignore the argument and return the existing handle.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        if let Some(h) = self.histograms.read().expect("registry lock").get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Returns a histogram under `name` with [`DEFAULT_LATENCY_BOUNDS_US`].
    pub fn latency_histogram(&self, name: &str) -> Histogram {
        self.histogram(name, DEFAULT_LATENCY_BOUNDS_US)
    }

    /// Copies out the current value of every registered metric, sorted by
    /// name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric in a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Convenience: the total for `name`, or 0 if never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        h.record(3); // bucket 0 (<=10)
        h.record(10); // bucket 0 (inclusive bound)
        h.record(50); // bucket 1 (<=100)
        h.record(1_000); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![2, 1, 1]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1_063);
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x").get(), 5);
        assert_eq!(r.snapshot().counter("x"), 5);
    }

    #[test]
    fn histogram_bounds_fixed_at_registration() {
        let r = Registry::new();
        let a = r.histogram("lat", &[1, 2, 3]);
        let b = r.histogram("lat", &[99]);
        a.record(2);
        assert_eq!(b.snapshot().bounds, vec![1, 2, 3]);
        assert_eq!(b.count(), 1);
    }
}
