//! Minimal JSON reader/writer for the JSONL exporter.
//!
//! Std-only by design (the workspace vendors nothing new for
//! observability). Numbers are kept as raw strings and converted per
//! schema field by the record layer, so `u64`/`i64`/`f64` fidelity is
//! decided where the expected type is known.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers stay unparsed (`Num` holds the source
/// text) until the caller knows the target type.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal, escaping quotes,
/// backslashes, and control characters.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a single JSON document from `input`, requiring it to consume
/// the whole string (trailing whitespace allowed).
pub(crate) fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(input, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(input, bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(input, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(input, bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            if bytes.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while let Some(&b) = bytes.get(*pos) {
                if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            if *pos == start {
                return Err(format!("invalid number at byte {start}"));
            }
            Ok(Json::Num(input[start..*pos].to_string()))
        }
        Some(&b) => Err(format!("unexpected byte {b:#x} at {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = input[*pos..].char_indices();
    while let Some((offset, ch)) = chars.next() {
        match ch {
            '"' => {
                *pos += offset + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{0008}'),
                Some((_, 'f')) => out.push('\u{000c}'),
                Some((esc_off, 'u')) => {
                    let hex_start = *pos + esc_off + 1;
                    let hex = input
                        .get(hex_start..hex_start + 4)
                        .ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                    // Surrogate pairs are not emitted by our writer; map
                    // lone surrogates to the replacement character.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let mut buf = String::new();
        escape_into(&mut buf, "a\"b\\c\nd\te\u{0001}f");
        let parsed = parse(&buf).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\te\u{0001}f".to_string()));
    }

    #[test]
    fn parses_nested_object() {
        let doc = r#"{"a": [1, -2, 3.5], "b": {"c": null, "d": true}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} {}").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
