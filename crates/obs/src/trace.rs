//! Cross-hop trace identity: the causal link carried in SOA envelope
//! headers.
//!
//! A *trace* groups every span recorded on behalf of one logical
//! negotiation or formation, across every hop the work crosses: client
//! driver → retry layer → fault transport → bus → service handler. Two
//! small types implement it:
//!
//! * [`TraceContext`] is the wire form — `(trace_id, span_id,
//!   parent_span_id)` — stamped into an `Envelope` header by whichever
//!   layer most recently opened a span for the message. Each hop that
//!   opens its own span re-stamps the context via
//!   [`TraceContext::child`] so the next layer parents under it.
//! * [`SpanLink`] is the in-process form — "which trace, and which span
//!   should new children parent under" — what a receiving hop passes to
//!   `Collector::span_linked`.
//!
//! Trace id `0` is reserved for "untraced": spans recorded outside any
//! trace keep `trace_id == 0`, and a default [`SpanLink`] produces
//! exactly the pre-tracing behaviour (plain parent nesting).

/// A position in a trace that new child spans should attach under.
///
/// `SpanLink::default()` is the untraced link: `trace_id == 0`, no
/// parent — spans opened through it behave exactly like plain root
/// spans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanLink {
    /// The trace the child belongs to (0 = untraced).
    pub trace_id: u64,
    /// The span id new children should parent under, if any.
    pub parent: Option<u64>,
}

impl SpanLink {
    /// Whether this link carries a real trace id.
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }
}

/// The trace context carried in an envelope header across one hop.
///
/// `span_id` names the span that *sent* the message at this hop;
/// `parent_span_id` is that span's own parent, kept so an export that
/// lost intermediate records can still show where the hop came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace the message belongs to (never 0 on the wire).
    pub trace_id: u64,
    /// Span that most recently handled the message.
    pub span_id: u64,
    /// Parent of `span_id`, if any.
    pub parent_span_id: Option<u64>,
}

impl TraceContext {
    /// The link a receiving hop should open its own span under.
    pub fn link(&self) -> SpanLink {
        SpanLink {
            trace_id: self.trace_id,
            parent: Some(self.span_id),
        }
    }

    /// Re-stamps the context for the next hop: the caller's new span
    /// (`span_id`) becomes the message's span, the previous span its
    /// parent.
    #[must_use]
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id,
            parent_span_id: Some(self.span_id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_is_untraced() {
        let link = SpanLink::default();
        assert_eq!(link.trace_id, 0);
        assert_eq!(link.parent, None);
        assert!(!link.is_traced());
    }

    #[test]
    fn child_restamps_span_and_parent() {
        let ctx = TraceContext {
            trace_id: 7,
            span_id: 3,
            parent_span_id: None,
        };
        let next = ctx.child(9);
        assert_eq!(next.trace_id, 7);
        assert_eq!(next.span_id, 9);
        assert_eq!(next.parent_span_id, Some(3));
        assert_eq!(
            next.link(),
            SpanLink {
                trace_id: 7,
                parent: Some(9)
            }
        );
    }
}
