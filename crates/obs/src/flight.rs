//! A per-negotiation flight recorder: a bounded ring of recent
//! protocol-level moments, dumped as a post-mortem artifact when a
//! negotiation dies.
//!
//! The collector's ring buffer is global and long-lived; by the time a
//! chaos run ends, the spans around one failed negotiation may be
//! thousands of records back (or evicted). A [`FlightRecorder`] is the
//! cheap, local complement: the resilient client driver notes each
//! call, retry burst, resume, and restart into it, and on a terminal
//! fault / abandonment / failed resume [`FlightRecorder::dump`] emits
//! one `flight.dump` event (plus a `flight.dumps` counter) carrying the
//! rendered tail — so E11-style chaos runs always leave a compact
//! "what were the last N things this negotiation did" artifact in the
//! export.
//!
//! Entries are timestamped with the **simulated** clock only, so dumps
//! are deterministic and survive the wall-time scrub of the
//! deterministic exporters. When the `TRUST_VO_FLIGHT_DIR` environment
//! variable names a directory, each dump is additionally written there
//! as `flight-<label>.log` (best effort; I/O errors are ignored — a
//! post-mortem writer must never take the process down with it).

use crate::collector::Collector;
use crate::record::Value;
use std::collections::VecDeque;

/// Default bound on retained entries per negotiation.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// One noted moment: simulated timestamp, what happened, detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Simulated-clock timestamp (µs) when the moment was noted.
    pub sim_us: u64,
    /// Short machine-ish tag, e.g. `call`, `retry`, `resume`, `fault`.
    pub what: String,
    /// Free-form detail, e.g. the operation and fault code.
    pub detail: String,
}

/// A bounded ring of [`FlightEntry`]s (oldest evicted first).
///
/// A disabled recorder ([`FlightRecorder::disabled`]) ignores notes and
/// dumps, mirroring the disabled-[`Collector`] contract so callers can
/// construct one unconditionally.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    entries: Option<VecDeque<FlightEntry>>,
    capacity: usize,
    evicted: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            entries: Some(VecDeque::with_capacity(capacity.min(64))),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// A recorder that records nothing and dumps nothing.
    pub fn disabled() -> Self {
        FlightRecorder {
            entries: None,
            capacity: 0,
            evicted: 0,
        }
    }

    /// A recorder enabled exactly when `collector` is.
    pub fn for_collector(collector: &Collector) -> Self {
        if collector.is_enabled() {
            Self::default()
        } else {
            Self::disabled()
        }
    }

    /// Whether notes are retained.
    pub fn is_enabled(&self) -> bool {
        self.entries.is_some()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.as_ref().map_or(0, VecDeque::len)
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Notes one moment; evicts the oldest entry when full.
    pub fn note(&mut self, sim_us: u64, what: &str, detail: impl Into<String>) {
        let capacity = self.capacity;
        if let Some(entries) = &mut self.entries {
            if entries.len() >= capacity {
                entries.pop_front();
                self.evicted += 1;
            }
            entries.push_back(FlightEntry {
                sim_us,
                what: what.to_string(),
                detail: detail.into(),
            });
        }
    }

    /// Renders the retained tail, one line per entry, oldest first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!("({} earlier entries evicted)\n", self.evicted));
        }
        for e in self.entries.iter().flatten() {
            out.push_str(&format!(
                "sim {:>12}us  {:<8} {}\n",
                e.sim_us, e.what, e.detail
            ));
        }
        out
    }

    /// Dumps the recorder into `collector` as one `flight.dump` event
    /// (fields: `reason`, `label`, `entries`, `log`) and bumps the
    /// `flight.dumps` counter. Also writes `flight-<label>.log` under
    /// `$TRUST_VO_FLIGHT_DIR` when that directory is configured. No-op
    /// when either side is disabled.
    pub fn dump(&self, collector: &Collector, reason: &str, label: &str) {
        if !self.is_enabled() || !collector.is_enabled() {
            return;
        }
        let log = self.render();
        collector.counter_add("flight.dumps", 1);
        collector.event(
            "flight.dump",
            vec![
                ("reason".to_string(), Value::Str(reason.to_string())),
                ("label".to_string(), Value::Str(label.to_string())),
                ("entries".to_string(), Value::from(self.len())),
                ("log".to_string(), Value::Str(log.clone())),
            ],
        );
        if let Ok(dir) = std::env::var("TRUST_VO_FLIGHT_DIR") {
            if !dir.is_empty() {
                let path = std::path::Path::new(&dir).join(format!("flight-{label}.log"));
                let body = format!("reason: {reason}\n{log}");
                let _ = std::fs::write(path, body);
            }
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn ring_bounds_entries_and_counts_evictions() {
        let mut fr = FlightRecorder::new(2);
        for i in 0..5u64 {
            fr.note(i * 10, "call", format!("op{i}"));
        }
        assert_eq!(fr.len(), 2);
        let text = fr.render();
        assert!(text.contains("(3 earlier entries evicted)"));
        assert!(text.contains("op3"));
        assert!(text.contains("op4"));
        assert!(!text.contains("op2"));
    }

    #[test]
    fn dump_emits_event_and_counter() {
        let c = Collector::new();
        let mut fr = FlightRecorder::for_collector(&c);
        assert!(fr.is_enabled());
        fr.note(100, "call", "StartNegotiation");
        fr.note(200, "fault", "[Timeout] lost");
        fr.dump(&c, "transport-fault", "neg-7");
        assert_eq!(c.metrics().counter("flight.dumps"), 1);
        let events: Vec<_> = c
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Event(e) if e.name == "flight.dump" => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(events.len(), 1);
        let log = events[0]
            .fields
            .iter()
            .find_map(|(k, v)| match v {
                Value::Str(s) if k == "log" => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert!(log.contains("StartNegotiation"));
        assert!(log.contains("[Timeout] lost"));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut fr = FlightRecorder::disabled();
        fr.note(1, "call", "x");
        assert!(fr.is_empty());
        let c = Collector::new();
        fr.dump(&c, "whatever", "l");
        assert!(c.records().is_empty());
        // And a live recorder against a disabled collector stays quiet.
        let mut live = FlightRecorder::for_collector(&Collector::disabled());
        live.note(1, "call", "x");
        assert!(live.is_empty());
    }
}
