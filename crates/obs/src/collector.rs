//! The [`Collector`]: a shared handle owning a metrics [`Registry`], a
//! bounded ring buffer of [`Record`]s, and the span-id allocator.
//!
//! Cloning a collector clones the handle, not the data — every subsystem
//! holds a clone of the same collector. A *disabled* collector (from
//! [`Collector::disabled`], or any constructor when the crate's `enabled`
//! feature is off) carries no inner state: every operation early-returns
//! after one `Option` check, which is what makes it safe to leave the
//! instrumentation calls in the parallel formation hot path.

use crate::metrics::{MetricsSnapshot, Registry};
use crate::record::{EventRecord, HistogramRecord, Record, SpanRecord, Value};
use crate::summary::render_summary;
use crate::trace::SpanLink;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default bound on the number of records the ring buffer retains.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Closure that reports the current simulated time in microseconds.
type SimSource = Box<dyn Fn() -> u64 + Send + Sync>;

struct Inner {
    epoch: Instant,
    registry: Registry,
    ring: Mutex<VecDeque<Record>>,
    capacity: usize,
    next_span_id: AtomicU64,
    next_trace_id: AtomicU64,
    dropped: AtomicU64,
    sim_source: OnceLock<SimSource>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A cheaply-cloneable observability sink.
///
/// See the [module docs](self) for the enabled/disabled contract.
#[derive(Clone, Debug, Default)]
pub struct Collector {
    inner: Option<Arc<Inner>>,
}

impl Collector {
    /// Creates an enabled collector with [`DEFAULT_RING_CAPACITY`].
    ///
    /// When the crate's `enabled` feature is off this returns a disabled
    /// collector instead, so callers never need their own `cfg` gates.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Creates an enabled collector whose ring buffer keeps at most
    /// `capacity` records (oldest evicted first; evictions are counted in
    /// [`Collector::dropped`]). Disabled when the `enabled` feature is off.
    pub fn with_capacity(capacity: usize) -> Self {
        if !cfg!(feature = "enabled") {
            return Self::disabled();
        }
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                registry: Registry::new(),
                ring: Mutex::new(VecDeque::with_capacity(capacity.min(1_024))),
                capacity,
                next_span_id: AtomicU64::new(1),
                next_trace_id: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                sim_source: OnceLock::new(),
            })),
        }
    }

    /// Creates a collector for which every operation is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this collector records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, or `None` when disabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Adds `n` to the counter registered under `name`. No-op when
    /// disabled. Hot paths that increment repeatedly should fetch the
    /// handle once via [`Collector::registry`] instead.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name).add(n);
        }
    }

    /// Installs the simulated-time source (a closure returning elapsed
    /// simulated microseconds). First caller wins; later calls are
    /// ignored, which makes attach-twice safe.
    pub fn set_sim_source(&self, source: impl Fn() -> u64 + Send + Sync + 'static) {
        if let Some(inner) = &self.inner {
            let _ = inner.sim_source.set(Box::new(source));
        }
    }

    /// Current simulated time in microseconds (0 before a source is
    /// installed or when disabled).
    pub fn sim_now(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.sim_source.get().map_or(0, |f| f()),
            None => 0,
        }
    }

    fn wall_now(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    fn push(inner: &Inner, record: Record) {
        let mut ring = inner.ring.lock().expect("obs ring lock");
        if ring.len() >= inner.capacity {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Records a structured event. No-op when disabled.
    pub fn event(&self, name: &str, fields: Vec<(String, Value)>) {
        if let Some(inner) = &self.inner {
            let record = Record::Event(EventRecord {
                name: name.to_string(),
                wall_us: Self::wall_now(inner),
                sim_us: self.sim_now(),
                fields,
            });
            Self::push(inner, record);
        }
    }

    /// Starts a root span. The returned guard records the span into the
    /// ring buffer when dropped.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with_parent(name, None)
    }

    /// Starts a span with an explicit parent id (from
    /// [`SpanGuard::id`] of the enclosing span, possibly on another
    /// thread).
    pub fn span_with_parent(&self, name: &str, parent: Option<u64>) -> SpanGuard {
        self.span_linked(
            name,
            SpanLink {
                trace_id: 0,
                parent,
            },
        )
    }

    /// Starts a span at a trace position: parented under `link.parent`
    /// and tagged with `link.trace_id`. With a default (untraced) link
    /// this is exactly [`Collector::span`].
    pub fn span_linked(&self, name: &str, link: SpanLink) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard {
                collector: self.clone(),
                record: Some(SpanRecord {
                    id: inner.next_span_id.fetch_add(1, Ordering::Relaxed),
                    parent: link.parent,
                    trace_id: link.trace_id,
                    name: name.to_string(),
                    wall_start_us: Self::wall_now(inner),
                    wall_us: 0,
                    sim_start_us: self.sim_now(),
                    sim_us: 0,
                    fields: Vec::new(),
                }),
            },
            None => SpanGuard {
                collector: Collector::disabled(),
                record: None,
            },
        }
    }

    /// Allocates a fresh trace id (dense, starting at 1), or 0 when
    /// disabled — callers treat 0 as "don't trace".
    pub fn new_trace_id(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.next_trace_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Copies out the ring buffer contents, oldest first.
    pub fn records(&self) -> Vec<Record> {
        match &self.inner {
            Some(inner) => inner
                .ring
                .lock()
                .expect("obs ring lock")
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Removes and returns the ring buffer contents, oldest first.
    pub fn drain(&self) -> Vec<Record> {
        match &self.inner {
            Some(inner) => inner
                .ring
                .lock()
                .expect("obs ring lock")
                .drain(..)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Number of records evicted from the ring buffer because it was
    /// full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Snapshot of every registered metric (empty when disabled).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry().map(Registry::snapshot).unwrap_or_default()
    }

    /// The ring buffer contents followed by one `Counter`/`Gauge`/
    /// `Histogram` record per registered metric — the batch every
    /// exporter serializes. With `scrub`, wall-clock timings are zeroed
    /// (see [`Record::scrub_wall_times`]; wall-latency `*.op_us`
    /// histograms keep their sample count but lose their run-varying
    /// timing shape).
    pub fn export_records(&self, scrub: bool) -> Vec<Record> {
        let mut records = self.records();
        if scrub {
            for record in &mut records {
                record.scrub_wall_times();
            }
        }
        let snap = self.metrics();
        for (name, value) in snap.counters {
            records.push(Record::Counter { name, value });
        }
        for (name, value) in snap.gauges {
            records.push(Record::Gauge { name, value });
        }
        for (name, h) in snap.histograms {
            let mut record = Record::Histogram(HistogramRecord {
                name,
                bounds: h.bounds,
                buckets: h.buckets,
                count: h.count,
                sum: h.sum,
            });
            if scrub {
                record.scrub_wall_times();
            }
            records.push(record);
        }
        records
    }

    /// Serializes the ring buffer plus a metrics snapshot as JSON lines:
    /// span/event records in arrival order, then one `counter`/`gauge`/
    /// `histogram` line per registered metric.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.export_records(false) {
            out.push_str(&record.to_json_line());
            out.push('\n');
        }
        out
    }

    /// [`Self::to_jsonl`], with wall-clock timings scrubbed to zero
    /// (see [`Record::scrub_wall_times`]): two runs of the same
    /// deterministic workload — e.g. a seeded chaos bench — export
    /// byte-identical JSONL, so CI can `diff` them.
    pub fn to_jsonl_deterministic(&self) -> String {
        let mut out = String::new();
        for record in self.export_records(true) {
            out.push_str(&record.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Exports the ring buffer plus a metrics snapshot as a Chrome
    /// trace-event / Perfetto JSON document with wall-clock timestamps
    /// (see [`crate::perfetto`]).
    pub fn to_perfetto(&self) -> String {
        crate::perfetto::render(&self.export_records(false))
    }

    /// [`Self::to_perfetto`] on the simulated clock with wall times
    /// scrubbed — same byte-identical-replay contract as
    /// [`Self::to_jsonl_deterministic`].
    pub fn to_perfetto_deterministic(&self) -> String {
        crate::perfetto::render_deterministic(&self.export_records(true))
    }

    /// Renders a human-readable summary table of spans, events, and
    /// metrics.
    pub fn summary(&self) -> String {
        render_summary(&self.export_records(false))
    }
}

/// RAII guard for an in-flight span; records it on drop.
///
/// From a disabled collector the guard is inert: `id()` is `None` and
/// `field()`/drop do nothing.
#[derive(Debug)]
pub struct SpanGuard {
    collector: Collector,
    record: Option<SpanRecord>,
}

impl SpanGuard {
    /// The span's id, for parenting child spans — `None` when inert.
    pub fn id(&self) -> Option<u64> {
        self.record.as_ref().map(|r| r.id)
    }

    /// The trace this span belongs to (0 when untraced or inert).
    pub fn trace_id(&self) -> u64 {
        self.record.as_ref().map_or(0, |r| r.trace_id)
    }

    /// A link for opening children of this span in the same trace
    /// (the default, untraced link when inert).
    pub fn link(&self) -> SpanLink {
        match &self.record {
            Some(r) => SpanLink {
                trace_id: r.trace_id,
                parent: Some(r.id),
            },
            None => SpanLink::default(),
        }
    }

    /// Attaches a structured field to the span.
    pub fn field(&mut self, key: &str, value: impl Into<Value>) {
        if let Some(record) = &mut self.record {
            record.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(mut record), Some(inner)) = (self.record.take(), self.collector.inner.clone())
        {
            let wall_now = Collector::wall_now(&inner);
            record.wall_us = wall_now.saturating_sub(record.wall_start_us);
            record.sim_us = self.collector.sim_now().saturating_sub(record.sim_start_us);
            Collector::push(&inner, Record::Span(record));
        }
    }
}

/// A collector plus the current parent span id — the unit the
/// negotiation engine threads through its call tree.
///
/// `ObsContext::default()` is disabled, so existing `NegotiationConfig`
/// construction sites keep working unchanged.
#[derive(Clone, Debug, Default)]
pub struct ObsContext {
    collector: Collector,
    parent: Option<u64>,
    trace_id: u64,
}

impl ObsContext {
    /// Wraps a collector with no parent span.
    pub fn new(collector: Collector) -> Self {
        Self {
            collector,
            parent: None,
            trace_id: 0,
        }
    }

    /// A context whose operations are all no-ops.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Returns this context re-parented under `parent`.
    pub fn with_parent(mut self, parent: Option<u64>) -> Self {
        self.parent = parent;
        self
    }

    /// Returns this context tagged with a trace id: spans it opens
    /// belong to that trace (0 leaves them untraced).
    pub fn with_trace(mut self, trace_id: u64) -> Self {
        self.trace_id = trace_id;
        self
    }

    /// Returns this context positioned at `link` (both parent and
    /// trace).
    pub fn at_link(mut self, link: SpanLink) -> Self {
        self.parent = link.parent;
        self.trace_id = link.trace_id;
        self
    }

    /// The trace position this context opens spans at.
    pub fn link(&self) -> SpanLink {
        SpanLink {
            trace_id: self.trace_id,
            parent: self.parent,
        }
    }

    /// Whether the underlying collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.collector.is_enabled()
    }

    /// The underlying collector.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Starts a span parented under this context's parent id, in this
    /// context's trace.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.collector.span_linked(name, self.link())
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        self.collector.counter_add(name, n);
    }

    /// Records a structured event.
    pub fn event(&self, name: &str, fields: Vec<(String, Value)>) {
        self.collector.event(name, fields);
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_via_explicit_parents() {
        let c = Collector::new();
        let root = c.span("root");
        let mut child = c.span_with_parent("child", root.id());
        child.field("k", "v");
        drop(child);
        drop(root);
        let records = c.records();
        assert_eq!(records.len(), 2);
        // Child drops first, so it is recorded first.
        match (&records[0], &records[1]) {
            (Record::Span(child), Record::Span(root)) => {
                assert_eq!(child.name, "child");
                assert_eq!(child.parent, Some(root.id));
                assert_eq!(root.parent, None);
                assert_eq!(
                    child.fields,
                    vec![("k".to_string(), Value::Str("v".into()))]
                );
            }
            other => panic!("unexpected records {other:?}"),
        }
    }

    #[test]
    fn trace_ids_thread_through_linked_spans() {
        let c = Collector::new();
        let trace = c.new_trace_id();
        assert_eq!(trace, 1);
        assert_eq!(c.new_trace_id(), 2);
        let root = c.span_linked(
            "root",
            SpanLink {
                trace_id: trace,
                parent: None,
            },
        );
        assert_eq!(root.trace_id(), trace);
        let child = c.span_linked("child", root.link());
        assert_eq!(child.trace_id(), trace);
        let ctx = ObsContext::new(c.clone()).at_link(child.link());
        let grandchild = ctx.span("grandchild");
        let (child_id, grandchild_id) = (child.id().unwrap(), grandchild.id().unwrap());
        drop(grandchild);
        drop(child);
        drop(root);
        let spans: Vec<_> = c
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(spans.iter().all(|s| s.trace_id == trace));
        let gc = spans.iter().find(|s| s.id == grandchild_id).unwrap();
        assert_eq!(gc.parent, Some(child_id));
        // Disabled collectors hand out the "don't trace" id.
        assert_eq!(Collector::disabled().new_trace_id(), 0);
    }

    #[test]
    fn deterministic_export_is_reproducible_and_wall_free() {
        let run = || {
            let c = Collector::new();
            let mut span = c.span("work");
            span.field("k", "v");
            drop(span);
            c.event("tick", vec![("n".into(), Value::I64(3))]);
            c.counter_add("hits", 2);
            c.to_jsonl_deterministic()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "identical workloads must export identical JSONL");
        assert!(a.contains("\"wall_us\":0"));
        assert!(a.contains("\"wall_start_us\":0"));
        assert!(a.contains("\"name\":\"hits\",\"value\":2"));
        // Still parseable by the round-trip reader.
        let parsed = crate::record::parse_jsonl(&a).unwrap();
        assert_eq!(parsed.len(), 3);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let c = Collector::with_capacity(2);
        for i in 0..4 {
            c.event("e", vec![("i".into(), Value::I64(i))]);
        }
        let records = c.records();
        assert_eq!(records.len(), 2);
        assert_eq!(c.dropped(), 2);
        match &records[0] {
            Record::Event(e) => assert_eq!(e.fields[0].1, Value::I64(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disabled_collector_is_inert() {
        let c = Collector::disabled();
        assert!(!c.is_enabled());
        let mut span = c.span("x");
        assert_eq!(span.id(), None);
        span.field("k", 1i64);
        drop(span);
        c.event("e", vec![]);
        c.counter_add("n", 5);
        assert!(c.records().is_empty());
        assert_eq!(c.metrics(), MetricsSnapshot::default());
        assert!(c.to_jsonl().is_empty());
    }

    #[test]
    fn sim_source_feeds_span_durations() {
        let c = Collector::new();
        let ticks = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(100));
        let t = ticks.clone();
        c.set_sim_source(move || t.load(Ordering::Relaxed));
        let span = c.span("charged");
        ticks.store(350, Ordering::Relaxed);
        drop(span);
        match &c.records()[0] {
            Record::Span(s) => {
                assert_eq!(s.sim_start_us, 100);
                assert_eq!(s.sim_us, 250);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn jsonl_export_parses_back() {
        let c = Collector::new();
        c.event(
            "hello",
            vec![("msg".into(), Value::Str("line1\nline2".into()))],
        );
        c.counter_add("negotiation.messages", 3);
        let records = crate::record::parse_jsonl(&c.to_jsonl()).unwrap();
        assert_eq!(records.len(), 2);
        assert!(matches!(
            &records[1],
            Record::Counter { name, value: 3 } if name == "negotiation.messages"
        ));
    }
}
