//! Critical-path analysis and sim-time attribution over a completed
//! trace.
//!
//! [`attribute`] walks one root span's subtree and accounts for **every
//! simulated microsecond** under the root, split into categories:
//!
//! * `sim.charge` events (emitted by `SimClock::charge_n`) are mapped by
//!   cost kind — `signature-*`/`certificate-issue` → `crypto`,
//!   `ontology-mapping` → `ontology`, `db-query` → `store`,
//!   `soap-roundtrip` → `bus`, `policy-evaluation` → `policy`,
//!   `gui-step` → `gui`. A charge occupies the sim interval
//!   `[sim_us - cost_us, sim_us]` and is assigned to the **deepest**
//!   span in the subtree containing that interval; charges landing
//!   inside a `tn.checkpoint` span are overridden to `checkpoint`
//!   (checkpoint I/O), whatever their kind.
//! * Span *self time* (a span's duration minus its children's durations
//!   minus the charges assigned directly to it) covers the clock
//!   `advance`s that emit no event: `net.transit` self time (simulated
//!   network latency and drop timeouts) → `bus`, `retry.backoff` and
//!   `client.reconnect` → `retry`, `formation.lifecycle` → `lifecycle`,
//!   `tn.checkpoint` → `checkpoint`.
//! * Whatever remains lands in the explicit `unattributed` residual, so
//!   categories + residual always sum to exactly the root's `sim_us`.
//!
//! Interval containment is only meaningful when the trace was driven
//! serially (one sim clock, no concurrent sim-time interleaving) — true
//! for the E11 chaos rows the analyzer gates on. The deterministic
//! sim-clock basis means the same seeded run always attributes
//! identically.

use crate::record::{Record, SpanRecord, Value};
use crate::summary::fmt_us;
use std::collections::HashMap;
use std::fmt::Write as _;

/// The sim-time attribution of one root span's subtree.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// The root span the accounting covers.
    pub root: SpanRecord,
    /// Total simulated time under the root (`root.sim_us`).
    pub total_sim_us: u64,
    /// Attributed categories, largest first (name ties alphabetical);
    /// the `unattributed` residual is *not* in this list.
    pub categories: Vec<(String, u64)>,
    /// Sim time the analyzer could not attribute to any category.
    pub unattributed_us: u64,
}

impl Attribution {
    /// Total attributed sim time (categories, residual excluded).
    pub fn attributed_us(&self) -> u64 {
        self.categories.iter().map(|(_, us)| us).sum()
    }

    /// Attributed share of the root's sim time, in `0.0 ..= 1.0`
    /// (1.0 for a zero-duration root).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_sim_us == 0 {
            1.0
        } else {
            self.attributed_us() as f64 / self.total_sim_us as f64
        }
    }
}

/// The category a `sim.charge` cost kind bills to, by its wire label
/// (see `CostKind::label` in `trust-vo-soa`).
fn kind_category(kind: &str) -> &'static str {
    match kind {
        "signature-verify" | "signature-sign" | "certificate-issue" => "crypto",
        "ontology-mapping" => "ontology",
        "db-query" => "store",
        "soap-roundtrip" => "bus",
        "policy-evaluation" => "policy",
        "gui-step" => "gui",
        _ => "unattributed",
    }
}

/// The category a span's *self* time bills to, by span name — the
/// advance-based costs that emit no `sim.charge` event.
fn span_category(name: &str) -> Option<&'static str> {
    match name {
        "net.transit" => Some("bus"),
        "retry.backoff" | "client.reconnect" => Some("retry"),
        "tn.checkpoint" => Some("checkpoint"),
        "formation.lifecycle" => Some("lifecycle"),
        _ => None,
    }
}

/// All root spans (no parent) named `name`, in record order.
pub fn roots<'a>(records: &'a [Record], name: &str) -> Vec<&'a SpanRecord> {
    records
        .iter()
        .filter_map(|r| match r {
            Record::Span(s) if s.parent.is_none() && s.name == name => Some(s),
            _ => None,
        })
        .collect()
}

struct Tree<'a> {
    spans: Vec<&'a SpanRecord>,
    by_id: HashMap<u64, usize>,
    children: HashMap<u64, Vec<usize>>,
    /// Depth below the root for every subtree member (root = 0);
    /// spans outside the subtree are absent.
    depth: HashMap<u64, usize>,
}

impl<'a> Tree<'a> {
    fn build(records: &'a [Record], root_id: u64) -> Option<Tree<'a>> {
        let spans: Vec<&SpanRecord> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        by_id.get(&root_id)?;
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        for (idx, span) in spans.iter().enumerate() {
            if let Some(parent) = span.parent {
                children.entry(parent).or_default().push(idx);
            }
        }
        let mut depth = HashMap::new();
        let mut stack = vec![(root_id, 0usize)];
        while let Some((id, d)) = stack.pop() {
            if depth.insert(id, d).is_some() {
                continue; // defensive: a malformed parent cycle
            }
            for &child in children.get(&id).into_iter().flatten() {
                stack.push((spans[child].id, d + 1));
            }
        }
        Some(Tree {
            spans,
            by_id,
            children,
            depth,
        })
    }

    fn span(&self, id: u64) -> &SpanRecord {
        self.spans[self.by_id[&id]]
    }

    /// Deepest subtree span whose sim interval contains `[t0, t1]`
    /// (ties broken toward the latest-starting, then highest-id span —
    /// the innermost under serial nesting).
    fn deepest_containing(&self, t0: u64, t1: u64) -> Option<u64> {
        let mut best: Option<(usize, u64, u64)> = None;
        for span in &self.spans {
            let Some(&d) = self.depth.get(&span.id) else {
                continue;
            };
            let end = span.sim_start_us.saturating_add(span.sim_us);
            if span.sim_start_us <= t0 && t1 <= end {
                let key = (d, span.sim_start_us, span.id);
                match best {
                    Some(b) if key <= b => {}
                    _ => best = Some(key),
                }
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// Whether `id` or any ancestor within the subtree is a
    /// `tn.checkpoint` span.
    fn under_checkpoint(&self, mut id: u64) -> bool {
        loop {
            let span = self.span(id);
            if span.name == "tn.checkpoint" {
                return true;
            }
            match span.parent {
                Some(p) if self.depth.contains_key(&p) => id = p,
                _ => return false,
            }
        }
    }
}

/// Attributes every simulated microsecond under the span `root_id` (see
/// the [module docs](self) for the algorithm). Returns `None` when the
/// root span is not in `records`.
pub fn attribute(records: &[Record], root_id: u64) -> Option<Attribution> {
    let tree = Tree::build(records, root_id)?;
    let root = tree.span(root_id).clone();

    let mut categories: HashMap<&'static str, u64> = HashMap::new();
    let mut unattributed = 0u64;
    // Charges assigned per span, to subtract from that span's self time.
    let mut charged_direct: HashMap<u64, u64> = HashMap::new();

    for record in records {
        let Record::Event(e) = record else { continue };
        if e.name != "sim.charge" {
            continue;
        }
        let kind = e.fields.iter().find_map(|(k, v)| match v {
            Value::Str(s) if k == "kind" => Some(s.as_str()),
            _ => None,
        });
        let cost = e.fields.iter().find_map(|(k, v)| match v {
            Value::I64(n) if k == "cost_us" => Some(*n as u64),
            _ => None,
        });
        let (Some(kind), Some(cost)) = (kind, cost) else {
            continue;
        };
        // The charge advanced the clock *to* e.sim_us, so it occupies
        // the interval ending there.
        let t1 = e.sim_us;
        let t0 = t1.saturating_sub(cost);
        let Some(span_id) = tree.deepest_containing(t0, t1) else {
            continue; // outside this root's subtree
        };
        let category = if tree.under_checkpoint(span_id) {
            "checkpoint"
        } else {
            kind_category(kind)
        };
        *charged_direct.entry(span_id).or_default() += cost;
        if category == "unattributed" {
            unattributed += cost;
        } else {
            *categories.entry(category).or_default() += cost;
        }
    }

    // Self time: each span's duration minus its children's durations
    // minus the charges already billed directly to it.
    for span in &tree.spans {
        if !tree.depth.contains_key(&span.id) {
            continue;
        }
        let child_total: u64 = tree
            .children
            .get(&span.id)
            .into_iter()
            .flatten()
            .map(|&idx| tree.spans[idx].sim_us)
            .sum();
        let charged = charged_direct.get(&span.id).copied().unwrap_or(0);
        let residual = span
            .sim_us
            .saturating_sub(child_total)
            .saturating_sub(charged);
        if residual == 0 {
            continue;
        }
        match span_category(&span.name) {
            Some(cat) => *categories.entry(cat).or_default() += residual,
            None => unattributed += residual,
        }
    }

    let mut categories: Vec<(String, u64)> = categories
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    categories.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Some(Attribution {
        total_sim_us: root.sim_us,
        root,
        categories,
        unattributed_us: unattributed,
    })
}

/// The greedy critical path from `root_id`: at each level, descend into
/// the child with the largest sim duration (ties toward the lower id).
/// Returns the chain root-first; empty when the root is unknown.
pub fn critical_path(records: &[Record], root_id: u64) -> Vec<SpanRecord> {
    let Some(tree) = Tree::build(records, root_id) else {
        return Vec::new();
    };
    let mut path = Vec::new();
    let mut id = root_id;
    loop {
        path.push(tree.span(id).clone());
        let next = tree
            .children
            .get(&id)
            .into_iter()
            .flatten()
            .map(|&idx| tree.spans[idx])
            .max_by(|a, b| a.sim_us.cmp(&b.sim_us).then_with(|| b.id.cmp(&a.id)));
        match next {
            Some(child) => id = child.id,
            None => return path,
        }
    }
}

/// Renders an [`Attribution`] as a fixed-width per-formation table with
/// the explicit `unattributed` residual and a total row.
pub fn render_attribution(a: &Attribution) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "attribution — {} (span {}, trace {})",
        a.root.name, a.root.id, a.root.trace_id
    );
    let share = |us: u64| {
        if a.total_sim_us == 0 {
            0.0
        } else {
            100.0 * us as f64 / a.total_sim_us as f64
        }
    };
    for (name, us) in &a.categories {
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {:>6.1}%",
            name,
            fmt_us(*us),
            share(*us)
        );
    }
    let _ = writeln!(
        out,
        "  {:<14} {:>10} {:>6.1}%",
        "unattributed",
        fmt_us(a.unattributed_us),
        share(a.unattributed_us)
    );
    let _ = writeln!(
        out,
        "  {:<14} {:>10} {:>6.1}%",
        "total",
        fmt_us(a.total_sim_us),
        if a.total_sim_us == 0 { 0.0 } else { 100.0 }
    );
    out
}

/// Renders the first `k` hops of a critical path, one line per span
/// with its sim start/duration.
pub fn render_critical_path(path: &[SpanRecord], k: usize) -> String {
    let mut out = String::new();
    for (i, span) in path.iter().take(k).enumerate() {
        let _ = writeln!(
            out,
            "  {:>2}. {}{} sim {} @ {}",
            i + 1,
            "  ".repeat(i.min(8)),
            span.name,
            fmt_us(span.sim_us),
            fmt_us(span.sim_start_us)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EventRecord;

    fn span(id: u64, parent: Option<u64>, name: &str, start: u64, dur: u64) -> Record {
        Record::Span(SpanRecord {
            id,
            parent,
            trace_id: 5,
            name: name.into(),
            wall_start_us: 0,
            wall_us: 0,
            sim_start_us: start,
            sim_us: dur,
            fields: vec![],
        })
    }

    fn charge(kind: &str, cost: u64, at: u64) -> Record {
        Record::Event(EventRecord {
            name: "sim.charge".into(),
            wall_us: 0,
            sim_us: at,
            fields: vec![
                ("kind".into(), Value::Str(kind.into())),
                ("n".into(), Value::I64(1)),
                ("cost_us".into(), Value::I64(cost as i64)),
            ],
        })
    }

    /// root [0,1000]
    ///   ├ net.transit [100,400]
    ///   │   └ bus.dispatch [200,300]
    ///   │       └ tn.checkpoint [250,300]
    ///   └ retry.backoff [400,500]
    /// charges: db-query 50 @ [550,600] (root), signature-verify 20 @
    /// [260,280] (inside checkpoint → checkpoint), soap-roundtrip 100 @
    /// [200,300]... choose [110,210]? overlaps transit only partially —
    /// keep it simple: soap-roundtrip 50 @ [150,200] (inside transit).
    fn trace() -> Vec<Record> {
        vec![
            span(1, None, "formation.form_vo_resilient", 0, 1_000),
            span(2, Some(1), "net.transit", 100, 300),
            span(3, Some(2), "bus.dispatch", 200, 100),
            span(5, Some(3), "tn.checkpoint", 250, 50),
            span(4, Some(1), "retry.backoff", 400, 100),
            charge("db-query", 50, 600),
            charge("signature-verify", 20, 280),
            charge("soap-roundtrip", 50, 200),
            // A charge outside the subtree interval entirely: ignored.
            charge("gui-step", 30, 2_000),
        ]
    }

    #[test]
    fn attribution_accounts_for_every_sim_microsecond() {
        let a = attribute(&trace(), 1).unwrap();
        assert_eq!(a.total_sim_us, 1_000);
        let get = |name: &str| {
            a.categories
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, us)| *us)
                .unwrap_or(0)
        };
        // transit self = 300 - 100 (dispatch) - 50 (soap charge) = 150,
        // plus the soap charge itself billed to `bus`.
        assert_eq!(get("bus"), 200);
        // dispatch self = 100 - 50 (checkpoint child) = 50 → unattributed;
        // checkpoint self = 50 - 20 (charge) = 30 plus the overridden
        // signature charge 20.
        assert_eq!(get("checkpoint"), 50);
        assert_eq!(get("store"), 50);
        assert_eq!(get("crypto"), 0, "charge inside checkpoint is overridden");
        assert_eq!(get("retry"), 100);
        // root self = 1000 - 300 - 100 - 50 (db charge) = 550, plus
        // dispatch's 50 → unattributed 600.
        assert_eq!(a.unattributed_us, 600);
        assert_eq!(a.attributed_us() + a.unattributed_us, a.total_sim_us);
        let table = render_attribution(&a);
        assert!(table.contains("unattributed"));
        assert!(table.contains("total"));
    }

    #[test]
    fn critical_path_follows_longest_children() {
        let path = critical_path(&trace(), 1);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "formation.form_vo_resilient",
                "net.transit",
                "bus.dispatch",
                "tn.checkpoint"
            ]
        );
        let text = render_critical_path(&path, 3);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("net.transit"));
    }

    #[test]
    fn unknown_root_is_none_and_roots_filters_by_name() {
        assert!(attribute(&trace(), 99).is_none());
        assert!(critical_path(&trace(), 99).is_empty());
        let records = trace();
        let roots = roots(&records, "formation.form_vo_resilient");
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].id, 1);
    }
}
