//! Observability substrate for the trust-vo workspace.
//!
//! The paper's whole evaluation (Fig. 9, the message-count and disclosure
//! tables) is an observability exercise: counting rounds, disclosures, and
//! per-phase latencies. This crate provides the instrumentation layer the
//! rest of the workspace threads through — with **no external
//! dependencies** (std only, so the offline build stays offline) and no
//! global state (every [`Collector`] owns its own [`Registry`] and ring
//! buffer).
//!
//! Three primitives:
//!
//! * **Spans** ([`SpanGuard`]) — hierarchical timed regions with explicit
//!   parent ids, capturing both wall-clock *and* simulated
//!   (`SimClock`-virtual) durations. Recorded on drop.
//! * **Metrics** ([`metrics`]) — sharded atomic [`Counter`]s, [`Gauge`]s,
//!   and fixed-bucket [`Histogram`]s registered by name in a [`Registry`].
//!   Increments are lock-free; registry locks are touched only at
//!   handle-registration time, never on the hot path.
//! * **Events** — structured key/value records pushed into the
//!   collector's bounded in-memory ring buffer.
//!
//! Export: [`Collector::to_jsonl`] serializes the ring buffer plus a
//! metrics snapshot as JSON lines ([`Record::from_json_line`] parses them
//! back — see the round-trip tests), [`Collector::to_perfetto`] emits the
//! same batch as a Chrome trace-event / Perfetto document, and
//! [`Collector::summary`] renders a human-readable table.
//!
//! Causal tracing: [`trace`] defines the [`TraceContext`]/[`SpanLink`]
//! pair carried across SOA envelope hops so one negotiation's spans form
//! a single tree across client, retry, fault-transport, bus, and service
//! layers; [`critical`] attributes a completed trace's sim time to cost
//! categories and extracts critical paths; [`flight`] is the bounded
//! per-negotiation flight recorder dumped on faults.
//!
//! A disabled collector ([`Collector::disabled`], or any collector when
//! the `enabled` feature is off) makes every operation an early-returning
//! no-op, cheap enough to leave in the parallel formation hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod critical;
pub mod flight;
mod json;
pub mod metrics;
pub mod perfetto;
pub mod record;
pub mod summary;
pub mod trace;

pub use collector::{Collector, ObsContext, SpanGuard, DEFAULT_RING_CAPACITY};
pub use critical::{
    attribute, critical_path, render_attribution, render_critical_path, Attribution,
};
pub use flight::{FlightEntry, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use record::{parse_jsonl, EventRecord, HistogramRecord, Record, SpanRecord, Value};
pub use summary::render_summary;
pub use trace::{SpanLink, TraceContext};
