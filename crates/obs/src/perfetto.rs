//! Chrome trace-event ("Perfetto") JSON export.
//!
//! Renders a batch of [`Record`]s as a Chrome `traceEvents` document
//! that `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Spans become complete (`"ph":"X"`) events, structured
//! events become instants (`"ph":"i"`), and counter/gauge/histogram
//! snapshots become counter (`"ph":"C"`) events.
//!
//! Track layout: everything shares `pid` 1; a span's `tid` is its
//! **trace id**, so each traced negotiation/formation renders as its own
//! track while untraced spans share track 0.
//!
//! Two variants mirror the JSONL exporter's contract:
//!
//! * [`render`] uses wall-clock timestamps (what a human profiles);
//! * [`render_deterministic`] uses simulated-clock timestamps and scrubs
//!   every wall-derived quantity, so two runs of the same seeded
//!   workload produce **byte-identical** documents — the property the
//!   chaos-replay CI gate `cmp`s on, exactly like
//!   `Collector::to_jsonl_deterministic`.

use crate::json;
use crate::record::{write_value, Record};
use std::fmt::Write as _;

/// Which clock the exporter timestamps events with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Clock {
    Wall,
    Sim,
}

/// Renders records as a Chrome trace-event JSON document using
/// wall-clock timestamps.
pub fn render(records: &[Record]) -> String {
    render_with(records, Clock::Wall)
}

/// Renders records as a Chrome trace-event JSON document using
/// simulated-clock timestamps only. Callers should scrub wall times
/// first (`Record::scrub_wall_times`) if the record batch also feeds a
/// byte-compared artifact; this renderer never reads wall fields, so
/// its output is deterministic for a deterministic workload either way.
pub fn render_deterministic(records: &[Record]) -> String {
    render_with(records, Clock::Sim)
}

fn render_with(records: &[Record], clock: Clock) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for record in records {
        let mut line = String::with_capacity(96);
        match record {
            Record::Span(s) => {
                let (ts, dur) = match clock {
                    Clock::Wall => (s.wall_start_us, s.wall_us),
                    Clock::Sim => (s.sim_start_us, s.sim_us),
                };
                line.push_str("{\"name\":");
                json::escape_into(&mut line, &s.name);
                let _ = write!(
                    line,
                    ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"id\":{}",
                    s.trace_id, s.id
                );
                if let Some(parent) = s.parent {
                    let _ = write!(line, ",\"parent\":{parent}");
                }
                for (k, v) in &s.fields {
                    line.push(',');
                    json::escape_into(&mut line, k);
                    line.push(':');
                    write_value(&mut line, v);
                }
                line.push_str("}}");
            }
            Record::Event(e) => {
                let ts = match clock {
                    Clock::Wall => e.wall_us,
                    Clock::Sim => e.sim_us,
                };
                line.push_str("{\"name\":");
                json::escape_into(&mut line, &e.name);
                let _ = write!(
                    line,
                    ",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":{ts},\"args\":{{"
                );
                for (i, (k, v)) in e.fields.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    json::escape_into(&mut line, k);
                    line.push(':');
                    write_value(&mut line, v);
                }
                line.push_str("}}");
            }
            Record::Counter { name, value } => {
                counter_event(&mut line, name, &[("value", *value)]);
            }
            Record::Gauge { name, value } => {
                line.push_str("{\"name\":");
                json::escape_into(&mut line, name);
                let _ = write!(
                    line,
                    ",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{{\"value\":{value}}}}}"
                );
            }
            Record::Histogram(h) => {
                counter_event(&mut line, &h.name, &[("count", h.count), ("sum", h.sum)]);
            }
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&line);
    }
    out.push_str("\n]}\n");
    out
}

fn counter_event(line: &mut String, name: &str, series: &[(&str, u64)]) {
    line.push_str("{\"name\":");
    json::escape_into(line, name);
    line.push_str(",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{");
    for (i, (k, v)) in series.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "\"{k}\":{v}");
    }
    line.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventRecord, HistogramRecord, SpanRecord, Value};

    fn sample() -> Vec<Record> {
        vec![
            Record::Span(SpanRecord {
                id: 2,
                parent: Some(1),
                trace_id: 7,
                name: "net.transit".into(),
                wall_start_us: 123,
                wall_us: 456,
                sim_start_us: 1_000,
                sim_us: 2_000,
                fields: vec![("disposition".into(), Value::Str("delivered".into()))],
            }),
            Record::Event(EventRecord {
                name: "sim.charge".into(),
                wall_us: 9,
                sim_us: 500,
                fields: vec![("cost_us".into(), Value::I64(110_000))],
            }),
            Record::Counter {
                name: "bus.calls".into(),
                value: 3,
            },
            Record::Gauge {
                name: "depth".into(),
                value: -1,
            },
            Record::Histogram(HistogramRecord {
                name: "net.backoff_us".into(),
                bounds: vec![1_000],
                buckets: vec![1, 0],
                count: 1,
                sum: 40_000,
            }),
        ]
    }

    #[test]
    fn deterministic_render_uses_sim_clock_and_trace_tracks() {
        let text = render_deterministic(&sample());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("]}\n"));
        // Span rides its trace's track with sim timestamps.
        assert!(text.contains(
            "{\"name\":\"net.transit\",\"ph\":\"X\",\"pid\":1,\"tid\":7,\"ts\":1000,\"dur\":2000,\
             \"args\":{\"id\":2,\"parent\":1,\"disposition\":\"delivered\"}}"
        ));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ts\":500"));
        assert!(text.contains("\"name\":\"bus.calls\",\"ph\":\"C\""));
        assert!(text.contains("\"count\":1,\"sum\":40000"));
        // No wall quantity leaks into the deterministic document.
        assert!(!text.contains("123"));
        assert!(!text.contains("456"));
    }

    #[test]
    fn wall_render_uses_wall_clock() {
        let text = render(&sample());
        assert!(text.contains("\"ts\":123,\"dur\":456"));
    }

    #[test]
    fn empty_batch_is_a_valid_document() {
        assert_eq!(render_deterministic(&[]), "{\"traceEvents\":[\n]}\n");
    }
}
