//! Human-readable summary rendering for a batch of [`Record`]s.

use crate::record::Record;
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default)]
struct SpanAgg {
    count: u64,
    wall_total_us: u64,
    sim_total_us: u64,
}

/// Renders a fixed-width summary table: spans aggregated by name (count,
/// total/mean wall time, total sim time), event counts by name, then
/// counters, gauges, and histograms. Ordering is alphabetical within
/// each section, so output is deterministic.
pub fn render_summary(records: &[Record]) -> String {
    let mut spans: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    let mut events: BTreeMap<&str, u64> = BTreeMap::new();
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, i64> = BTreeMap::new();
    let mut histograms: Vec<&crate::record::HistogramRecord> = Vec::new();

    for record in records {
        match record {
            Record::Span(s) => {
                let agg = spans.entry(&s.name).or_default();
                agg.count += 1;
                agg.wall_total_us = agg.wall_total_us.saturating_add(s.wall_us);
                agg.sim_total_us = agg.sim_total_us.saturating_add(s.sim_us);
            }
            Record::Event(e) => *events.entry(&e.name).or_default() += 1,
            Record::Counter { name, value } => {
                counters.insert(name, *value);
            }
            Record::Gauge { name, value } => {
                gauges.insert(name, *value);
            }
            Record::Histogram(h) => histograms.push(h),
        }
    }
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    let mut out = String::new();
    if !spans.is_empty() {
        out.push_str("spans\n");
        let _ = writeln!(
            out,
            "  {:<36} {:>7} {:>12} {:>12} {:>12}",
            "name", "count", "wall total", "wall mean", "sim total"
        );
        for (name, agg) in &spans {
            let _ = writeln!(
                out,
                "  {:<36} {:>7} {:>12} {:>12} {:>12}",
                name,
                agg.count,
                fmt_us(agg.wall_total_us),
                fmt_us(agg.wall_total_us / agg.count.max(1)),
                fmt_us(agg.sim_total_us)
            );
        }
    }
    if !events.is_empty() {
        out.push_str("events\n");
        for (name, count) in &events {
            let _ = writeln!(out, "  {name:<36} {count:>7}");
        }
    }
    if !counters.is_empty() {
        out.push_str("counters\n");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name:<36} {value:>7}");
        }
    }
    if !gauges.is_empty() {
        out.push_str("gauges\n");
        for (name, value) in &gauges {
            let _ = writeln!(out, "  {name:<36} {value:>7}");
        }
    }
    if !histograms.is_empty() {
        out.push_str("histograms\n");
        for h in &histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<36} {:>7} samples, mean {}, p50 {}, p95 {}, p99 {}, p~max {}",
                h.name,
                h.count,
                fmt_us(mean),
                fmt_us(quantile(h, 0.50)),
                fmt_us(quantile(h, 0.95)),
                fmt_us(quantile(h, 0.99)),
                fmt_us(approx_max(h))
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no records)\n");
    }
    out
}

/// Estimates the `q`-quantile (0.0 ..= 1.0) of a bucketed histogram by
/// linear interpolation inside the bucket holding rank `q * count`:
/// samples are assumed uniform between the bucket's lower and upper
/// bound (0 below the first bound). The overflow bucket has no upper
/// bound, so it clamps to the last bound — the same crude estimate
/// [`approx_max`] uses.
fn quantile(h: &crate::record::HistogramRecord, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let pos = q * h.count as f64;
    let mut cum = 0.0;
    for (idx, &bucket) in h.buckets.iter().enumerate() {
        let c = bucket as f64;
        if c > 0.0 && cum + c >= pos {
            let lower = if idx == 0 {
                0.0
            } else {
                h.bounds[idx - 1] as f64
            };
            let upper = h.bounds.get(idx).or(h.bounds.last()).copied().unwrap_or(0) as f64;
            let frac = ((pos - cum) / c).clamp(0.0, 1.0);
            return (lower + frac * (upper - lower)) as u64;
        }
        cum += c;
    }
    approx_max(h)
}

/// Upper bound of the highest non-empty bucket — a crude max estimate.
fn approx_max(h: &crate::record::HistogramRecord) -> u64 {
    for idx in (0..h.buckets.len()).rev() {
        if h.buckets[idx] > 0 {
            return h
                .bounds
                .get(idx)
                .copied()
                .unwrap_or_else(|| h.bounds.last().copied().unwrap_or(0));
        }
    }
    0
}

/// Formats a microsecond quantity with a human unit (also used by the
/// critical-path report).
pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventRecord, HistogramRecord, SpanRecord};

    #[test]
    fn renders_all_sections_deterministically() {
        let records = vec![
            Record::Span(SpanRecord {
                id: 1,
                parent: None,
                trace_id: 0,
                name: "b.span".into(),
                wall_start_us: 0,
                wall_us: 2_500,
                sim_start_us: 0,
                sim_us: 1_000_000,
                fields: vec![],
            }),
            Record::Span(SpanRecord {
                id: 2,
                parent: None,
                trace_id: 0,
                name: "a.span".into(),
                wall_start_us: 0,
                wall_us: 500,
                sim_start_us: 0,
                sim_us: 0,
                fields: vec![],
            }),
            Record::Event(EventRecord {
                name: "sim.charge".into(),
                wall_us: 0,
                sim_us: 0,
                fields: vec![],
            }),
            Record::Counter {
                name: "negotiation.messages".into(),
                value: 9,
            },
            Record::Gauge {
                name: "depth".into(),
                value: -1,
            },
            Record::Histogram(HistogramRecord {
                name: "store.op_us".into(),
                bounds: vec![10, 100],
                buckets: vec![1, 2, 0],
                count: 3,
                sum: 90,
            }),
        ];
        let text = render_summary(&records);
        assert!(text.contains("spans"));
        assert!(text.find("a.span").unwrap() < text.find("b.span").unwrap());
        assert!(text.contains("2.50ms"));
        assert!(text.contains("1.00s"));
        assert!(text.contains("negotiation.messages"));
        assert!(text.contains("store.op_us"));
        assert!(text.contains("mean 30us"));
        // Interpolated quantiles of bounds [10, 100], buckets [1, 2, 0]:
        // p50 lands 25% into the second bucket, p95/p99 near its top.
        assert!(text.contains("p50 32us"));
        assert!(text.contains("p95 93us"));
        assert!(text.contains("p99 98us"));
    }

    #[test]
    fn quantile_interpolation_is_pinned_on_a_known_distribution() {
        // 40 samples spread uniformly, 10 per bucket, over bounds
        // 100/200/300/400 — every quantile is exactly computable.
        let h = HistogramRecord {
            name: "t.us".into(),
            bounds: vec![100, 200, 300, 400],
            buckets: vec![10, 10, 10, 10, 0],
            count: 40,
            sum: 8_000,
        };
        assert_eq!(quantile(&h, 0.50), 200);
        assert_eq!(quantile(&h, 0.95), 380);
        assert_eq!(quantile(&h, 0.99), 396);
        assert_eq!(quantile(&h, 0.0), 0);
        assert_eq!(quantile(&h, 1.0), 400);

        // Samples in the overflow bucket clamp to the last bound, the
        // same estimate approx_max reports.
        let overflow = HistogramRecord {
            name: "o.us".into(),
            bounds: vec![10, 100],
            buckets: vec![0, 0, 5],
            count: 5,
            sum: 1_000,
        };
        assert_eq!(quantile(&overflow, 0.50), 100);

        // Empty histograms report 0 everywhere.
        let empty = HistogramRecord {
            name: "e.us".into(),
            bounds: vec![10],
            buckets: vec![0, 0],
            count: 0,
            sum: 0,
        };
        assert_eq!(quantile(&empty, 0.99), 0);
    }

    #[test]
    fn empty_input_is_explicit() {
        assert_eq!(render_summary(&[]), "(no records)\n");
    }
}
