//! Human-readable summary rendering for a batch of [`Record`]s.

use crate::record::Record;
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default)]
struct SpanAgg {
    count: u64,
    wall_total_us: u64,
    sim_total_us: u64,
}

/// Renders a fixed-width summary table: spans aggregated by name (count,
/// total/mean wall time, total sim time), event counts by name, then
/// counters, gauges, and histograms. Ordering is alphabetical within
/// each section, so output is deterministic.
pub fn render_summary(records: &[Record]) -> String {
    let mut spans: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    let mut events: BTreeMap<&str, u64> = BTreeMap::new();
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, i64> = BTreeMap::new();
    let mut histograms: Vec<&crate::record::HistogramRecord> = Vec::new();

    for record in records {
        match record {
            Record::Span(s) => {
                let agg = spans.entry(&s.name).or_default();
                agg.count += 1;
                agg.wall_total_us = agg.wall_total_us.saturating_add(s.wall_us);
                agg.sim_total_us = agg.sim_total_us.saturating_add(s.sim_us);
            }
            Record::Event(e) => *events.entry(&e.name).or_default() += 1,
            Record::Counter { name, value } => {
                counters.insert(name, *value);
            }
            Record::Gauge { name, value } => {
                gauges.insert(name, *value);
            }
            Record::Histogram(h) => histograms.push(h),
        }
    }
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    let mut out = String::new();
    if !spans.is_empty() {
        out.push_str("spans\n");
        let _ = writeln!(
            out,
            "  {:<36} {:>7} {:>12} {:>12} {:>12}",
            "name", "count", "wall total", "wall mean", "sim total"
        );
        for (name, agg) in &spans {
            let _ = writeln!(
                out,
                "  {:<36} {:>7} {:>12} {:>12} {:>12}",
                name,
                agg.count,
                fmt_us(agg.wall_total_us),
                fmt_us(agg.wall_total_us / agg.count.max(1)),
                fmt_us(agg.sim_total_us)
            );
        }
    }
    if !events.is_empty() {
        out.push_str("events\n");
        for (name, count) in &events {
            let _ = writeln!(out, "  {name:<36} {count:>7}");
        }
    }
    if !counters.is_empty() {
        out.push_str("counters\n");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name:<36} {value:>7}");
        }
    }
    if !gauges.is_empty() {
        out.push_str("gauges\n");
        for (name, value) in &gauges {
            let _ = writeln!(out, "  {name:<36} {value:>7}");
        }
    }
    if !histograms.is_empty() {
        out.push_str("histograms\n");
        for h in &histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<36} {:>7} samples, mean {}, p~max {}",
                h.name,
                h.count,
                fmt_us(mean),
                fmt_us(approx_max(h))
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no records)\n");
    }
    out
}

/// Upper bound of the highest non-empty bucket — a crude max estimate.
fn approx_max(h: &crate::record::HistogramRecord) -> u64 {
    for idx in (0..h.buckets.len()).rev() {
        if h.buckets[idx] > 0 {
            return h
                .bounds
                .get(idx)
                .copied()
                .unwrap_or_else(|| h.bounds.last().copied().unwrap_or(0));
        }
    }
    0
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventRecord, HistogramRecord, SpanRecord};

    #[test]
    fn renders_all_sections_deterministically() {
        let records = vec![
            Record::Span(SpanRecord {
                id: 1,
                parent: None,
                name: "b.span".into(),
                wall_start_us: 0,
                wall_us: 2_500,
                sim_start_us: 0,
                sim_us: 1_000_000,
                fields: vec![],
            }),
            Record::Span(SpanRecord {
                id: 2,
                parent: None,
                name: "a.span".into(),
                wall_start_us: 0,
                wall_us: 500,
                sim_start_us: 0,
                sim_us: 0,
                fields: vec![],
            }),
            Record::Event(EventRecord {
                name: "sim.charge".into(),
                wall_us: 0,
                sim_us: 0,
                fields: vec![],
            }),
            Record::Counter {
                name: "negotiation.messages".into(),
                value: 9,
            },
            Record::Gauge {
                name: "depth".into(),
                value: -1,
            },
            Record::Histogram(HistogramRecord {
                name: "store.op_us".into(),
                bounds: vec![10, 100],
                buckets: vec![1, 2, 0],
                count: 3,
                sum: 90,
            }),
        ];
        let text = render_summary(&records);
        assert!(text.contains("spans"));
        assert!(text.find("a.span").unwrap() < text.find("b.span").unwrap());
        assert!(text.contains("2.50ms"));
        assert!(text.contains("1.00s"));
        assert!(text.contains("negotiation.messages"));
        assert!(text.contains("store.op_us"));
        assert!(text.contains("mean 30us"));
    }

    #[test]
    fn empty_input_is_explicit() {
        assert_eq!(render_summary(&[]), "(no records)\n");
    }
}
