//! Exportable record types and the JSON-lines wire format.
//!
//! Every line is one JSON object with a `"type"` discriminator:
//! `"span"`, `"event"`, `"counter"`, `"gauge"`, or `"histogram"`.
//! [`Record::to_json_line`] and [`Record::from_json_line`] are exact
//! inverses for every representable record (see the round-trip tests).

use crate::json::{self, Json};
use std::fmt::Write as _;

/// A structured field value attached to spans and events.
///
/// Integers are carried as `i64` (not `u64`) so the JSON round trip is
/// unambiguous; durations and ids that need the full `u64` range have
/// dedicated schema fields instead.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::I64(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A completed span: a named, timed region with an optional parent.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Collector-unique span id (dense, starting at 1).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Trace this span belongs to (0 = untraced; see `crate::trace`).
    pub trace_id: u64,
    /// Span name, e.g. `negotiation.policy_phase`.
    pub name: String,
    /// Wall-clock start, microseconds since the collector's epoch.
    pub wall_start_us: u64,
    /// Wall-clock duration in microseconds.
    pub wall_us: u64,
    /// Simulated-clock start in microseconds (0 when no sim source).
    pub sim_start_us: u64,
    /// Simulated-clock duration in microseconds.
    pub sim_us: u64,
    /// Structured key/value fields, in insertion order.
    pub fields: Vec<(String, Value)>,
}

/// A point-in-time structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Event name, e.g. `sim.charge`.
    pub name: String,
    /// Wall-clock timestamp, microseconds since the collector's epoch.
    pub wall_us: u64,
    /// Simulated-clock timestamp in microseconds.
    pub sim_us: u64,
    /// Structured key/value fields, in insertion order.
    pub fields: Vec<(String, Value)>,
}

/// An exported histogram snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramRecord {
    /// Metric name.
    pub name: String,
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
}

/// One exportable observability record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A completed span.
    Span(SpanRecord),
    /// A structured event.
    Event(EventRecord),
    /// A counter total at export time.
    Counter {
        /// Metric name.
        name: String,
        /// Counter total.
        value: u64,
    },
    /// A gauge value at export time.
    Gauge {
        /// Metric name.
        name: String,
        /// Gauge value.
        value: i64,
    },
    /// A histogram snapshot at export time.
    Histogram(HistogramRecord),
}

fn write_fields(out: &mut String, fields: &[(String, Value)]) {
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

/// Writes one field [`Value`] as a JSON value (shared with the Perfetto
/// exporter's `args` objects).
pub(crate) fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        // Rust's f64 Display prints the shortest representation that
        // parses back to the same value, so this round-trips.
        Value::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
                if f.fract() == 0.0 {
                    // "2" would re-parse fine as f64, but keep the
                    // type distinguishable from I64 on the wire.
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Inf; encode as null-like string.
                json::escape_into(out, &f.to_string());
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => json::escape_into(out, s),
    }
}

fn write_u64_arr(out: &mut String, key: &str, values: &[u64]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

impl Record {
    /// Zeroes every wall-clock field, leaving only sim-clock timings.
    ///
    /// Sim durations are a pure function of the workload, but wall
    /// timings vary run to run; scrubbing them makes two exports of the
    /// same deterministic workload byte-identical — the property the
    /// chaos-replay CI gate diffs on.
    ///
    /// Histograms named `*.op_us` (the wall-latency naming convention —
    /// see `Database::attach_obs` in `trust-vo-store`) hold wall-clock
    /// samples throughout: their sample *count* is deterministic and kept,
    /// but the timing shape (buckets, sum) is zeroed.
    pub fn scrub_wall_times(&mut self) {
        match self {
            Record::Span(s) => {
                s.wall_start_us = 0;
                s.wall_us = 0;
            }
            Record::Event(e) => {
                e.wall_us = 0;
            }
            Record::Histogram(h) if h.name.ends_with(".op_us") => {
                h.buckets.iter_mut().for_each(|b| *b = 0);
                h.sum = 0;
            }
            Record::Counter { .. } | Record::Gauge { .. } | Record::Histogram(_) => {}
        }
    }

    /// Serializes this record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        match self {
            Record::Span(s) => {
                out.push_str("{\"type\":\"span\",\"id\":");
                let _ = write!(out, "{}", s.id);
                out.push_str(",\"parent\":");
                match s.parent {
                    Some(p) => {
                        let _ = write!(out, "{p}");
                    }
                    None => out.push_str("null"),
                }
                out.push_str(",\"name\":");
                json::escape_into(&mut out, &s.name);
                let _ = write!(
                    out,
                    ",\"wall_start_us\":{},\"wall_us\":{},\"sim_start_us\":{},\"sim_us\":{}",
                    s.wall_start_us, s.wall_us, s.sim_start_us, s.sim_us
                );
                // Untraced spans omit the key so pre-tracing exports and
                // new ones serialize identically.
                if s.trace_id != 0 {
                    let _ = write!(out, ",\"trace_id\":{}", s.trace_id);
                }
                write_fields(&mut out, &s.fields);
                out.push('}');
            }
            Record::Event(e) => {
                out.push_str("{\"type\":\"event\",\"name\":");
                json::escape_into(&mut out, &e.name);
                let _ = write!(out, ",\"wall_us\":{},\"sim_us\":{}", e.wall_us, e.sim_us);
                write_fields(&mut out, &e.fields);
                out.push('}');
            }
            Record::Counter { name, value } => {
                out.push_str("{\"type\":\"counter\",\"name\":");
                json::escape_into(&mut out, name);
                let _ = write!(out, ",\"value\":{value}}}");
            }
            Record::Gauge { name, value } => {
                out.push_str("{\"type\":\"gauge\",\"name\":");
                json::escape_into(&mut out, name);
                let _ = write!(out, ",\"value\":{value}}}");
            }
            Record::Histogram(h) => {
                out.push_str("{\"type\":\"histogram\",\"name\":");
                json::escape_into(&mut out, &h.name);
                write_u64_arr(&mut out, "bounds", &h.bounds);
                write_u64_arr(&mut out, "buckets", &h.buckets);
                let _ = write!(out, ",\"count\":{},\"sum\":{}}}", h.count, h.sum);
            }
        }
        out
    }

    /// Parses one JSON line produced by [`Record::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Record, String> {
        let doc = json::parse(line)?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing \"type\"")?;
        let name = |doc: &Json| -> Result<String, String> {
            doc.get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| "missing \"name\"".to_string())
        };
        let u64_field = |doc: &Json, key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing u64 \"{key}\""))
        };
        match kind {
            "span" => Ok(Record::Span(SpanRecord {
                id: u64_field(&doc, "id")?,
                parent: match doc.get("parent") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(v.as_u64().ok_or("bad \"parent\"")?),
                },
                name: name(&doc)?,
                wall_start_us: u64_field(&doc, "wall_start_us")?,
                wall_us: u64_field(&doc, "wall_us")?,
                sim_start_us: u64_field(&doc, "sim_start_us")?,
                sim_us: u64_field(&doc, "sim_us")?,
                // Absent in pre-tracing exports: default to untraced.
                trace_id: doc.get("trace_id").and_then(Json::as_u64).unwrap_or(0),
                fields: parse_fields(&doc)?,
            })),
            "event" => Ok(Record::Event(EventRecord {
                name: name(&doc)?,
                wall_us: u64_field(&doc, "wall_us")?,
                sim_us: u64_field(&doc, "sim_us")?,
                fields: parse_fields(&doc)?,
            })),
            "counter" => Ok(Record::Counter {
                name: name(&doc)?,
                value: u64_field(&doc, "value")?,
            }),
            "gauge" => Ok(Record::Gauge {
                name: name(&doc)?,
                value: doc
                    .get("value")
                    .and_then(Json::as_i64)
                    .ok_or("missing i64 \"value\"")?,
            }),
            "histogram" => {
                let u64_arr = |key: &str| -> Result<Vec<u64>, String> {
                    doc.get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("missing array \"{key}\""))?
                        .iter()
                        .map(|v| v.as_u64().ok_or_else(|| format!("bad item in \"{key}\"")))
                        .collect()
                };
                Ok(Record::Histogram(HistogramRecord {
                    name: name(&doc)?,
                    bounds: u64_arr("bounds")?,
                    buckets: u64_arr("buckets")?,
                    count: u64_field(&doc, "count")?,
                    sum: u64_field(&doc, "sum")?,
                }))
            }
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

fn parse_fields(doc: &Json) -> Result<Vec<(String, Value)>, String> {
    let obj = match doc.get("fields") {
        Some(Json::Obj(pairs)) => pairs,
        Some(_) => return Err("\"fields\" is not an object".into()),
        None => return Ok(Vec::new()),
    };
    obj.iter()
        .map(|(k, v)| {
            let value = match v {
                Json::Bool(b) => Value::Bool(*b),
                Json::Str(s) => Value::Str(s.clone()),
                Json::Num(raw) => {
                    if raw.contains(['.', 'e', 'E']) {
                        Value::F64(v.as_f64().ok_or_else(|| format!("bad number {raw:?}"))?)
                    } else {
                        Value::I64(v.as_i64().ok_or_else(|| format!("bad number {raw:?}"))?)
                    }
                }
                other => return Err(format!("unsupported field value {other:?}")),
            };
            Ok((k.clone(), value))
        })
        .collect()
}

/// Parses a whole JSONL document (one record per non-empty line).
pub fn parse_jsonl(text: &str) -> Result<Vec<Record>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(Record::from_json_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(record: Record) {
        let line = record.to_json_line();
        let back = Record::from_json_line(&line)
            .unwrap_or_else(|e| panic!("failed to parse {line:?}: {e}"));
        assert_eq!(back, record, "line was {line}");
    }

    #[test]
    fn span_round_trips_with_tricky_fields() {
        round_trip(Record::Span(SpanRecord {
            id: 7,
            parent: Some(3),
            trace_id: 0,
            name: "negotiation.policy_phase".into(),
            wall_start_us: 12,
            wall_us: 345,
            sim_start_us: 0,
            sim_us: u64::MAX,
            fields: vec![
                ("role".into(), Value::Str("Design \"Portal\"\n2".into())),
                ("depth".into(), Value::I64(-4)),
                ("ratio".into(), Value::F64(1.25)),
                ("whole".into(), Value::F64(2.0)),
                ("ok".into(), Value::Bool(true)),
            ],
        }));
    }

    #[test]
    fn root_span_has_null_parent() {
        let record = Record::Span(SpanRecord {
            id: 1,
            parent: None,
            trace_id: 0,
            name: "formation.form_vo".into(),
            wall_start_us: 0,
            wall_us: 1,
            sim_start_us: 2,
            sim_us: 3,
            fields: vec![],
        });
        assert!(record.to_json_line().contains("\"parent\":null"));
        // Untraced spans keep the pre-tracing wire shape.
        assert!(!record.to_json_line().contains("trace_id"));
        round_trip(record);
    }

    #[test]
    fn traced_span_round_trips_and_old_lines_default_to_untraced() {
        let record = Record::Span(SpanRecord {
            id: 4,
            parent: Some(2),
            trace_id: 99,
            name: "net.transit".into(),
            wall_start_us: 1,
            wall_us: 2,
            sim_start_us: 3,
            sim_us: 4,
            fields: vec![],
        });
        assert!(record.to_json_line().contains("\"trace_id\":99"));
        round_trip(record);
        // A line written before tracing existed parses as trace_id 0.
        let old = "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"x\",\
                   \"wall_start_us\":0,\"wall_us\":0,\"sim_start_us\":0,\"sim_us\":0,\
                   \"fields\":{}}";
        match Record::from_json_line(old).unwrap() {
            Record::Span(s) => assert_eq!(s.trace_id, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn event_counter_gauge_histogram_round_trip() {
        round_trip(Record::Event(EventRecord {
            name: "sim.charge".into(),
            wall_us: 9,
            sim_us: 10,
            fields: vec![("kind".into(), Value::Str("SoapRoundTrip".into()))],
        }));
        round_trip(Record::Counter {
            name: "negotiation.messages".into(),
            value: u64::MAX,
        });
        round_trip(Record::Gauge {
            name: "bus.depth".into(),
            value: -17,
        });
        round_trip(Record::Histogram(HistogramRecord {
            name: "store.vo.op_us".into(),
            bounds: vec![1, 10, 100],
            buckets: vec![0, 2, 5, 1],
            count: 8,
            sum: 911,
        }));
    }

    #[test]
    fn parse_jsonl_skips_blank_lines() {
        let text = "\n{\"type\":\"counter\",\"name\":\"a\",\"value\":1}\n\n";
        let records = parse_jsonl(text).unwrap();
        assert_eq!(records.len(), 1);
    }
}
