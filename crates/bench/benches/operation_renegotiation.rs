//! E8 — operation-phase flows (§5.1): authorization TNs between members,
//! membership renewal after expiry, and member replacement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trust_vo_bench::workloads;
use trust_vo_credential::RevocationList;
use trust_vo_negotiation::Strategy;
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::operation::{authorize_operation, renew_membership, replace_member};
use trust_vo_vo::reputation::ReputationLedger;
use trust_vo_vo::scenario::{names, roles};

fn bench_authorize(c: &mut Criterion) {
    let mut s = workloads::scenario(workloads::free_clock());
    let vo = s.form_vo(Strategy::Standard).unwrap();
    let (_initiator, providers) = workloads::operation_world(&s);
    c.bench_function("operation_authorize_flow_solution", |b| {
        b.iter(|| {
            let mut reputation = ReputationLedger::new();
            black_box(
                authorize_operation(
                    &vo,
                    &providers,
                    names::CONSULTANCY,
                    names::HPC,
                    "FlowSolution",
                    &mut reputation,
                    &s.toolkit.clock,
                    Strategy::Standard,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_renew(c: &mut Criterion) {
    c.bench_function("operation_renew_membership", |b| {
        b.iter(|| {
            let mut s = workloads::scenario(workloads::free_clock());
            let mut vo = s.form_vo(Strategy::Standard).unwrap();
            let (initiator, providers) = workloads::operation_world(&s);
            black_box(
                renew_membership(
                    &mut vo,
                    &initiator,
                    &providers,
                    names::AEROSPACE,
                    &mut s.toolkit.mailboxes,
                    &mut s.toolkit.reputation,
                    &s.toolkit.clock,
                    Strategy::Standard,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_replace(c: &mut Criterion) {
    c.bench_function("operation_replace_hpc_member", |b| {
        b.iter(|| {
            let mut s = workloads::scenario(workloads::free_clock());
            let mut vo = s.form_vo(Strategy::Standard).unwrap();
            let (initiator, providers) = workloads::operation_world(&s);
            let mut crl = RevocationList::new();
            let mut mailboxes = MailboxSystem::new();
            let mut reputation = ReputationLedger::new();
            black_box(
                replace_member(
                    &mut vo,
                    &initiator,
                    &providers,
                    &s.toolkit.registry,
                    roles::HPC,
                    &mut crl,
                    &mut mailboxes,
                    &mut reputation,
                    &s.toolkit.clock,
                    Strategy::Standard,
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_authorize, bench_renew, bench_replace);
criterion_main!(benches);
