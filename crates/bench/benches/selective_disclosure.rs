//! E7 — the §6.3 selective-disclosure extension: overhead of
//! hash-commitment certificates vs. plain X.509v2 attribute certificates,
//! as the attribute count grows. ("We are exploring the robustness and
//! computational complexity of this approach.")

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trust_vo_bench::workloads;
use trust_vo_credential::selective::SelectiveIssuance;
use trust_vo_credential::x509::AttributeCertificate;
use trust_vo_credential::{TimeRange, Timestamp};
use trust_vo_crypto::KeyPair;

fn window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap())
}

fn bench_plain_x509(c: &mut Criterion) {
    let issuer = KeyPair::from_seed(b"issuer");
    let holder = KeyPair::from_seed(b"holder");
    let mut group = c.benchmark_group("x509_issue_verify");
    for n in [1usize, 4, 16, 64] {
        let attrs = workloads::wide_attributes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let cert = AttributeCertificate::issue(
                    1,
                    "holder",
                    holder.public,
                    "issuer",
                    &issuer,
                    window(),
                    attrs.clone(),
                );
                cert.verify(workloads::at(), None).unwrap();
                black_box(cert)
            })
        });
    }
    group.finish();
}

fn bench_selective(c: &mut Criterion) {
    let issuer = KeyPair::from_seed(b"issuer");
    let holder = KeyPair::from_seed(b"holder");
    let mut group = c.benchmark_group("selective_issue_disclose_verify");
    for n in [1usize, 4, 16, 64] {
        let attrs = workloads::wide_attributes(n);
        // Reveal half the attributes.
        let reveal: Vec<&str> = attrs
            .iter()
            .take(n / 2 + 1)
            .map(|(k, _)| k.as_str())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let issuance = SelectiveIssuance::issue(
                    1,
                    "holder",
                    holder.public,
                    "issuer",
                    &issuer,
                    window(),
                    &attrs,
                );
                let view = issuance.disclose(&reveal).unwrap();
                view.verify(workloads::at(), None).unwrap();
                black_box(view)
            })
        });
    }
    group.finish();
}

fn bench_verify_only(c: &mut Criterion) {
    // Receiver-side comparison at a fixed width.
    let issuer = KeyPair::from_seed(b"issuer");
    let holder = KeyPair::from_seed(b"holder");
    let attrs = workloads::wide_attributes(16);
    let plain = AttributeCertificate::issue(
        1,
        "holder",
        holder.public,
        "issuer",
        &issuer,
        window(),
        attrs.clone(),
    );
    let issuance = SelectiveIssuance::issue(
        1,
        "holder",
        holder.public,
        "issuer",
        &issuer,
        window(),
        &attrs,
    );
    let reveal: Vec<&str> = attrs.iter().take(8).map(|(k, _)| k.as_str()).collect();
    let view = issuance.disclose(&reveal).unwrap();
    let mut group = c.benchmark_group("verify_only_16_attrs");
    group.bench_function("plain_x509", |b| {
        b.iter(|| {
            plain.verify(workloads::at(), None).unwrap();
            black_box(())
        })
    });
    group.bench_function("selective_half_disclosed", |b| {
        b.iter(|| {
            view.verify(workloads::at(), None).unwrap();
            black_box(())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plain_x509,
    bench_selective,
    bench_verify_only
);
criterion_main!(benches);
