//! E5 — Algorithm 1 mapping cost: direct concept lookups vs. the Jaccard
//! similarity fallback (lines 20–29), over growing ontologies.
//!
//! The mapping memo is disabled for the whole process: these benches
//! measure the per-request engine cost (direct lookup / indexed scan),
//! not the memo hit path — `ontology_bench` covers the memoized regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trust_vo_bench::workloads::{self, map_concept, SIMILARITY_THRESHOLD};
use trust_vo_ontology::MapMemo;

fn bench_direct_lookup(c: &mut Criterion) {
    MapMemo::global().set_enabled(false);
    let mut group = c.benchmark_group("ontology_direct");
    for n in [10usize, 50, 200, 800, 3200, 10_000] {
        let w = workloads::ontology_workload(n, 0);
        let request = format!("Concept{}Quality", n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(map_concept(
                    &w.ontology,
                    &w.profile,
                    &request,
                    SIMILARITY_THRESHOLD,
                ))
            })
        });
    }
    group.finish();
}

fn bench_similarity_fallback(c: &mut Criterion) {
    MapMemo::global().set_enabled(false);
    let mut group = c.benchmark_group("ontology_similarity");
    for n in [10usize, 50, 200, 800, 3200, 10_000] {
        let w = workloads::ontology_workload(n, n);
        let request = format!("Quality_Concept{}", n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(map_concept(
                    &w.ontology,
                    &w.profile,
                    &request,
                    SIMILARITY_THRESHOLD,
                ))
            })
        });
    }
    group.finish();
}

fn bench_similarity_fallback_reference(c: &mut Criterion) {
    // The seed's O(concepts) scan, kept as the before/after baseline.
    let mut group = c.benchmark_group("ontology_similarity_reference");
    for n in [10usize, 50, 200, 800] {
        let w = workloads::ontology_workload(n, n);
        let request = format!("Quality_Concept{}", n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(trust_vo_ontology::match_concept_reference(
                    &request,
                    &w.ontology,
                    SIMILARITY_THRESHOLD,
                ))
            })
        });
    }
    group.finish();
}

fn bench_cross_ontology_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("ontology_cross_match");
    for n in [10usize, 50, 200, 800] {
        let a = workloads::ontology_workload(n, 0).ontology;
        let b_onto = workloads::ontology_workload(n, 0).ontology;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| black_box(trust_vo_ontology::match_ontologies(&a, &b_onto)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_direct_lookup,
    bench_similarity_fallback,
    bench_similarity_fallback_reference,
    bench_cross_ontology_match
);
criterion_main!(benches);
