//! E10 — parallel batch admission: serial vs. parallel formation.
//!
//! Measures the real CPU cost of forming a VO whose contract has one role
//! per applicant, each guarded by a deep chain of interlocking disclosure
//! policies (the E4 chain shape), on a zero-latency clock. The parallel
//! engine speculates every admission negotiation across a scoped thread
//! pool; the serial engine runs them in contract order. The calibrated
//! comparison table (with the ≥2× speedup check at 16 applicants) is
//! printed by `cargo run --release --bin parallel_join_times`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trust_vo_bench::workloads;
use trust_vo_negotiation::{ConcurrentSequenceCache, Strategy};
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::{form_vo, form_vo_parallel, ReputationLedger};

/// Chain depth / failing alternatives per level for each admission
/// negotiation — deep enough that negotiation dominates bookkeeping.
const DEPTH: usize = 20;
const ALTERNATIVES: usize = 10;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn bench_parallel_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_parallel_join");
    for &applicants in &[4usize, 16, 64] {
        let world = workloads::parallel_join_world(applicants, DEPTH, ALTERNATIVES);

        group.bench_with_input(BenchmarkId::new("serial", applicants), &world, |b, w| {
            b.iter(|| {
                let clock = workloads::free_clock();
                black_box(
                    form_vo(
                        w.contract.clone(),
                        &w.initiator,
                        &w.providers,
                        &w.registry,
                        &mut MailboxSystem::new(),
                        &mut ReputationLedger::new(),
                        &clock,
                        Strategy::Standard,
                    )
                    .expect("serial formation succeeds"),
                )
            })
        });

        group.bench_with_input(BenchmarkId::new("parallel", applicants), &world, |b, w| {
            b.iter(|| {
                let clock = workloads::free_clock();
                let cache = ConcurrentSequenceCache::new();
                black_box(
                    form_vo_parallel(
                        w.contract.clone(),
                        &w.initiator,
                        &w.providers,
                        &w.registry,
                        &mut MailboxSystem::new(),
                        &mut ReputationLedger::new(),
                        &clock,
                        Strategy::Standard,
                        &cache,
                        workers(),
                    )
                    .expect("parallel formation succeeds"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_join);
criterion_main!(benches);
