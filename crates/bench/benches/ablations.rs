//! E9 — extension ablations: repeat-negotiation cost with the full
//! protocol, with the trust-sequence cache, and with trust tickets.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trust_vo_bench::workloads;
use trust_vo_credential::{TimeRange, Timestamp};
use trust_vo_negotiation::ticket::negotiate_with_ticket;
use trust_vo_negotiation::{negotiate, NegotiationConfig, SequenceCache, Strategy};

fn ticket_window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap())
}

fn bench_repeat_negotiations(c: &mut Criterion) {
    let (requester, controller) = workloads::chain_parties(6, 2);
    let cfg = NegotiationConfig::new(Strategy::Standard, workloads::at());
    let mut group = c.benchmark_group("repeat_negotiation");

    group.bench_function("full_protocol", |b| {
        b.iter(|| black_box(negotiate(&requester, &controller, "Target", &cfg).unwrap()))
    });

    group.bench_function("sequence_cache_hit", |b| {
        let mut cache = SequenceCache::new();
        // Warm the cache once.
        cache
            .negotiate(&requester, &controller, "Target", &cfg)
            .unwrap();
        b.iter(|| {
            black_box(
                cache
                    .negotiate(&requester, &controller, "Target", &cfg)
                    .unwrap(),
            )
        })
    });

    group.bench_function("ticket_redemption", |b| {
        let (ticket, _) = negotiate_with_ticket(
            &requester,
            &controller,
            "Target",
            &cfg,
            None,
            ticket_window(),
        )
        .unwrap();
        b.iter(|| {
            black_box(
                negotiate_with_ticket(
                    &requester,
                    &controller,
                    "Target",
                    &cfg,
                    Some(&ticket),
                    ticket_window(),
                )
                .unwrap(),
            )
        })
    });

    group.finish();
}

fn bench_ontology_overhead(c: &mut Criterion) {
    // The same Fig. 2 negotiation with the concept-level alternative
    // exercised (accreditation withheld) vs. the plain typed route.
    let mut group = c.benchmark_group("ontology_in_negotiation");
    let s = workloads::scenario(workloads::free_clock());
    group.bench_function("typed_route", |b| {
        b.iter(|| black_box(s.fig2_negotiation(Strategy::Standard).unwrap()))
    });
    // Remove the accreditation so the concept alternative must be used.
    let mut s2 = workloads::scenario(workloads::free_clock());
    let aircraft = s2
        .toolkit
        .providers
        .get_mut(trust_vo_vo::scenario::names::AIRCRAFT)
        .unwrap();
    let id = aircraft
        .party
        .profile
        .of_type("AAAccreditation")
        .next()
        .unwrap()
        .id()
        .clone();
    aircraft.party.profile.remove(&id);
    group.bench_function("concept_route_via_algorithm1", |b| {
        b.iter(|| black_box(s2.fig2_negotiation(Strategy::Standard).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_repeat_negotiations, bench_ontology_overhead);
criterion_main!(benches);
