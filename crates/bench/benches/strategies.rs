//! E6 — strategy ablation: the four Trust-X strategies plus the
//! TrustBuilder-style eager baseline, on the Fig. 2 negotiation.
//! Disclosure/message counts are printed by
//! `cargo run --release --bin strategy_table`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trust_vo_bench::workloads;
use trust_vo_negotiation::baseline::negotiate_eager;
use trust_vo_negotiation::Strategy;
use trust_vo_vo::scenario::{names, roles};

fn bench_strategies(c: &mut Criterion) {
    let s = workloads::scenario(workloads::free_clock());
    let mut group = c.benchmark_group("strategies");
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.wire_name()),
            &strategy,
            |b, &strategy| b.iter(|| black_box(s.fig2_negotiation(strategy).unwrap())),
        );
    }
    group.finish();
}

fn bench_eager_baseline(c: &mut Criterion) {
    let s = workloads::scenario(workloads::free_clock());
    let mut initiator = s.provider(names::AIRCRAFT).party.clone();
    if let Some(set) = s.contract.policies_for(roles::DESIGN_PORTAL) {
        for policy in set.iter() {
            initiator.policies.add(policy.clone());
        }
    }
    let aerospace = s.provider(names::AEROSPACE).party.clone();
    c.bench_function("eager_baseline", |b| {
        b.iter(|| {
            black_box(
                negotiate_eager(&aerospace, &initiator, "VoMembership", workloads::at()).unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_strategies, bench_eager_baseline);
criterion_main!(benches);
