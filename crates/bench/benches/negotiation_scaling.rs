//! E4 — negotiation scaling: CPU cost vs. policy-chain depth and number
//! of failing alternatives ("short and efficient negotiations", §1).
//! Message/round counts for the same sweep are printed by
//! `cargo run --release --bin negotiation_messages`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trust_vo_bench::workloads;
use trust_vo_negotiation::{negotiate, NegotiationConfig, Strategy};

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("negotiation_depth");
    for depth in [1usize, 2, 4, 8, 12] {
        let (requester, controller) = workloads::chain_parties(depth, 1);
        let cfg = NegotiationConfig::new(Strategy::Standard, workloads::at());
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(negotiate(&requester, &controller, "Target", &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_alternatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("negotiation_alternatives");
    for alts in [1usize, 2, 4, 8] {
        let (requester, controller) = workloads::chain_parties(4, alts);
        let cfg = NegotiationConfig::new(Strategy::Standard, workloads::at());
        group.bench_with_input(BenchmarkId::from_parameter(alts), &alts, |b, _| {
            b.iter(|| black_box(negotiate(&requester, &controller, "Target", &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_phase_split(c: &mut Criterion) {
    // Where does the time go: policy evaluation vs. credential exchange?
    let mut group = c.benchmark_group("negotiation_phases");
    let (requester, controller) = workloads::chain_parties(6, 2);
    let cfg = NegotiationConfig::new(Strategy::Standard, workloads::at());
    group.bench_function("policy_evaluation_only", |b| {
        b.iter(|| {
            black_box(
                trust_vo_negotiation::evaluate_policies(&requester, &controller, "Target", &cfg)
                    .unwrap(),
            )
        })
    });
    group.bench_function("both_phases", |b| {
        b.iter(|| black_box(negotiate(&requester, &controller, "Target", &cfg).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_depth, bench_alternatives, bench_phase_split);
criterion_main!(benches);
