//! E1 / Fig. 9 — join execution times.
//!
//! Measures the CPU cost of the three §6.3.1 cases on a zero-latency
//! clock; the calibrated simulated wall-clock (the paper's 3 s / 4 s / 1 s
//! shape) is printed by `cargo run --release --bin fig9_join_times`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trust_vo_bench::workloads;
use trust_vo_negotiation::Strategy;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_join");

    group.bench_function("join_without_tn", |b| {
        b.iter(|| {
            let mut s = workloads::scenario(workloads::free_clock());
            black_box(workloads::join_without_tn(&mut s).expect("join succeeds"))
        })
    });

    group.bench_function("join_with_tn", |b| {
        b.iter(|| {
            let mut s = workloads::scenario(workloads::free_clock());
            black_box(workloads::join_with_tn(&mut s, Strategy::Standard).expect("join succeeds"))
        })
    });

    group.bench_function("standalone_tn", |b| {
        b.iter(|| {
            let s = workloads::scenario(workloads::free_clock());
            workloads::standalone_tn(&s, Strategy::Standard).expect("negotiation succeeds");
        })
    });

    // Scenario construction is part of every iteration above; measure it
    // alone so the join costs can be read net of setup.
    group.bench_function("scenario_setup_only", |b| {
        b.iter(|| black_box(workloads::scenario(workloads::free_clock())))
    });

    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
