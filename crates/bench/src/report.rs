//! Table-shaped experiment reporting.
//!
//! The harness binaries print paper-style tables to stdout and emit a
//! machine-readable JSON record so `EXPERIMENTS.md` stays auditable.
//! JSON is rendered by hand (the build is offline, so no serde).

/// One row of an experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. "Join with trust negotiation").
    pub label: String,
    /// Column values, formatted.
    pub values: Vec<String>,
}

/// A full experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id from DESIGN.md §3 (e.g. "E1/Fig9").
    pub experiment: String,
    /// What is being shown.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<Row>,
    /// Free-form notes (calibration caveats etc.).
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(experiment: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            experiment: experiment.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a row.
    pub fn row(&mut self, label: &str, values: &[String]) {
        self.rows.push(Row {
            label: label.to_owned(),
            values: values.to_vec(),
        });
    }

    /// Add a note.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_owned());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            widths[0] = widths[0].max(row.label.len());
            for (i, v) in row.values.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(v.len());
                }
            }
        }
        let mut out = format!("== {} — {} ==\n", self.experiment, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let mut cells = vec![format!("{:w$}", row.label, w = widths[0])];
            for (i, v) in row.values.iter().enumerate() {
                cells.push(format!(
                    "{:w$}",
                    v,
                    w = widths.get(i + 1).copied().unwrap_or(0)
                ));
            }
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Render as a compact JSON record (hand-rolled; field order fixed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_json_field(&mut out, "experiment", &self.experiment);
        out.push(',');
        push_json_field(&mut out, "title", &self.title);
        out.push_str(",\"columns\":");
        push_json_string_array(&mut out, &self.columns);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_json_field(&mut out, "label", &row.label);
            out.push_str(",\"values\":");
            push_json_string_array(&mut out, &row.values);
            out.push('}');
        }
        out.push_str("],\"notes\":");
        push_json_string_array(&mut out, &self.notes);
        out.push('}');
        out
    }

    /// Print the table and the JSON record.
    pub fn print(&self) {
        println!("{}", self.render());
        println!("json: {}", self.to_json());
    }
}

fn push_json_field(out: &mut String, key: &str, value: &str) {
    push_json_string(out, key);
    out.push(':');
    push_json_string(out, value);
}

fn push_json_string_array(out: &mut String, values: &[String]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, v);
    }
    out.push(']');
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("E1/Fig9", "Join execution times", &["case", "sim (s)"]);
        r.row("Join", &["2.97".into()]);
        r.row("Join with trust negotiation", &["3.95".into()]);
        r.note("calibrated to the paper testbed");
        let text = r.render();
        assert!(text.contains("E1/Fig9"));
        assert!(text.contains("Join with trust negotiation  3.95"));
        assert!(text.contains("note: calibrated"));
    }

    #[test]
    fn serializes_to_json() {
        let mut r = Report::new("E5", "mapping", &["n", "us"]);
        r.row("exact", &["1.2".into()]);
        let json = r.to_json();
        assert!(json.contains("\"experiment\":\"E5\""));
        assert!(json.contains("\"rows\":[{\"label\":\"exact\",\"values\":[\"1.2\"]}]"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = Report::new("E0", "quote \" and \\ and\nnewline", &["c"]);
        r.row("tab\there", &[]);
        let json = r.to_json();
        assert!(json.contains("quote \\\" and \\\\ and\\nnewline"));
        assert!(json.contains("tab\\there"));
    }
}
