//! Table-shaped experiment reporting.
//!
//! The harness binaries print paper-style tables to stdout and emit a
//! machine-readable JSON record so `EXPERIMENTS.md` stays auditable.

use serde::Serialize;

/// One row of an experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Row label (e.g. "Join with trust negotiation").
    pub label: String,
    /// Column values, formatted.
    pub values: Vec<String>,
}

/// A full experiment report.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Experiment id from DESIGN.md §3 (e.g. "E1/Fig9").
    pub experiment: String,
    /// What is being shown.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<Row>,
    /// Free-form notes (calibration caveats etc.).
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(experiment: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            experiment: experiment.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a row.
    pub fn row(&mut self, label: &str, values: &[String]) {
        self.rows.push(Row { label: label.to_owned(), values: values.to_vec() });
    }

    /// Add a note.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_owned());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            widths[0] = widths[0].max(row.label.len());
            for (i, v) in row.values.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(v.len());
                }
            }
        }
        let mut out = format!("== {} — {} ==\n", self.experiment, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let mut cells = vec![format!("{:w$}", row.label, w = widths[0])];
            for (i, v) in row.values.iter().enumerate() {
                cells.push(format!("{:w$}", v, w = widths.get(i + 1).copied().unwrap_or(0)));
            }
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Print the table and the JSON record.
    pub fn print(&self) {
        println!("{}", self.render());
        println!(
            "json: {}",
            serde_json::to_string(self).expect("report serializes")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("E1/Fig9", "Join execution times", &["case", "sim (s)"]);
        r.row("Join", &["2.97".into()]);
        r.row("Join with trust negotiation", &["3.95".into()]);
        r.note("calibrated to the paper testbed");
        let text = r.render();
        assert!(text.contains("E1/Fig9"));
        assert!(text.contains("Join with trust negotiation  3.95"));
        assert!(text.contains("note: calibrated"));
    }

    #[test]
    fn serializes_to_json() {
        let mut r = Report::new("E5", "mapping", &["n", "us"]);
        r.row("exact", &["1.2".into()]);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"experiment\":\"E5\""));
    }
}
