//! `--emit-obs` support shared by the bench binaries.
//!
//! Every table-printing binary accepts:
//!
//! * `--emit-obs <path>` — attach a [`Collector`] to the workload clock
//!   and, after the run, dump every span/event/metric as JSON lines to
//!   `<path>` (see `trust-vo-obs` for the line schema);
//! * `--emit-trace <path>` — same collector, exported as a Chrome
//!   trace-event / Perfetto JSON file instead (open in `ui.perfetto.dev`
//!   or `chrome://tracing`); combinable with `--emit-obs`;
//! * `--smoke` (where documented) — shrink the workload to a single tiny
//!   iteration so CI can exercise the binary in seconds;
//! * `--seed <u64>` (where documented) — the fault-plan / idempotency
//!   seed for chaos binaries such as `fig9_faulty_join`, so a run can be
//!   replayed exactly.
//!
//! With the `obs` feature disabled the collector handles are inert: the
//! flags still parse, the dump file is written, but it only carries the
//! always-on metric lines (no spans or events).

use std::path::PathBuf;
use trust_vo_obs::Collector;
use trust_vo_soa::simclock::SimClock;

/// Flags recognised by the bench binaries.
#[derive(Debug, Default)]
pub struct ObsArgs {
    /// Dump collected observability records to this path after the run.
    pub emit_obs: Option<PathBuf>,
    /// Dump the run's spans as Perfetto/Chrome trace-event JSON.
    pub emit_trace: Option<PathBuf>,
    /// Run a single shrunken iteration (CI smoke).
    pub smoke: bool,
    /// Deterministic seed for chaos binaries (`--seed <u64>`).
    pub seed: Option<u64>,
}

impl ObsArgs {
    /// Parse `--emit-obs <path>` and `--smoke` from `std::env::args`,
    /// ignoring anything else (so harness-injected flags pass through).
    pub fn from_env() -> Self {
        let mut parsed = ObsArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--emit-obs" => {
                    let path = args.next().unwrap_or_else(|| {
                        eprintln!("--emit-obs requires a path argument");
                        std::process::exit(2);
                    });
                    parsed.emit_obs = Some(PathBuf::from(path));
                }
                "--emit-trace" => {
                    let path = args.next().unwrap_or_else(|| {
                        eprintln!("--emit-trace requires a path argument");
                        std::process::exit(2);
                    });
                    parsed.emit_trace = Some(PathBuf::from(path));
                }
                "--smoke" => parsed.smoke = true,
                "--seed" => {
                    let value = args.next().unwrap_or_else(|| {
                        eprintln!("--seed requires a u64 argument");
                        std::process::exit(2);
                    });
                    parsed.seed = Some(value.parse().unwrap_or_else(|e| {
                        eprintln!("--seed {value}: not a u64 ({e})");
                        std::process::exit(2);
                    }));
                }
                _ => {}
            }
        }
        parsed
    }

    /// A collector for the run: enabled (and attached to `clock`) when
    /// `--emit-obs` or `--emit-trace` was given, disabled otherwise so
    /// the bench pays no instrumentation cost.
    pub fn collector_for(&self, clock: &SimClock) -> Collector {
        if self.emit_obs.is_none() && self.emit_trace.is_none() {
            return Collector::disabled();
        }
        let collector = Collector::new();
        clock.attach_obs(&collector);
        collector
    }

    /// Write the collector's JSONL dump to the `--emit-obs` path (no-op
    /// without the flag). Panics on I/O errors: a bench run that cannot
    /// write its requested artifact should fail loudly.
    ///
    /// Process-wide `crypto.*` and `credcache.*` totals are published
    /// into the dump as metric lines. They are deliberately **absent**
    /// from [`ObsArgs::dump_deterministic`]: under parallel formation the
    /// interleaving of speculative negotiations makes cache hit/miss
    /// splits run-dependent, which would break the byte-identical chaos
    /// gate in ci.sh.
    pub fn dump(&self, collector: &Collector) {
        let Some(path) = &self.emit_obs else {
            return;
        };
        publish_crypto_metrics(collector);
        publish_ontology_metrics(collector);
        std::fs::write(path, collector.to_jsonl())
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        eprintln!("observability dump written to {}", path.display());
    }

    /// Like [`ObsArgs::dump`], but scrubs wall-clock fields from every
    /// record first (see `Collector::to_jsonl_deterministic`), so two runs
    /// of a deterministic workload produce byte-identical files. The CI
    /// chaos smoke diffs two such dumps.
    pub fn dump_deterministic(&self, collector: &Collector) {
        let Some(path) = &self.emit_obs else {
            return;
        };
        std::fs::write(path, collector.to_jsonl_deterministic())
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        eprintln!(
            "deterministic observability dump written to {}",
            path.display()
        );
    }

    /// Write the collector's Perfetto/Chrome trace-event export to the
    /// `--emit-trace` path (no-op without the flag).
    pub fn dump_trace(&self, collector: &Collector) {
        let Some(path) = &self.emit_trace else {
            return;
        };
        std::fs::write(path, collector.to_perfetto())
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        eprintln!("perfetto trace written to {}", path.display());
    }

    /// Like [`ObsArgs::dump_trace`], but with wall-clock timings scrubbed
    /// (see `Collector::to_perfetto_deterministic`) so two same-seed runs
    /// produce byte-identical trace files — the contract the CI chaos
    /// gate diffs.
    pub fn dump_trace_deterministic(&self, collector: &Collector) {
        let Some(path) = &self.emit_trace else {
            return;
        };
        std::fs::write(path, collector.to_perfetto_deterministic())
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        eprintln!("deterministic perfetto trace written to {}", path.display());
    }
}

/// Publish the process-wide crypto-substrate totals — `crypto.*`
/// operation counters and `credcache.*` verified-cache counters — into
/// `collector`'s metrics registry so they land in the JSONL dump. No-op
/// when the collector is disabled. Counters are cumulative per process;
/// each name is brought up to the current total (idempotent across
/// repeated dumps).
pub fn publish_crypto_metrics(collector: &Collector) {
    let Some(registry) = collector.registry() else {
        return;
    };
    let set_total = |name: &str, total: u64| {
        let counter = registry.counter(name);
        counter.add(total.saturating_sub(counter.get()));
    };
    let crypto = trust_vo_crypto::stats::snapshot();
    set_total("crypto.sign", crypto.sign);
    set_total("crypto.verify", crypto.verify);
    set_total("crypto.verify_reference", crypto.verify_reference);
    set_total("crypto.verify_batch", crypto.verify_batch);
    set_total("crypto.verify_batch_sigs", crypto.verify_batch_sigs);
    set_total("crypto.table_builds", crypto.table_builds);
    set_total("crypto.table_hits", crypto.table_hits);
    let cache = trust_vo_credential::VerifiedCache::global().stats();
    set_total("credcache.hits", cache.hits);
    set_total("credcache.misses", cache.misses);
    set_total("credcache.insertions", cache.insertions);
    set_total("credcache.evictions", cache.evictions);
}

/// Publish the process-wide ontology-engine totals — `ontology.*`
/// mapping/index counters and `mapmemo.*` mapping-memo counters — into
/// `collector`'s metrics registry. Same idempotent bring-up-to-total
/// contract as [`publish_crypto_metrics`].
pub fn publish_ontology_metrics(collector: &Collector) {
    let Some(registry) = collector.registry() else {
        return;
    };
    let set_total = |name: &str, total: u64| {
        let counter = registry.counter(name);
        counter.add(total.saturating_sub(counter.get()));
    };
    let onto = trust_vo_ontology::stats::snapshot();
    set_total("ontology.direct_hits", onto.direct_hits);
    set_total("ontology.similarity_scans", onto.similarity_scans);
    set_total("ontology.reference_scans", onto.reference_scans);
    set_total("ontology.index_candidates", onto.index_candidates);
    set_total("ontology.index_pruned", onto.index_pruned);
    set_total("ontology.index_builds", onto.index_builds);
    let memo = trust_vo_ontology::MapMemo::global().stats();
    set_total("mapmemo.hits", memo.hits);
    set_total("mapmemo.misses", memo.misses);
    set_total("mapmemo.insertions", memo.insertions);
    set_total("mapmemo.evictions", memo.evictions);
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::Timestamp;
    use trust_vo_soa::simclock::CostModel;

    #[test]
    fn no_flag_means_disabled_collector() {
        let args = ObsArgs::default();
        let clock = SimClock::new(CostModel::free(), Timestamp(0));
        assert!(!args.collector_for(&clock).is_enabled());
        args.dump(&Collector::disabled()); // no path: must not write
    }

    #[cfg(feature = "obs")]
    #[test]
    fn emit_obs_attaches_and_dumps() {
        let dir = std::env::temp_dir().join("trust-vo-obsutil-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        let args = ObsArgs {
            emit_obs: Some(path.clone()),
            ..ObsArgs::default()
        };
        let clock = SimClock::new(CostModel::paper_testbed(), Timestamp(0));
        let collector = args.collector_for(&clock);
        assert!(collector.is_enabled());
        clock.charge(trust_vo_soa::simclock::CostKind::DbQuery);
        args.dump(&collector);
        let text = std::fs::read_to_string(&path).unwrap();
        let records = trust_vo_obs::parse_jsonl(&text).unwrap();
        assert!(!records.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
