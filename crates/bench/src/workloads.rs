//! Workload builders shared by the criterion benches and the harness
//! binaries. Every experiment in DESIGN.md §3 constructs its input here so
//! the printed tables and the statistical benches measure the same thing.

use std::collections::BTreeMap;
use trust_vo_credential::{
    Attribute, CredentialAuthority, Sensitivity, TimeRange, Timestamp, XProfile,
};
use trust_vo_negotiation::{Party, Strategy};
use trust_vo_ontology::{Concept, Ontology};
use trust_vo_policy::PolicySet;
use trust_vo_policy::{DisclosurePolicy, Resource, Term};
use trust_vo_soa::simclock::{CostModel, SimClock};
use trust_vo_vo::scenario::{names, roles, AircraftScenario};
use trust_vo_vo::{
    Contract, MemberRecord, ResourceDescription, Role, ServiceProvider, ServiceRegistry, VoError,
};

/// The default wall-clock instant negotiations run at.
pub fn at() -> Timestamp {
    trust_vo_vo::scenario::scenario_time()
}

/// A paper-calibrated clock.
pub fn paper_clock() -> SimClock {
    SimClock::paper_default()
}

/// A zero-latency clock (pure CPU measurement).
pub fn free_clock() -> SimClock {
    SimClock::new(CostModel::free(), at())
}

/// Build the Aircraft scenario on a given clock.
pub fn scenario(clock: SimClock) -> AircraftScenario {
    AircraftScenario::build_with_clock(clock)
}

/// E1 / Fig. 9(b): join **without** TN — one member joins the VO through
/// the toolkit GUI flow. Returns the joined record.
pub fn join_without_tn(s: &mut AircraftScenario) -> Result<MemberRecord, VoError> {
    let initiator = s.provider(names::AIRCRAFT).clone();
    let candidate = s.provider(names::AEROSPACE).clone();
    let mut vo = trust_vo_vo::create_vo(s.contract.clone(), &initiator, &s.toolkit.clock);
    trust_vo_vo::join_member(
        &mut vo,
        &initiator,
        &candidate,
        roles::DESIGN_PORTAL,
        &mut s.toolkit.mailboxes,
        &mut s.toolkit.reputation,
        &s.toolkit.clock,
        None,
    )
}

/// E1 / Fig. 9(a): join **with** TN.
pub fn join_with_tn(s: &mut AircraftScenario, strategy: Strategy) -> Result<MemberRecord, VoError> {
    let initiator = s.provider(names::AIRCRAFT).clone();
    let candidate = s.provider(names::AEROSPACE).clone();
    let mut vo = trust_vo_vo::create_vo(s.contract.clone(), &initiator, &s.toolkit.clock);
    trust_vo_vo::join_member(
        &mut vo,
        &initiator,
        &candidate,
        roles::DESIGN_PORTAL,
        &mut s.toolkit.mailboxes,
        &mut s.toolkit.reputation,
        &s.toolkit.clock,
        Some(strategy),
    )
}

/// E1 / Fig. 9(c): the standalone TN (identical negotiation, no join
/// flow), charged on the scenario clock.
pub fn standalone_tn(s: &AircraftScenario, strategy: Strategy) -> Result<(), VoError> {
    let outcome = s.fig2_negotiation(strategy).map_err(VoError::Negotiation)?;
    trust_vo_vo::formation::charge_negotiation(&s.toolkit.clock, &outcome.transcript);
    Ok(())
}

/// E4: a synthetic negotiation whose policy graph is a chain of `depth`
/// interlocking requirements with `alternatives` failing branches per
/// level. Both parties hold everything needed for the last alternative.
pub fn chain_parties(depth: usize, alternatives: usize) -> (Party, Party) {
    let mut ca = CredentialAuthority::new("ChainCA");
    let window = TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap());
    let mut requester = Party::new("chain-requester");
    let mut controller = Party::new("chain-controller");

    // Level i's credential type; even levels owned by the requester, odd
    // by the controller, so disclosures alternate sides.
    let type_name = |level: usize| format!("Cred{level}");
    for level in 0..depth {
        let (owner, owner_is_requester) = if level % 2 == 0 {
            (&mut requester, true)
        } else {
            (&mut controller, false)
        };
        let cred = ca
            .issue(
                &type_name(level),
                &owner.name.clone(),
                owner.keys.public,
                vec![Attribute::new("Level", level as i64)],
                window,
            )
            .expect("open schema");
        owner.profile.add(cred);
        // Protect level i by level i+1 (held by the other side);
        // the deepest level is deliverable.
        let resource = Resource::credential(type_name(level));
        if level + 1 < depth {
            // `alternatives - 1` failing alternatives first (requiring a
            // type nobody holds), then the real one.
            for alt in 0..alternatives.saturating_sub(1) {
                owner.policies.add(DisclosurePolicy::rule(
                    format!("p{level}-fail{alt}"),
                    resource.clone(),
                    vec![Term::of_type(format!("Missing{level}x{alt}"))],
                ));
            }
            owner.policies.add(DisclosurePolicy::rule(
                format!("p{level}-real"),
                resource.clone(),
                vec![Term::of_type(type_name(level + 1))],
            ));
        } else {
            owner
                .policies
                .add(DisclosurePolicy::deliv(format!("p{level}-deliv"), resource));
        }
        let _ = owner_is_requester;
    }
    // The controller's root service is protected by Cred0 (requester-held).
    controller.policies.add(DisclosurePolicy::rule(
        "root",
        Resource::service("Target"),
        vec![Term::of_type(type_name(0))],
    ));
    requester.trust_root(ca.public_key());
    controller.trust_root(ca.public_key());
    (requester, controller)
}

/// E5: an ontology with `n` concepts plus a profile holding one credential
/// per concept; `hit_ratio` of lookups name concepts directly, the rest
/// use a paraphrased (similarity-resolved) name.
pub struct OntologyWorkload {
    /// The local ontology.
    pub ontology: Ontology,
    /// The profile holding one credential per concept.
    pub profile: XProfile,
    /// Concept names to request (mix of exact and paraphrased).
    pub requests: Vec<String>,
}

/// Build the E5 workload.
pub fn ontology_workload(n: usize, paraphrased: usize) -> OntologyWorkload {
    let mut ontology = Ontology::new();
    let mut ca = CredentialAuthority::new("OntoCA");
    let window = TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap());
    let keys = trust_vo_crypto::KeyPair::from_seed(b"onto-holder");
    let mut profile = XProfile::new("onto-holder");
    for i in 0..n {
        let cred_type = format!("CredType{i}");
        ontology.add(
            Concept::new(format!("Concept{i}Quality"))
                .keyword(format!("domain{}", i % 7))
                .implemented_by(&format!("{cred_type}.Attr{i}")),
        );
        let cred = ca
            .issue(
                &cred_type,
                "onto-holder",
                keys.public,
                vec![Attribute::new(format!("Attr{i}"), i as i64)],
                window,
            )
            .expect("open schema");
        profile.add_with_sensitivity(
            cred,
            match i % 3 {
                0 => Sensitivity::Low,
                1 => Sensitivity::Medium,
                _ => Sensitivity::High,
            },
        );
    }
    // is_a chains every 4 concepts.
    for i in (0..n.saturating_sub(4)).step_by(4) {
        let child = format!("Concept{i}Quality");
        let parent = format!("Concept{}Quality", i + 4);
        ontology.add_is_a(&child, &parent);
    }
    let requests = (0..n)
        .map(|i| {
            if i < paraphrased {
                // Paraphrase: underscores + reordering forces similarity.
                format!("Quality_Concept{i}")
            } else {
                format!("Concept{i}Quality")
            }
        })
        .collect();
    OntologyWorkload {
        ontology,
        profile,
        requests,
    }
}

/// E10: the parallel batch-admission world — one contract role per
/// applicant, each guarded by an applicant-specific chain of interlocking
/// disclosure policies, so every admission negotiation carries real CPU
/// work (`depth` levels, `alternatives` branches per level, as in
/// [`chain_parties`]) and the serial-vs-parallel comparison measures
/// negotiation fan-out rather than bookkeeping.
pub struct ParallelJoinWorld {
    /// The contract: `Role000..RoleNNN`, one per applicant.
    pub contract: Contract,
    /// The VO Initiator, holding the controller half of every chain.
    pub initiator: ServiceProvider,
    /// The applicant providers, keyed by name.
    pub providers: BTreeMap<String, ServiceProvider>,
    /// Registry with one published capability per applicant.
    pub registry: ServiceRegistry,
}

/// Build the E10 world with `applicants` roles/candidates.
pub fn parallel_join_world(
    applicants: usize,
    depth: usize,
    alternatives: usize,
) -> ParallelJoinWorld {
    let mut ca = CredentialAuthority::new("BatchCA");
    let window = TimeRange::one_year_from(at());
    let mut initiator_party = Party::new("BatchInitiator");
    initiator_party.trust_root(ca.public_key());
    let mut contract = Contract::new("BatchVo", "parallel batch admission");
    let mut providers = BTreeMap::new();
    let mut registry = ServiceRegistry::new();

    // Credential *types* are shared across applicants (each applicant holds
    // its own credentials of those types), so the initiator's X-Profile and
    // policy set stay constant-size as the applicant count grows — the
    // comparison then scales with negotiation work, not with the cost of
    // fingerprinting an ever-larger controller profile. Even levels are
    // applicant-held, odd levels initiator-held, alternating sides as in
    // the E4 chain workload.
    let app_type = |level: usize| format!("AppL{level}");
    let init_type = |level: usize| format!("InitL{level}");
    let type_name = |level: usize| {
        if level.is_multiple_of(2) {
            app_type(level)
        } else {
            init_type(level)
        }
    };

    // Initiator half of the chain, built once.
    for level in (1..depth).step_by(2) {
        let cred = ca
            .issue(
                &init_type(level),
                "BatchInitiator",
                initiator_party.keys.public,
                vec![Attribute::new("Level", level as i64)],
                window,
            )
            .expect("open schema");
        initiator_party.profile.add(cred);
        let resource = Resource::credential(init_type(level));
        if level + 1 < depth {
            for alt in 0..alternatives.saturating_sub(1) {
                initiator_party.policies.add(DisclosurePolicy::rule(
                    format!("ip{level}-fail{alt}"),
                    resource.clone(),
                    vec![Term::of_type(format!("MissingI{level}x{alt}"))],
                ));
            }
            initiator_party.policies.add(DisclosurePolicy::rule(
                format!("ip{level}-real"),
                resource.clone(),
                vec![Term::of_type(type_name(level + 1))],
            ));
        } else {
            initiator_party.policies.add(DisclosurePolicy::deliv(
                format!("ip{level}-deliv"),
                resource,
            ));
        }
    }

    for i in 0..applicants {
        let applicant_name = format!("Applicant{i:03}");
        let mut applicant = Party::new(&applicant_name);
        applicant.trust_root(ca.public_key());
        // Applicant half of the chain: its own credentials of the shared
        // even-level types, protected by the initiator's odd-level types.
        for level in (0..depth).step_by(2) {
            let cred = ca
                .issue(
                    &app_type(level),
                    &applicant_name,
                    applicant.keys.public,
                    vec![Attribute::new("Level", level as i64)],
                    window,
                )
                .expect("open schema");
            applicant.profile.add(cred);
            let resource = Resource::credential(app_type(level));
            if level + 1 < depth {
                for alt in 0..alternatives.saturating_sub(1) {
                    applicant.policies.add(DisclosurePolicy::rule(
                        format!("ap{level}-fail{alt}"),
                        resource.clone(),
                        vec![Term::of_type(format!("MissingA{level}x{alt}"))],
                    ));
                }
                applicant.policies.add(DisclosurePolicy::rule(
                    format!("ap{level}-real"),
                    resource.clone(),
                    vec![Term::of_type(type_name(level + 1))],
                ));
            } else {
                applicant.policies.add(DisclosurePolicy::deliv(
                    format!("ap{level}-deliv"),
                    resource,
                ));
            }
        }
        let role_name = format!("Role{i:03}");
        let capability = format!("cap{i:03}");
        contract = contract.with_role(Role::new(&role_name, &capability, "batch admission"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            format!("vo-a{i}"),
            Resource::service("VoMembership"),
            vec![Term::of_type(app_type(0))],
        ));
        contract.set_role_policies(&role_name, policies);
        registry.publish(ResourceDescription::new(
            &applicant_name,
            &capability,
            "x",
            0.9,
        ));
        providers.insert(applicant_name, ServiceProvider::new(applicant));
    }

    ParallelJoinWorld {
        contract,
        initiator: ServiceProvider::new(initiator_party),
        providers,
        registry,
    }
}

/// E7: attribute sets of growing width for the selective-disclosure bench.
pub fn wide_attributes(n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| (format!("attr{i}"), format!("value-{i}-{}", i * 31)))
        .collect()
}

/// The provider map + initiator used by operation-phase workloads.
pub fn operation_world(
    s: &AircraftScenario,
) -> (ServiceProvider, BTreeMap<String, ServiceProvider>) {
    let initiator = s.provider(names::AIRCRAFT).clone();
    (initiator, s.toolkit.providers.clone())
}

/// Standard similarity threshold used across the workloads.
pub const SIMILARITY_THRESHOLD: f64 = 0.2;

/// Re-export for harness binaries.
pub use trust_vo_ontology::mapping::map_concept;

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_negotiation::{negotiate, NegotiationConfig};

    #[test]
    fn chain_workload_is_satisfiable_and_scales() {
        for depth in [1, 2, 5, 8] {
            let (requester, controller) = chain_parties(depth, 2);
            let cfg = NegotiationConfig::new(Strategy::Standard, at());
            let outcome = negotiate(&requester, &controller, "Target", &cfg)
                .unwrap_or_else(|e| panic!("depth {depth}: {e}"));
            assert_eq!(outcome.sequence.len(), depth);
        }
    }

    #[test]
    fn chain_alternatives_cause_failed_branches() {
        let (requester, controller) = chain_parties(4, 3);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate(&requester, &controller, "Target", &cfg).unwrap();
        assert!(outcome.transcript.failed_alternatives >= 3);
    }

    #[test]
    fn ontology_workload_maps_every_request() {
        let w = ontology_workload(40, 10);
        let mut mapped = 0;
        for request in &w.requests {
            if map_concept(&w.ontology, &w.profile, request, SIMILARITY_THRESHOLD).is_mapped() {
                mapped += 1;
            }
        }
        // All exact lookups and most paraphrased ones resolve.
        assert!(mapped >= 35, "only {mapped}/40 mapped");
    }

    #[test]
    fn parallel_join_world_admits_every_applicant() {
        let w = parallel_join_world(3, 4, 2);
        let clock = free_clock();
        let vo = trust_vo_vo::form_vo(
            w.contract,
            &w.initiator,
            &w.providers,
            &w.registry,
            &mut trust_vo_vo::mailbox::MailboxSystem::new(),
            &mut trust_vo_vo::ReputationLedger::new(),
            &clock,
            Strategy::Standard,
        )
        .expect("all applicants admitted");
        assert_eq!(vo.members().len(), 3);
        for i in 0..3 {
            assert!(vo.is_member(&format!("Applicant{i:03}")));
        }
    }

    #[test]
    fn joins_produce_members() {
        let mut s = scenario(paper_clock());
        assert!(join_without_tn(&mut s).is_ok());
        let mut s = scenario(paper_clock());
        assert!(join_with_tn(&mut s, Strategy::Standard).is_ok());
        let s = scenario(paper_clock());
        assert!(standalone_tn(&s, Strategy::Standard).is_ok());
    }
}
