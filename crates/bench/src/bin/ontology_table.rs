//! E5 — Algorithm 1 mapping: hit rate and cost of direct lookups vs. the
//! Jaccard similarity fallback, over growing ontologies.

use std::time::Instant;
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads::{self, map_concept, SIMILARITY_THRESHOLD};

fn main() {
    let mut report = Report::new(
        "E5",
        "Algorithm 1: concept-to-credential mapping",
        &[
            "concepts",
            "paraphrased",
            "mapped",
            "via similarity",
            "unmapped",
            "us/request",
        ],
    );
    for (n, paraphrased) in [
        (20usize, 0usize),
        (20, 10),
        (100, 0),
        (100, 50),
        (400, 0),
        (400, 200),
        (800, 400),
        (3200, 1600),
        (10_000, 5000),
    ] {
        let w = workloads::ontology_workload(n, paraphrased);
        let mut mapped = 0;
        let mut via_similarity = 0;
        let started = Instant::now();
        for request in &w.requests {
            if let trust_vo_ontology::MappingOutcome::Mapped { via, .. } =
                map_concept(&w.ontology, &w.profile, request, SIMILARITY_THRESHOLD)
            {
                mapped += 1;
                if via.is_some() {
                    via_similarity += 1;
                }
            }
        }
        let per_request = started.elapsed().as_secs_f64() * 1e6 / w.requests.len() as f64;
        report.row(
            &n.to_string(),
            &[
                paraphrased.to_string(),
                mapped.to_string(),
                via_similarity.to_string(),
                (w.requests.len() - mapped).to_string(),
                format!("{per_request:.1}"),
            ],
        );
    }
    report.note(
        "similarity fallback runs one inverted-index scan per request (O(candidates)); \
         direct lookup is O(log concepts); repeats hit the mapping memo",
    );
    report.print();
}
