//! E12 — crypto fast-path microbenchmarks.
//!
//! Measures ops-per-second for the crypto substrate's hot operations —
//! fixed-base exponentiation, signing, single verification (fast vs the
//! seed's `pow_mod` reference path), batch verification — plus the
//! verified-credential cache hit rate on a repeated-verification
//! workload, and writes the machine-readable record to
//! `BENCH_crypto.json`.
//!
//! Flags: `--smoke` shrinks every loop for CI (the speedup and hit-rate
//! assertions still run; the JSON artifact is not rewritten), and
//! `--emit-obs <path>` dumps the process-wide `crypto.*` / `credcache.*`
//! counters as an observability JSONL file.
//!
//! Run with `RUSTFLAGS="-C target-cpu=native"` as `ci.sh` does: the
//! batch-verification floors assume the multi-buffer SHA-256 lanes
//! vectorize, which the portable baseline build does not deliver. The
//! flag is deliberately *not* checked in workspace-wide — only this
//! host-local bench run wants host-specific codegen.

use std::hint::black_box;
use std::time::Instant;
use trust_vo_bench::obsutil::{publish_crypto_metrics, ObsArgs};
use trust_vo_bench::report::Report;
use trust_vo_credential::{Attribute, CredentialAuthority, TimeRange, Timestamp, VerifiedCache};
use trust_vo_crypto::{group, verify_batch, KeyPair, PublicKey, Signature};
use trust_vo_obs::Collector;

/// Deterministic exponent stream (splitmix64 over a fixed seed).
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn exp(&mut self) -> u64 {
        self.next() % group::Q
    }
}

/// Time `iters` runs of `f`, five times, and return the best ops/s.
///
/// The first repetition doubles as warmup (table caches, branch
/// predictors); taking the best of five discards repetitions that a
/// noisy-neighbour VM interrupted. Speedup floors compare best-vs-best,
/// which is far more stable than single-shot absolute timings here.
fn measure(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut best = 0f64;
    for _ in 0..5 {
        let start = Instant::now();
        for i in 0..iters {
            f(i);
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(iters as f64 / secs);
    }
    best
}

fn fmt_ops(ops: f64) -> String {
    if ops >= 1e6 {
        format!("{:.2}M", ops / 1e6)
    } else if ops >= 1e3 {
        format!("{:.1}k", ops / 1e3)
    } else {
        format!("{ops:.0}")
    }
}

fn main() {
    let args = ObsArgs::from_env();
    let scale: u64 = if args.smoke { 1 } else { 20 };
    let mut report = Report::new(
        "E12",
        "Crypto fast path: ops/s and speedups vs the seed pow_mod path",
        &["operation", "ops/s", "vs reference", "notes"],
    );

    // (a) Fixed-base exponentiation: windowed g_pow vs square-and-multiply.
    let mut stream = Stream(42);
    let exps: Vec<u64> = (0..256).map(|_| stream.exp()).collect();
    let pow_iters = 2_000 * scale;
    let gpow_ops = measure(pow_iters, |i| {
        black_box(group::g_pow(exps[(i % 256) as usize]));
    });
    let powmod_ops = measure(pow_iters.min(20_000), |i| {
        black_box(group::pow_mod(group::G, exps[(i % 256) as usize], group::P));
    });
    let gpow_speedup = gpow_ops / powmod_ops;
    report.row(
        "g_pow (windowed)",
        &[
            fmt_ops(gpow_ops),
            format!("{gpow_speedup:.1}x"),
            "16-entry/4-bit fixed-base table".into(),
        ],
    );
    report.row(
        "pow_mod (reference)",
        &[
            fmt_ops(powmod_ops),
            "1.0x".into(),
            "square-and-multiply".into(),
        ],
    );

    // (b) Sign / verify on short messages (small hashing share, so the
    // exponentiation difference dominates, as in credential exchange).
    let keys: Vec<KeyPair> = (0..8)
        .map(|i| KeyPair::from_seed(format!("bench-key-{i}").as_bytes()))
        .collect();
    let messages: Vec<Vec<u8>> = (0..256)
        .map(|i| format!("credential-{i}").into_bytes())
        .collect();
    let sigs: Vec<Signature> = messages
        .iter()
        .enumerate()
        .map(|(i, m)| keys[i % 8].sign(m))
        .collect();

    let sign_ops = measure(500 * scale, |i| {
        let i = (i % 256) as usize;
        black_box(keys[i % 8].sign(&messages[i]));
    });
    report.row("sign", &[fmt_ops(sign_ops), "-".into(), String::new()]);

    let verify_iters = 2_000 * scale;
    let verify_ops = measure(verify_iters, |i| {
        let i = (i % 256) as usize;
        assert!(keys[i % 8].public.verify(&messages[i], &sigs[i]));
    });
    let reference_ops = measure(verify_iters.min(5_000), |i| {
        let i = (i % 256) as usize;
        assert!(keys[i % 8].public.verify_reference(&messages[i], &sigs[i]));
    });
    let verify_speedup = verify_ops / reference_ops;
    report.row(
        "verify (fast)",
        &[
            fmt_ops(verify_ops),
            format!("{verify_speedup:.1}x"),
            "Jacobi subgroup check + window tables".into(),
        ],
    );
    report.row(
        "verify (reference)",
        &[
            fmt_ops(reference_ops),
            "1.0x".into(),
            "seed path: two pow_mod subgroup checks".into(),
        ],
    );

    // (c) Batch verification at growing batch sizes; per-signature
    // throughput vs the reference path. The per-call fixed costs (the
    // coefficient-transcript root, the final three exponentiations, the
    // structural pass) amortize from n≈32–48 onward: n=16 sits around
    // 6–8x depending on machine noise, n≥64 holds ≥8x with headroom —
    // which is also the regime resilient batch admission actually runs
    // in (every member's full chain in one call).
    let mut batch_speedups: Vec<(usize, f64)> = Vec::new();
    for &batch in &[16usize, 64, 256] {
        let items: Vec<(PublicKey, &[u8], Signature)> = (0..batch)
            .map(|i| (keys[i % 8].public, messages[i].as_slice(), sigs[i]))
            .collect();
        let batch_calls = (200 * scale).max(1);
        let batch_ops = measure(batch_calls, |_| {
            assert!(verify_batch(black_box(&items)));
        }) * batch as f64; // signatures per second
        let speedup = batch_ops / reference_ops;
        batch_speedups.push((batch, speedup));
        report.row(
            &format!("verify_batch (n={batch})"),
            &[
                fmt_ops(batch_ops),
                format!("{speedup:.1}x"),
                "random-linear-combination multi-exp".into(),
            ],
        );
    }

    // (d) Verified-credential cache hit rate: every credential verified
    // twice (fresh process ⇒ the deltas below are this workload's own).
    let before = VerifiedCache::global().stats();
    let mut ca = CredentialAuthority::new("E12-CA");
    let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
    let at = Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0);
    let subject = KeyPair::from_seed(b"e12-subject");
    let creds: Vec<_> = (0..50 * scale)
        .map(|i| {
            ca.issue(
                "Quality",
                "S",
                subject.public,
                vec![Attribute::new("n", i as i64)],
                window,
            )
            .unwrap()
        })
        .collect();
    for _ in 0..2 {
        for cred in &creds {
            cred.verify(at, None).unwrap();
        }
    }
    let after = VerifiedCache::global().stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let hit_rate = hits as f64 / (hits + misses) as f64;
    report.row(
        "credcache (verify x2)",
        &[
            format!("{hits}/{}", hits + misses),
            format!("{:.0}% hits", hit_rate * 100.0),
            "2nd pass skips signature work".into(),
        ],
    );

    report.note(
        "reference = the seed's pow_mod verification (two pow_mod subgroup checks + \
         two exponentiations); batch rows count signatures/s",
    );
    report.print();

    if let Some(path) = &args.emit_obs {
        let collector = Collector::new();
        publish_crypto_metrics(&collector);
        std::fs::write(path, collector.to_jsonl())
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        eprintln!("observability dump written to {}", path.display());
    }

    if !args.smoke {
        std::fs::write("BENCH_crypto.json", report.to_json() + "\n")
            .expect("writing BENCH_crypto.json");
        eprintln!("wrote BENCH_crypto.json");
    }

    // Acceptance gates (ISSUE 4): the fast path must beat the seed path
    // by a wide margin, and repeat verification must hit the cache.
    assert!(
        verify_speedup >= 4.0,
        "single-verify speedup {verify_speedup:.2}x below the 4x floor"
    );
    for (batch, speedup) in &batch_speedups {
        // 8x once per-call fixed costs amortize (n≥64); the n=16 point is
        // reported for the small-batch regime and floored at 6x.
        let floor = if *batch >= 64 { 8.0 } else { 6.0 };
        assert!(
            *speedup >= floor,
            "batch={batch} speedup {speedup:.2}x below the {floor}x floor"
        );
    }
    assert!(
        hit_rate >= 0.45,
        "credcache hit rate {hit_rate:.2} below the 0.45 floor"
    );
}
