//! E1 / Fig. 9 — regenerate the paper's join-execution-time figure.
//!
//! The paper reports (on a P4 2 GHz, Tomcat + Axis + Oracle):
//! join ≈ 3 s, join with trust negotiation ≈ 4 s (a ~27–33 % increase),
//! standalone trust negotiation ≈ 1 s. We reproduce the *shape* on the
//! calibrated sim-clock and report the real CPU time alongside.

use std::time::Instant;
use trust_vo_bench::obsutil::ObsArgs;
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads;
use trust_vo_negotiation::Strategy;

fn main() {
    let args = ObsArgs::from_env();
    let mut report = Report::new(
        "E1/Fig9",
        "Join execution times (Aircraft Optimization VO, Design Partner Web Portal joining)",
        &["case", "sim wall-clock (s)", "paper (s)", "cpu (ms)"],
    );
    // Under --smoke the cpu column is suppressed so stdout is a pure
    // function of the sim-clock: ci.sh diffs two smoke runs (verified-
    // credential cache on vs off) byte-for-byte.
    let cpu_cell = |d: std::time::Duration| {
        if args.smoke {
            "-".to_string()
        } else {
            format!("{:.3}", d.as_secs_f64() * 1e3)
        }
    };

    // (a) Join with trust negotiation. The clock is reset after scenario
    // construction so only the join process itself is measured. With
    // --emit-obs, this is the instrumented case that lands in the dump.
    let clock = workloads::paper_clock();
    let collector = args.collector_for(&clock);
    let mut s = workloads::scenario(clock);
    s.toolkit.clock.reset();
    let cpu = Instant::now();
    workloads::join_with_tn(&mut s, Strategy::Standard).expect("join succeeds");
    let cpu_with = cpu.elapsed();
    let sim_with = s.toolkit.clock.elapsed();
    if collector.is_enabled() {
        collector.event(
            "bench.case",
            vec![
                ("experiment".to_string(), "E1/Fig9".into()),
                ("case".to_string(), "join-with-tn".into()),
            ],
        );
        args.dump(&collector);
    }

    // (b) Join without trust negotiation.
    let mut s = workloads::scenario(workloads::paper_clock());
    s.toolkit.clock.reset();
    let cpu = Instant::now();
    workloads::join_without_tn(&mut s).expect("join succeeds");
    let cpu_without = cpu.elapsed();
    let sim_without = s.toolkit.clock.elapsed();

    // (c) Standalone trust negotiation from the TN service.
    let s = workloads::scenario(workloads::paper_clock());
    s.toolkit.clock.reset();
    let cpu = Instant::now();
    workloads::standalone_tn(&s, Strategy::Standard).expect("negotiation succeeds");
    let cpu_tn = cpu.elapsed();
    let sim_tn = s.toolkit.clock.elapsed();

    report.row(
        "Join with trust negotiation",
        &[
            format!("{:.2}", sim_with.as_secs_f64()),
            "~4".into(),
            cpu_cell(cpu_with),
        ],
    );
    report.row(
        "Join",
        &[
            format!("{:.2}", sim_without.as_secs_f64()),
            "~3".into(),
            cpu_cell(cpu_without),
        ],
    );
    report.row(
        "Trust negotiation",
        &[
            format!("{:.2}", sim_tn.as_secs_f64()),
            "~1".into(),
            cpu_cell(cpu_tn),
        ],
    );
    let overhead = (sim_with.as_secs_f64() / sim_without.as_secs_f64() - 1.0) * 100.0;
    report.note(&format!(
        "TN adds {overhead:.0}% to the join (paper: ~27-33%); sim wall-clock uses \
         the CostModel::paper_testbed() latencies (DESIGN.md §3)"
    ));
    report.print();

    // Shape assertions: fail loudly if the reproduction drifts.
    assert!(sim_with > sim_without, "join with TN must cost more");
    assert!(
        sim_tn < sim_without,
        "standalone TN must be cheaper than the join"
    );
    let ratio = sim_with.as_secs_f64() / sim_without.as_secs_f64();
    assert!(
        (1.1..=1.7).contains(&ratio),
        "overhead ratio {ratio} outside the paper's shape"
    );
}
