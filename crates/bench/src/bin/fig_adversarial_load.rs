//! E14 — adversarial load: a flooding identity vs. per-party flow budgets.
//!
//! One identity ("FloodCo") hammers the TN service with bogus
//! `StartNegotiation` calls *interleaved with* an honest resilient
//! formation on the same bus, clock, and netsim fault plan. With the
//! `trust-vo-admission` mana gate installed, the flood drains its own
//! bucket within the first burst and every further start is refused with
//! a typed `budget_exhausted` fault **before** any service time is
//! charged — so the honest formation's latency stays within 25 % of the
//! flood-free baseline. The same flood against an ungated bus (the
//! pre-admission path) charges a full SOAP round trip per bogus start
//! and visibly starves the honest work; the slowdown ratio is the
//! `BENCH_admission.json` floor.
//!
//! Checks built into the run:
//!
//! * every flood round observes `budget_exhausted` refusals, and the
//!   flooder's admitted calls stay well under its attempts;
//! * honest formations complete in every round, flooded or not, and the
//!   flooded p95 total sim time is ≤ 1.25× the flood-free p95;
//! * the unthrottled (ungated) flood run is measurably slower than the
//!   gated one — the floor asserted and recorded in the JSON report;
//! * serial and parallel admitted formations produce identical members,
//!   sim time, recovery counters, and reputation scores;
//! * an observed run replays an unobserved one bit-for-bit, and the
//!   critical-path analyzer attributes ≥ 95 % of the flood-free
//!   formation root (the flood round is exempt: its traffic is
//!   deliberately untraced background load inside the root's window).
//!
//! `--smoke --seed 42 --emit-obs/--emit-trace <path>` is the CI gate: the
//! flood round's dump is scrubbed of wall-clock fields so two same-seed
//! runs are byte-identical. `--plain` drives the same workload through
//! the pre-admission path (ungated bus, plain `form_vo_resilient`);
//! running *without* `--plain` but with `TRUST_VO_ADMISSION=off` must
//! produce byte-identical dumps — the kill-switch contract CI diffs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use trust_vo_admission::{admission_enabled, AdmissionGate, ManaConfig, ManaLedger};
use trust_vo_bench::obsutil::ObsArgs;
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads::{self, ParallelJoinWorld};
use trust_vo_negotiation::Strategy;
use trust_vo_netsim::{FaultPlan, NetSim};
use trust_vo_soa::simclock::{CostModel, SimClock, SimDuration};
use trust_vo_soa::{Envelope, Fault, ResumePolicy, RetryPolicy, ServiceBus, TnService, Transport};
use trust_vo_store::Database;
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::{
    form_vo_resilient, form_vo_resilient_admitted, form_vo_resilient_parallel_admitted,
    register_formation_parties, AdmissionControl, FormedVo, ReputationLedger,
};
use trust_vo_xmldoc::Element;

const DEFAULT_SEED: u64 = 14;
const WORKERS: usize = 4;
/// Per-direction message loss for every round: enough to exercise
/// retries alongside budget refusals without dominating the latency.
const LOSS: f64 = 0.05;
/// Bogus starts fired at the bus before each honest call.
const FLOOD_PER_CALL: usize = 3;
/// The flooding identity. Never registered with the TN service: its
/// admitted calls burn a round trip and fault with `UnknownParty`.
const FLOODER: &str = "FloodCo";
/// High bit pattern keeping flood idempotency keys out of the honest
/// drivers' SplitMix64 key space.
const FLOOD_KEY_BASE: u64 = 0xF100_D000_0000_0000;
/// Honest latency floor: flooded p95 must stay within this factor of the
/// flood-free p95 (ISSUE E14 acceptance: 25 %).
const HONEST_P95_FACTOR: f64 = 1.25;
/// BENCH floor: the unthrottled flood must slow the honest formation by
/// at least this factor over the flood-free baseline, while the
/// throttled flood stays within [`HONEST_P95_FACTOR`].
const UNTHROTTLED_SLOWDOWN_FLOOR: f64 = 1.25;

/// Which bus/driver stack a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    /// Mana-gated bus + admission-aware drivers (the E14 subject).
    Admitted,
    /// Pre-admission path: ungated bus, plain `form_vo_resilient`.
    Plain,
}

/// The flood's mana profile: a burst of 6 starts, then a regeneration
/// trickle far below the flood rate — tight enough that refusals appear
/// even in the smoke world, loose enough that honest parties (one start
/// per role, plus rare restarts) never graze it.
fn flood_mana_config() -> ManaConfig {
    ManaConfig {
        capacity: 6.0,
        refill_per_sec: 0.25,
        cost_per_call: 1.0,
    }
}

/// Everything a case produces that determinism must preserve.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    members: Vec<(String, String, u64)>,
    /// Sim time at the end of the round (flood + formation).
    total: SimDuration,
    negotiations: u64,
    retries: u64,
    resumes: u64,
    restarts: u64,
    delivered: u64,
    drops: u64,
    dedup_replays: u64,
    flood_attempts: u64,
    flood_admitted: u64,
    flood_refused: u64,
    flood_lost: u64,
    /// Reputation scores the admission engine holds after the round.
    scores: Vec<(String, u64)>,
}

fn membership(vo: &FormedVo) -> Vec<(String, String, u64)> {
    vo.members()
        .iter()
        .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
        .collect()
}

/// A paper-cost clock anchored at the workload epoch.
fn paper_clock_at_epoch() -> SimClock {
    SimClock::new(CostModel::paper_testbed(), workloads::at())
}

/// A [`Transport`] decorator that fires `per_call` bogus starts from the
/// flooding identity at the wrapped netsim before forwarding each honest
/// call — background adversarial load sharing the honest drive's bus,
/// clock, and fault plan. Flood envelopes carry their own idempotency
/// keys, so netsim's per-key decision streams for honest calls are
/// untouched and the interleave replays deterministically under a serial
/// drive.
struct FloodingNet<'a> {
    net: &'a NetSim,
    per_call: usize,
    counter: AtomicU64,
    admitted: AtomicU64,
    refused: AtomicU64,
    lost: AtomicU64,
}

impl<'a> FloodingNet<'a> {
    fn new(net: &'a NetSim, per_call: usize) -> Self {
        FloodingNet {
            net,
            per_call,
            counter: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            lost: AtomicU64::new(0),
        }
    }

    fn burst(&self) {
        for _ in 0..self.per_call {
            let i = self.counter.fetch_add(1, Ordering::SeqCst);
            let env = Envelope::request(
                "StartNegotiation",
                Element::new("StartNegotiationRequest")
                    .child(Element::new("strategy").text(Strategy::Standard.wire_name()))
                    .child(Element::new("requester").text(FLOODER))
                    .child(Element::new("counterpartUrl").text("tn"))
                    .child(Element::new("resource").text("VoMembership")),
            )
            .with_idempotency(FLOOD_KEY_BASE | i);
            match self.net.call("tn", &env) {
                Err(f) if f.is_budget_exhausted() => {
                    self.refused.fetch_add(1, Ordering::SeqCst);
                }
                Err(f) if f.is_transport() => {
                    self.lost.fetch_add(1, Ordering::SeqCst);
                }
                // Delivered: either a (never-issued) success or the TN
                // service's `UnknownParty` application fault — both paid
                // the round trip, which is all the flood is after.
                _ => {
                    self.admitted.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }
}

impl Transport for FloodingNet<'_> {
    fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
        self.burst();
        self.net.call(service, request)
    }

    fn clock(&self) -> &SimClock {
        self.net.clock()
    }
}

/// Run one flooded (or flood-free, `per_call = 0`) formation round.
/// `workers = None` drives the serial engine, `Some(n)` the parallel
/// one. When `obs` is given a collector rides the round's clock;
/// `dump` writes the deterministic artifacts, `verify_attr` gates on the
/// critical-path analyzer.
#[allow(clippy::too_many_arguments)]
fn run_case(
    world: &ParallelJoinWorld,
    plan: FaultPlan,
    seed: u64,
    per_call: usize,
    path: Path,
    workers: Option<usize>,
    obs: Option<&ObsArgs>,
    dump: bool,
    verify_attr: bool,
) -> Outcome {
    let clock = paper_clock_at_epoch();
    let collector = obs.map(|a| a.collector_for(&clock));
    let bus = ServiceBus::new(clock.clone());
    let svc = Arc::new(TnService::new(clock.clone(), Database::new()));
    register_formation_parties(&svc, &world.contract, &world.initiator, &world.providers);
    bus.register("tn", svc.clone());
    let mana = Arc::new(ManaLedger::new(flood_mana_config()));
    if path == Path::Admitted {
        if admission_enabled() {
            if let Some(c) = collector.as_ref().filter(|c| c.is_enabled()) {
                mana.attach_obs(c);
            }
        }
        bus.set_gate(Arc::new(AdmissionGate::new(
            mana.clone(),
            bus.clock().clone(),
        )));
    }
    let net = NetSim::new(bus, plan);
    let flood = FloodingNet::new(&net, per_call);

    let admission = AdmissionControl::default();
    if path == Path::Admitted && admission_enabled() {
        if let Some(c) = collector.as_ref().filter(|c| c.is_enabled()) {
            admission.engine().attach_obs(c);
        }
    }
    let mut mailboxes = MailboxSystem::new();
    let mut reputation = ReputationLedger::new();
    let retry = RetryPolicy::standard();
    let resume = ResumePolicy::standard();
    let formed = match (path, workers) {
        (Path::Admitted, None) => form_vo_resilient_admitted(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &flood,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            seed,
            &admission,
        ),
        (Path::Admitted, Some(n)) => form_vo_resilient_parallel_admitted(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &flood,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            seed,
            n,
            &admission,
        ),
        (Path::Plain, _) => form_vo_resilient(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &flood,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            seed,
        ),
    };
    let (vo, stats) = formed.expect("E14 formation completes under adversarial load");
    assert_eq!(
        vo.members().len(),
        world.contract.roles.len(),
        "every role must be filled"
    );

    if let (Some(args), Some(collector)) = (obs, collector.as_ref()) {
        if dump {
            args.dump_deterministic(collector);
            args.dump_trace_deterministic(collector);
        }
        if verify_attr && collector.is_enabled() {
            verify_attribution(collector);
        }
    }

    let m = net.metrics();
    Outcome {
        members: membership(&vo),
        total: net.clock().elapsed(),
        negotiations: stats.negotiations,
        retries: stats.retries,
        resumes: stats.resumes,
        restarts: stats.restarts,
        delivered: m.delivered.get(),
        drops: m.drops.get(),
        dedup_replays: m.dedup_replays.get(),
        flood_attempts: flood.counter.load(Ordering::SeqCst),
        flood_admitted: flood.admitted.load(Ordering::SeqCst),
        flood_refused: flood.refused.load(Ordering::SeqCst),
        flood_lost: flood.lost.load(Ordering::SeqCst),
        // Bit-exact score comparison across replays and thread counts.
        scores: admission
            .engine()
            .snapshot()
            .into_iter()
            .map(|(p, s)| (p, s.to_bits()))
            .collect(),
    }
}

/// E14 observability acceptance, reused from E13: the critical-path
/// analyzer must account for ≥ 95 % of each formation root's sim time.
/// Only meaningful on the flood-free round — flood traffic is untraced
/// background load and lands, by design, in the unattributed residual.
fn verify_attribution(collector: &trust_vo_obs::Collector) {
    use trust_vo_obs::critical;
    let records = collector.export_records(true);
    let root_ids: Vec<u64> = critical::roots(&records, "formation.form_vo_resilient")
        .iter()
        .map(|s| s.id)
        .collect();
    assert!(
        !root_ids.is_empty(),
        "an observed E14 run must record a formation root span"
    );
    for root_id in root_ids {
        let a = critical::attribute(&records, root_id).expect("root is in its own export");
        eprintln!("{}", critical::render_attribution(&a));
        assert!(
            a.attributed_fraction() >= 0.95,
            "attribution covers only {:.1}% of formation root {root_id}",
            100.0 * a.attributed_fraction(),
        );
    }
}

/// p95 over a small sample: the value at ceil(0.95·n) in sorted order.
fn p95(samples: &[SimDuration]) -> SimDuration {
    let mut sorted: Vec<u64> = samples.iter().map(|d| d.0).collect();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 * 0.95).ceil() as usize).max(1) - 1;
    SimDuration(sorted[idx])
}

fn secs(d: SimDuration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

fn row_values(o: &Outcome) -> Vec<String> {
    vec![
        secs(o.total),
        o.flood_attempts.to_string(),
        o.flood_admitted.to_string(),
        o.flood_refused.to_string(),
        o.flood_lost.to_string(),
        o.retries.to_string(),
        o.restarts.to_string(),
        o.members.len().to_string(),
    ]
}

const COLUMNS: [&str; 8] = [
    "total sim (s)",
    "flood tries",
    "admitted",
    "refused",
    "lost",
    "retries",
    "restarts",
    "roles",
];

/// Kill-switch / pre-admission pass-through: one flood round (everything
/// rides free), replayed for determinism, dumped for the CI byte-identity
/// gate. `--plain` and `TRUST_VO_ADMISSION=off` must land here on
/// identical artifacts.
fn run_passthrough(world: &ParallelJoinWorld, seed: u64, path: Path, args: &ObsArgs) {
    let plan = FaultPlan::lossy(seed, LOSS);
    let run = run_case(
        world,
        plan.clone(),
        seed,
        FLOOD_PER_CALL,
        path,
        None,
        Some(args),
        true,
        false,
    );
    let replay = run_case(
        world,
        plan,
        seed,
        FLOOD_PER_CALL,
        path,
        None,
        None,
        false,
        false,
    );
    assert_eq!(run, replay, "pass-through must replay identically");
    assert_eq!(
        run.flood_refused, 0,
        "without budgets nothing is ever refused"
    );
    assert!(run.scores.is_empty(), "no admission ⇒ no scoring");
    let mut report = Report::new(
        "E14",
        "Adversarial load, admission disabled (pre-admission pass-through)",
        &COLUMNS,
    );
    report.row("flood unthrottled", &row_values(&run));
    report.note(&format!(
        "seed = {seed}; admission gate and scoring disabled — every bogus start \
         paid a full round trip"
    ));
    report.print();
}

fn main() {
    let args = ObsArgs::from_env();
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    let plain = std::env::args().any(|a| a == "--plain");
    let (applicants, depth, alternatives, rounds): (usize, usize, usize, usize) = if args.smoke {
        (3, 4, 2, 2)
    } else {
        (5, 8, 2, 4)
    };
    let world = workloads::parallel_join_world(applicants, depth, alternatives);

    if plain || !admission_enabled() {
        let path = if plain { Path::Plain } else { Path::Admitted };
        run_passthrough(&world, seed, path, &args);
        return;
    }

    let plan_for = |s: u64| FaultPlan::lossy(s, LOSS);
    let mut report = Report::new(
        "E14",
        "Adversarial load: flooding identity vs. per-party flow budgets",
        &COLUMNS,
    );

    // Flood-free baselines and flooded rounds, seed-varied for a latency
    // distribution.
    let mut baseline = Vec::new();
    let mut flooded = Vec::new();
    for r in 0..rounds {
        let s = seed.wrapping_add(101 * r as u64);
        let base = run_case(
            &world,
            plan_for(s),
            s,
            0,
            Path::Admitted,
            None,
            None,
            false,
            false,
        );
        let flood = run_case(
            &world,
            plan_for(s),
            s,
            FLOOD_PER_CALL,
            Path::Admitted,
            None,
            None,
            false,
            false,
        );
        assert!(
            flood.flood_refused > 0,
            "round {r}: the flood must hit the budget wall"
        );
        assert!(
            flood.flood_admitted < flood.flood_attempts / 2,
            "round {r}: most of the flood must be refused \
             ({} of {} admitted)",
            flood.flood_admitted,
            flood.flood_attempts
        );
        assert_eq!(
            base.members, flood.members,
            "round {r}: the flood must not change who is admitted"
        );
        report.row(&format!("flood-free r{r}"), &row_values(&base));
        report.row(&format!("flood gated r{r}"), &row_values(&flood));
        baseline.push(base);
        flooded.push(flood);
    }

    // Honest-latency acceptance: flooded p95 within 25 % of flood-free.
    let base_p95 = p95(&baseline.iter().map(|o| o.total).collect::<Vec<_>>());
    let flood_p95 = p95(&flooded.iter().map(|o| o.total).collect::<Vec<_>>());
    assert!(
        flood_p95.0 as f64 <= base_p95.0 as f64 * HONEST_P95_FACTOR,
        "budgets must keep honest p95 within {HONEST_P95_FACTOR}x of the \
         flood-free baseline (flooded {flood_p95:?} vs baseline {base_p95:?})"
    );

    // Parallel admitted formation must replay the serial one exactly —
    // same members, sim time, recovery counters, and scores. Flood-free:
    // the background-flood interleave is only deterministic serially.
    let parallel = run_case(
        &world,
        plan_for(seed),
        seed,
        0,
        Path::Admitted,
        Some(WORKERS),
        None,
        false,
        false,
    );
    assert_eq!(
        parallel, baseline[0],
        "parallel admitted formation must replay the serial one"
    );

    // The same flood with no gate: the pre-admission path pays a round
    // trip per bogus start, and the honest formation wears the delay.
    let unthrottled = run_case(
        &world,
        plan_for(seed),
        seed,
        FLOOD_PER_CALL,
        Path::Plain,
        None,
        None,
        false,
        false,
    );
    assert_eq!(unthrottled.flood_refused, 0);
    report.row("flood unthrottled", &row_values(&unthrottled));
    let slowdown = unthrottled.total.0 as f64 / baseline[0].total.0 as f64;
    let gated_ratio = flooded[0].total.0 as f64 / baseline[0].total.0 as f64;
    assert!(
        slowdown >= UNTHROTTLED_SLOWDOWN_FLOOR,
        "the unthrottled flood should demonstrably starve honest work \
         (only {slowdown:.2}x over baseline)"
    );
    assert!(
        unthrottled.total > flooded[0].total,
        "budgets must beat the ungated bus under the same flood"
    );

    // Observed flood round: deterministic dumps for the CI byte-identity
    // gate, and proof that observation never perturbs the run. The
    // critical-path gate rides a flood-free observed round instead (the
    // flood is untraced background load by design).
    let observed = run_case(
        &world,
        plan_for(seed),
        seed,
        FLOOD_PER_CALL,
        Path::Admitted,
        None,
        Some(&args),
        true,
        false,
    );
    assert_eq!(
        observed, flooded[0],
        "an observed run must replay an unobserved one"
    );
    let attributed = run_case(
        &world,
        plan_for(seed),
        seed,
        0,
        Path::Admitted,
        None,
        Some(&args),
        false,
        true,
    );
    assert_eq!(
        attributed, baseline[0],
        "the attribution round must replay the baseline"
    );

    let loss_pct = LOSS * 100.0;
    report.note(&format!(
        "seed = {seed}; {applicants} applicants, chain depth {depth}, \
         {alternatives} alternatives, {loss_pct:.0}% loss/direction, \
         {FLOOD_PER_CALL} bogus starts per honest call; mana capacity {}, \
         refill {}/s",
        flood_mana_config().capacity,
        flood_mana_config().refill_per_sec,
    ));
    report.note(&format!(
        "honest p95: flood-free {}s, flooded {}s ({gated_ratio:.2}x, floor \
         {HONEST_P95_FACTOR}x); unthrottled flood {}s ({slowdown:.2}x, \
         floor {UNTHROTTLED_SLOWDOWN_FLOOR}x)",
        secs(base_p95),
        secs(flood_p95),
        secs(unthrottled.total),
    ));
    report.note(
        "serial == parallel, observed == unobserved, and replay == run \
         asserted; flood keys never touch honest decision streams",
    );
    report.print();

    if !args.smoke {
        std::fs::write("BENCH_admission.json", report.to_json() + "\n")
            .expect("writing BENCH_admission.json");
        eprintln!("wrote BENCH_admission.json");
    }
}
