//! E11 — formation over a faulty transport: loss sweep + crash/resume.
//!
//! Drives the transport-backed formation (`form_vo_resilient`, serial and
//! parallel) through the `trust-vo-netsim` fault injector at 0 / 1 / 5 /
//! 20 % per-direction message loss, and once more at 20 % loss with a
//! crash outage dropped mid-run so at least one negotiation must resume
//! from its durable checkpoint. Everything is simulated time on a
//! paper-calibrated clock; the whole sweep is a pure function of
//! `--seed`, which this harness proves by replaying the loss rows and
//! asserting identical outcomes.
//!
//! Checks built into the run:
//!
//! * every row completes — at 20 % loss each admission still lands via
//!   retry/backoff (and, in the crash row, checkpointed resume);
//! * serial and parallel admit identical members, burn identical sim
//!   time, and report identical recovery counters at every loss rate;
//! * the 0 % row is a strict pass-through: outcome, sim time, and
//!   recovery counters equal a run on the bare `ServiceBus`, with zero
//!   injected faults;
//! * the crash row observes `negotiation.resumed > 0` on the TN service.
//!
//! `--smoke --seed 42 --emit-obs <path>` is the CI chaos smoke: a tiny
//! world, with the dump scrubbed of wall-clock fields so two runs are
//! byte-identical. `--emit-trace <path>` additionally writes the crash
//! row's span tree as deterministic Perfetto/Chrome trace-event JSON;
//! any observed run also gates on the critical-path analyzer attributing
//! ≥ 95% of each formation root's simulated time.

use std::sync::Arc;
use trust_vo_bench::obsutil::ObsArgs;
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads::{self, ParallelJoinWorld};
use trust_vo_negotiation::Strategy;
use trust_vo_netsim::{FaultPlan, NetSim};
use trust_vo_soa::simclock::{CostModel, SimClock, SimDuration};
use trust_vo_soa::{ResumePolicy, RetryPolicy, ServiceBus, TnService, Transport};
use trust_vo_store::Database;
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::{
    form_vo_resilient, form_vo_resilient_parallel, register_formation_parties, FormedVo,
    ReputationLedger,
};

const DEFAULT_SEED: u64 = 9;
const WORKERS: usize = 4;

/// Everything a case produces that determinism must preserve.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    members: Vec<(String, String, u64)>,
    elapsed: SimDuration,
    negotiations: u64,
    retries: u64,
    resumes: u64,
    restarts: u64,
    delivered: u64,
    drops: u64,
    dups: u64,
    dedup_replays: u64,
    /// Sessions the TN service resumed from a checkpoint.
    service_resumed: u64,
}

fn membership(vo: &FormedVo) -> Vec<(String, String, u64)> {
    vo.members()
        .iter()
        .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
        .collect()
}

/// A paper-cost clock anchored at the workload epoch (the batch world's
/// credentials are valid from the scenario date, not the paper's default
/// start time).
fn paper_clock_at_epoch() -> SimClock {
    SimClock::new(CostModel::paper_testbed(), workloads::at())
}

/// Run one formation through a fresh TN service behind the given fault
/// plan. `workers = None` drives the serial engine, `Some(n)` the
/// parallel one. When `obs` is given, a collector rides the case's clock
/// and is dumped (deterministically) after the run.
fn run_case(
    world: &ParallelJoinWorld,
    plan: FaultPlan,
    seed: u64,
    workers: Option<usize>,
    obs: Option<&ObsArgs>,
) -> Outcome {
    let clock = paper_clock_at_epoch();
    let collector = obs.map(|a| a.collector_for(&clock));
    let bus = ServiceBus::new(clock.clone());
    let svc = Arc::new(TnService::new(clock.clone(), Database::new()));
    register_formation_parties(&svc, &world.contract, &world.initiator, &world.providers);
    bus.register("tn", svc.clone());
    let net = NetSim::new(bus, plan);

    let mut mailboxes = MailboxSystem::new();
    let mut reputation = ReputationLedger::new();
    let retry = RetryPolicy::standard();
    let resume = ResumePolicy::standard();
    let formed = match workers {
        None => form_vo_resilient(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &net,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            seed,
        ),
        Some(n) => form_vo_resilient_parallel(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &net,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            seed,
            n,
        ),
    };
    let (vo, stats) = formed.expect("E11 formation completes under the fault plan");
    assert_eq!(
        vo.members().len(),
        world.contract.roles.len(),
        "every role must be filled"
    );

    if let (Some(args), Some(collector)) = (obs, collector.as_ref()) {
        args.dump_deterministic(collector);
        args.dump_trace_deterministic(collector);
        if collector.is_enabled() {
            verify_attribution(collector);
        }
    }

    let m = net.metrics();
    Outcome {
        members: membership(&vo),
        elapsed: net.clock().elapsed(),
        negotiations: stats.negotiations,
        retries: stats.retries,
        resumes: stats.resumes,
        restarts: stats.restarts,
        delivered: m.delivered.get(),
        drops: m.drops.get(),
        dups: m.dups.get(),
        dedup_replays: m.dedup_replays.get(),
        service_resumed: svc.resumed_count(),
    }
}

/// E11 acceptance: the critical-path analyzer must account for at least
/// 95% of each formation root span's simulated time, with the residual
/// reported explicitly. The per-formation table goes to stderr so stdout
/// stays the report.
fn verify_attribution(collector: &trust_vo_obs::Collector) {
    use trust_vo_obs::critical;
    let records = collector.export_records(true);
    let root_ids: Vec<u64> = critical::roots(&records, "formation.form_vo_resilient")
        .iter()
        .map(|s| s.id)
        .collect();
    assert!(
        !root_ids.is_empty(),
        "an observed E11 run must record a formation root span"
    );
    for root_id in root_ids {
        let a = critical::attribute(&records, root_id).expect("root is in its own export");
        eprintln!("{}", critical::render_attribution(&a));
        assert!(
            a.attributed_fraction() >= 0.95,
            "attribution covers only {:.1}% of formation root {root_id} \
             (unattributed {} of {} µs)",
            100.0 * a.attributed_fraction(),
            a.unattributed_us,
            a.total_sim_us,
        );
    }
}

/// The 0 %-loss reference: the same formation on the bare bus.
fn run_bare(world: &ParallelJoinWorld, seed: u64) -> Outcome {
    let clock = paper_clock_at_epoch();
    let bus = ServiceBus::new(clock.clone());
    let svc = Arc::new(TnService::new(clock.clone(), Database::new()));
    register_formation_parties(&svc, &world.contract, &world.initiator, &world.providers);
    bus.register("tn", svc.clone());
    let (vo, stats) = form_vo_resilient(
        world.contract.clone(),
        &world.initiator,
        &world.providers,
        &world.registry,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &bus,
        "tn",
        Strategy::Standard,
        &RetryPolicy::standard(),
        &ResumePolicy::standard(),
        seed,
    )
    .expect("bare-bus formation completes");
    Outcome {
        members: membership(&vo),
        elapsed: bus.clock().elapsed(),
        negotiations: stats.negotiations,
        retries: stats.retries,
        resumes: stats.resumes,
        restarts: stats.restarts,
        delivered: 0,
        drops: 0,
        dups: 0,
        dedup_replays: 0,
        service_resumed: svc.resumed_count(),
    }
}

fn main() {
    let args = ObsArgs::from_env();
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    // --smoke: a tiny world and the two interesting loss rates, so CI can
    // replay the chaos run (and diff its deterministic obs dump) fast.
    let (applicants, depth, alternatives, losses): (usize, usize, usize, &[f64]) = if args.smoke {
        (3, 4, 2, &[0.0, 0.20])
    } else {
        (6, 10, 3, &[0.0, 0.01, 0.05, 0.20])
    };
    let world = workloads::parallel_join_world(applicants, depth, alternatives);

    let mut report = Report::new(
        "E11",
        "Formation over a faulty transport: loss sweep, serial vs. parallel, crash resume",
        &[
            "serial sim (s)",
            "parallel sim (s)",
            "delivered",
            "drops",
            "dups",
            "retries",
            "resumes",
            "restarts",
        ],
    );

    let mut elapsed_at_heaviest = SimDuration::ZERO;
    for &loss in losses {
        // 0% means a perfect network (no loss AND no link latency), so the
        // bare-bus comparison below is apples-to-apples.
        let plan = if loss == 0.0 {
            FaultPlan::reliable(seed)
        } else {
            FaultPlan::lossy(seed, loss)
        };
        let serial = run_case(&world, plan.clone(), seed, None, None);
        let parallel = run_case(&world, plan.clone(), seed, Some(WORKERS), None);
        // Loss/duplication decisions are a pure function of each call's
        // idempotency-key stream, so the thread pool must change nothing.
        assert_eq!(serial, parallel, "parallel must replay serial at {loss}");

        // Replaying the same seed must reproduce the run bit-for-bit.
        let replay = run_case(&world, plan, seed, None, None);
        assert_eq!(serial, replay, "same seed must replay identically");

        if loss == 0.0 {
            // A reliable plan is a strict pass-through: same outcome, same
            // sim time, nothing injected, nothing recovered.
            let bare = run_bare(&world, seed);
            assert_eq!(serial.members, bare.members);
            assert_eq!(serial.elapsed, bare.elapsed);
            assert_eq!(
                (
                    serial.negotiations,
                    serial.retries,
                    serial.resumes,
                    serial.restarts
                ),
                (bare.negotiations, bare.retries, bare.resumes, bare.restarts),
            );
            assert_eq!(serial.drops + serial.dups + serial.dedup_replays, 0);
        }
        elapsed_at_heaviest = serial.elapsed;

        report.row(
            &format!("{:.0}%", loss * 100.0),
            &[
                format!("{:.2}", serial.elapsed.as_secs_f64()),
                format!("{:.2}", parallel.elapsed.as_secs_f64()),
                serial.delivered.to_string(),
                serial.drops.to_string(),
                serial.dups.to_string(),
                serial.retries.to_string(),
                serial.resumes.to_string(),
                serial.restarts.to_string(),
            ],
        );
    }

    // Crash row: 20 % loss plus a crash outage dropped at ~45 % of the
    // measured heavy-loss run, long enough that in-flight sessions are
    // wiped and must resume from their checkpoints. Serial only — crash
    // windows fire on whichever call reaches them first, which is only
    // deterministic under a serial drive. This is also the scenario whose
    // obs stream the CI smoke diffs, so the collector rides this case.
    let outage_start = SimDuration((elapsed_at_heaviest.0 as f64 * 0.45) as u64);
    let outage_end = outage_start + SimDuration::from_millis(1_200);
    let crash_plan = FaultPlan::lossy(seed, 0.20).outage("tn", outage_start, outage_end, true);
    let crashed = run_case(&world, crash_plan.clone(), seed, None, Some(&args));
    let crash_replay = run_case(&world, crash_plan, seed, None, None);
    assert_eq!(
        crashed, crash_replay,
        "crash schedule must replay identically"
    );
    assert!(
        crashed.resumes > 0 && crashed.service_resumed > 0,
        "the crash window must force at least one checkpointed resume \
         (client resumes: {}, service resumed: {})",
        crashed.resumes,
        crashed.service_resumed,
    );
    report.row(
        "20%+crash",
        &[
            format!("{:.2}", crashed.elapsed.as_secs_f64()),
            "—".to_string(),
            crashed.delivered.to_string(),
            crashed.drops.to_string(),
            crashed.dups.to_string(),
            crashed.retries.to_string(),
            crashed.resumes.to_string(),
            crashed.restarts.to_string(),
        ],
    );

    report.note(&format!(
        "seed = {seed}; {applicants} applicants, chain depth {depth}, {alternatives} \
         alternatives; loss is per direction (end-to-end ≈ 2p−p²); crash row resumed \
         {} negotiation(s) from durable checkpoints",
        crashed.service_resumed
    ));
    report.note(
        "serial == parallel and replay == run asserted at every loss rate; \
         0% row asserted equal to the bare-bus baseline",
    );
    report.print();
}
