//! E10 — parallel batch admission: serial vs. parallel formation table.
//!
//! Forms a VO whose contract has one role per applicant (4 / 16 / 64),
//! each admission guarded by a deep chain of interlocking disclosure
//! policies, and compares the serial engine against `form_vo_parallel` on
//! real CPU time. Both engines must produce identical membership —
//! members, roles, certificate serials — which this harness also checks.

use std::time::Instant;
use trust_vo_bench::obsutil::ObsArgs;
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads;
use trust_vo_negotiation::{ConcurrentSequenceCache, Strategy};
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::{form_vo, form_vo_parallel, FormedVo, ReputationLedger};

const DEPTH: usize = 20;
const ALTERNATIVES: usize = 10;

fn membership(vo: &FormedVo) -> Vec<(String, String, u64)> {
    vo.members()
        .iter()
        .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
        .collect()
}

fn main() {
    let args = ObsArgs::from_env();
    // --smoke: one tiny workload so CI can exercise the binary (including
    // with the obs feature compiled out) in well under a second.
    let (sizes, depth, alternatives): (&[usize], usize, usize) = if args.smoke {
        (&[4], 4, 2)
    } else {
        (&[4, 16, 64], DEPTH, ALTERNATIVES)
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut report = Report::new(
        "E10",
        "Parallel batch admission: serial vs. parallel formation (chain depth 20, 10 alternatives)",
        &[
            "applicants",
            "serial (ms)",
            "parallel (ms)",
            "speedup",
            "cache misses",
        ],
    );

    let mut speedup_at_16 = 0.0_f64;
    for &applicants in sizes {
        let world = workloads::parallel_join_world(applicants, depth, alternatives);

        let serial_clock = workloads::free_clock();
        let start = Instant::now();
        let serial = form_vo(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &serial_clock,
            Strategy::Standard,
        )
        .expect("serial formation succeeds");
        let serial_cpu = start.elapsed();

        let parallel_clock = workloads::free_clock();
        let collector = args.collector_for(&parallel_clock);
        let cache = ConcurrentSequenceCache::new();
        let start = Instant::now();
        let parallel = form_vo_parallel(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &parallel_clock,
            Strategy::Standard,
            &cache,
            workers,
        )
        .expect("parallel formation succeeds");
        let parallel_cpu = start.elapsed();

        assert_eq!(
            membership(&serial),
            membership(&parallel),
            "parallel membership must be byte-identical to serial"
        );
        assert_eq!(
            serial_clock.elapsed(),
            parallel_clock.elapsed(),
            "replay must charge the sim-clock exactly like serial"
        );

        if collector.is_enabled() {
            collector.event(
                "bench.case",
                vec![
                    ("experiment".to_string(), "E10".into()),
                    ("applicants".to_string(), applicants.into()),
                ],
            );
            args.dump(&collector);
        }

        let speedup = serial_cpu.as_secs_f64() / parallel_cpu.as_secs_f64();
        if applicants == 16 {
            speedup_at_16 = speedup;
        }
        report.row(
            &applicants.to_string(),
            &[
                format!("{:.2}", serial_cpu.as_secs_f64() * 1e3),
                format!("{:.2}", parallel_cpu.as_secs_f64() * 1e3),
                format!("{speedup:.2}x"),
                cache.stats().misses.to_string(),
            ],
        );
    }

    report.note(&format!(
        "workers = {workers}; parallel speculates every (role, accepting-candidate) \
         negotiation on a scoped thread pool, then replays the serial decision procedure"
    ));
    report.print();

    // Shape assertion: on a multi-core host the fan-out must pay for
    // itself by 16 applicants (skipped in --smoke, which runs one size).
    if workers >= 4 && !args.smoke {
        assert!(
            speedup_at_16 >= 2.0,
            "expected >= 2x speedup at 16 applicants on {workers} workers, got {speedup_at_16:.2}x"
        );
    }
}
