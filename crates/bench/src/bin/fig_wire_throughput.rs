//! E15 — wire throughput: binary codec vs. XML, sharded dispatch vs. a
//! single-queue bus, and backpressure under flood.
//!
//! Three measurements over the new wire path (every `ServiceBus::call`
//! crosses a length-framed `[len][crc32][payload]` binary envelope
//! boundary; XML stays on as the differential oracle):
//!
//! 1. **Codec sweep** — frame + round-trip a corpus of representative
//!    envelopes (start / policy / credential-bearing bodies) through the
//!    binary codec and through the XML writer/parser, 10k → 1M messages.
//!    Floor: binary ≥ 3× the XML round-trip rate (asserted non-smoke).
//! 2. **Dispatch** — 64+ concurrent negotiations driven (a) through the
//!    single-queue dispatcher bus, every message paying two thread
//!    handoffs, and (b) over the sharded work-stealing executor, every
//!    message dispatching inline on its shard worker. Floor: sharded
//!    ≥ 4× the single-queue drive (asserted non-smoke). Outcomes must be
//!    identical across serial, queued, and sharded drives.
//! 3. **Backpressure** — a flood against a 2-slot dispatch queue: sheds
//!    must surface as typed `Overloaded` faults carrying a drain
//!    estimate, and hint-respecting retries must land every call.
//!
//! Determinism checks built into the run: serial ≡ parallel ≡ replay for
//! a seeded netsim formation over the wire; a crash-window round resumes
//! from checkpoints and replays bit-for-bit; wire-on ≡ wire-off outcome
//! equality (the codec round-trips exactly, so the byte boundary is
//! invisible to results).
//!
//! `--smoke --seed 42 --emit-obs/--emit-trace <path>` is the CI gate: the
//! observed round is driven serially (executor queue counters are
//! scheduling-dependent and never dumped) and scrubbed, so two same-seed
//! runs are byte-identical. `--plain` drives the observed round with the
//! wire path disabled on the bus; running *without* `--plain` but with
//! `TRUST_VO_WIRE=off` must produce byte-identical dumps — the
//! kill-switch contract CI diffs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use trust_vo_bench::obsutil::ObsArgs;
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads::{self, ParallelJoinWorld};
use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
use trust_vo_negotiation::{Party, Strategy};
use trust_vo_netsim::{FaultPlan, NetSim};
use trust_vo_soa::shard::{run_sharded, Backpressure, QueuedBus, ShardConfig};
use trust_vo_soa::simclock::{CostModel, SimClock, SimDuration};
use trust_vo_soa::{
    run_negotiation_resilient, wire, Envelope, Fault, ResumePolicy, RetryPolicy, ServiceBus,
    ServiceEndpoint, TnService, Transport,
};
use trust_vo_store::Database;
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::{
    form_vo_resilient, form_vo_resilient_parallel, register_formation_parties, FormedVo,
    ReputationLedger,
};
use trust_vo_xmldoc::Element;

const DEFAULT_SEED: u64 = 15;
/// Shard workers / caller threads for the dispatch comparison.
const WORKERS: usize = 4;
/// BENCH floor: binary codec round-trip rate over XML round-trip rate.
const CODEC_SPEEDUP_FLOOR: f64 = 3.0;
/// BENCH floor: sharded inline dispatch over the single-queue bus at
/// 64+ concurrent negotiations.
const DISPATCH_SPEEDUP_FLOOR: f64 = 4.0;

/// Representative envelope corpus: the three TN operations with small,
/// medium, and credential-bearing bodies (the shapes that actually cross
/// the bus in a formation).
fn corpus() -> Vec<Envelope> {
    let start = Envelope::request(
        "StartNegotiation",
        Element::new("StartNegotiationRequest")
            .child(Element::new("strategy").text("standard"))
            .child(Element::new("requester").text("Aerospace"))
            .child(Element::new("counterpartUrl").text("Aircraft"))
            .child(Element::new("resource").text("VoMembership")),
    )
    .with_idempotency(0x5EED_0001);

    let mut policies = Element::new("PolicyExchangeRequest");
    for i in 0..8 {
        policies.children.push(trust_vo_xmldoc::Node::Element(
            Element::new("policy")
                .attr("id", format!("p{i}"))
                .child(Element::new("target").text(format!("Cred{i}")))
                .child(Element::new("term").text(format!("Needs{i}"))),
        ));
    }
    let policy = Envelope::request("PolicyExchange", policies)
        .with_negotiation(7)
        .with_idempotency(0x5EED_0002);

    let mut ca = CredentialAuthority::new("WireBench CA");
    let holder = Party::new("WireBench Holder");
    let cred = ca
        .issue(
            "WebDesignerQuality",
            &holder.name,
            holder.keys.public,
            vec![],
            TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
        )
        .expect("open schema");
    let credential = Envelope::request(
        "CredentialExchange",
        Element::new("CredentialExchangeRequest").child(cred.to_xml()),
    )
    .with_negotiation(7)
    .with_idempotency(0x5EED_0003)
    .with_trace(trust_vo_obs::TraceContext {
        trace_id: 11,
        span_id: 42,
        parent_span_id: Some(40),
    });

    vec![start, policy, credential]
}

/// One codec-sweep row: round-trip `count` messages through each path,
/// returning (xml seconds, binary seconds, speedup).
fn codec_round(envelopes: &[Envelope], count: usize) -> (f64, f64, f64) {
    // XML path: write + parse + header extraction, per message.
    let t = Instant::now();
    let mut xml_checksum = 0usize;
    for i in 0..count {
        let env = &envelopes[i % envelopes.len()];
        let text = trust_vo_xmldoc::to_string(&env.to_xml());
        let back = Envelope::from_xml(&trust_vo_xmldoc::parse(&text).expect("canonical"))
            .expect("envelope");
        xml_checksum += back.operation.len();
    }
    let xml_secs = t.elapsed().as_secs_f64();

    // Binary path: encode + frame (crc32) + unframe + decode, per
    // message. `encode_envelope` (not the cached `wire_bytes`) so every
    // iteration pays the full encode, same as the XML side.
    let t = Instant::now();
    let mut bin_checksum = 0usize;
    for i in 0..count {
        let env = &envelopes[i % envelopes.len()];
        let mut frame = Vec::new();
        trust_vo_journal::frame::push_record(&mut frame, &wire::encode_envelope(env));
        let back = wire::unframe_envelope(&frame).expect("clean frame");
        bin_checksum += back.operation.len();
    }
    let bin_secs = t.elapsed().as_secs_f64();

    assert_eq!(xml_checksum, bin_checksum, "codecs must agree on content");
    (
        xml_secs,
        bin_secs,
        xml_secs / bin_secs.max(f64::MIN_POSITIVE),
    )
}

/// A fresh bus with a TN service holding the chain-negotiation pair.
fn negotiation_bus() -> ServiceBus {
    let clock = SimClock::new(CostModel::paper_testbed(), workloads::at());
    let bus = ServiceBus::new(clock.clone());
    let svc = TnService::new(clock, Database::new());
    let (requester, controller) = workloads::chain_parties(4, 2);
    svc.register_party(requester);
    svc.register_party(controller);
    bus.register("tn", Arc::new(svc));
    bus
}

/// Outcome of one negotiation job — everything the drive architecture
/// must not change. (Sim-elapsed snapshots are concurrent reads of a
/// shared clock and are compared at the drive level instead.)
type JobOutcome = (usize, usize, u64);

fn negotiate<T: Transport + ?Sized>(transport: &T, seed: u64) -> JobOutcome {
    let run = run_negotiation_resilient(
        transport,
        "tn",
        "chain-requester",
        "chain-controller",
        "Target",
        Strategy::Standard,
        &RetryPolicy::standard(),
        &ResumePolicy::standard(),
        seed,
        trust_vo_obs::SpanLink::default(),
    )
    .expect("reliable negotiation completes");
    (
        run.run.credential_calls,
        run.run.sequence_len,
        run.retries + run.resumes + run.restarts,
    )
}

/// Serial reference drive: `jobs` negotiations, one after another,
/// straight on the bus (still crossing the wire boundary).
fn drive_serial(jobs: usize) -> (Vec<JobOutcome>, f64) {
    let bus = negotiation_bus();
    let t = Instant::now();
    let outcomes = (0..jobs).map(|i| negotiate(&bus, i as u64)).collect();
    (outcomes, t.elapsed().as_secs_f64())
}

/// Single-queue drive: `WORKERS` caller threads pushing every call of
/// every negotiation through one bounded dispatch queue and its single
/// dispatcher thread — two thread handoffs per message.
fn drive_queued(jobs: usize) -> (Vec<JobOutcome>, f64) {
    let queued = QueuedBus::new(negotiation_bus(), jobs.max(16));
    let next = AtomicUsize::new(0);
    let t = Instant::now();
    let mut outcomes: Vec<(usize, JobOutcome)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let queued = &queued;
                let next = &next;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        mine.push((i, negotiate(queued, i as u64)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("caller threads do not panic"))
            .collect()
    });
    let secs = t.elapsed().as_secs_f64();
    outcomes.sort_by_key(|(i, _)| *i);
    (outcomes.into_iter().map(|(_, o)| o).collect(), secs)
}

/// Sharded drive: the same negotiations as jobs on the work-stealing
/// executor — every bus call dispatches inline on its shard worker.
fn drive_sharded(jobs: usize) -> (Vec<JobOutcome>, f64) {
    let bus = negotiation_bus();
    let clock = bus.clock().clone();
    let shard_jobs: Vec<_> = (0..jobs)
        .map(|i| {
            let bus = &bus;
            move || negotiate(bus, i as u64)
        })
        .collect();
    let t = Instant::now();
    let run = run_sharded(
        ShardConfig::new(WORKERS, 16),
        &clock,
        shard_jobs,
        Backpressure::Block,
    );
    let secs = t.elapsed().as_secs_f64();
    assert!(run.sheds.is_empty(), "Block mode never sheds");
    (
        run.results
            .into_iter()
            .map(|o| o.expect("every job ran"))
            .collect(),
        secs,
    )
}

/// A trivial endpoint for the dispatch-throughput and backpressure
/// cases: the interesting cost is the bus boundary, not the handler.
struct Echo;
impl ServiceEndpoint for Echo {
    fn handle(&self, request: &Envelope) -> Result<Envelope, Fault> {
        Ok(Envelope::request(
            format!("{}Response", request.operation),
            request.body.clone(),
        ))
    }
    fn operations(&self) -> Vec<String> {
        vec!["echo".into()]
    }
}

fn echo_bus(wire: bool) -> ServiceBus {
    let clock = SimClock::new(CostModel::paper_testbed(), workloads::at());
    let bus = ServiceBus::new(clock);
    bus.set_wire(wire);
    bus.register("svc", Arc::new(Echo));
    bus
}

/// Push `jobs` concurrent conversations of `msgs` messages each (cycling
/// `shapes`, fresh idempotency keys so every message pays its own
/// encode) through the single-queue dispatcher bus from `WORKERS` caller
/// threads — two thread handoffs per message. Returns wall seconds.
fn queued_messages(shapes: &[Envelope], jobs: usize, msgs: usize) -> f64 {
    let queued = QueuedBus::new(echo_bus(true), jobs.max(16));
    let next = AtomicUsize::new(0);
    let t = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            let queued = &queued;
            let next = &next;
            s.spawn(move || loop {
                let job = next.fetch_add(1, Ordering::Relaxed);
                if job >= jobs {
                    break;
                }
                for i in 0..msgs {
                    let req = shapes[i % shapes.len()]
                        .clone()
                        .with_idempotency((job * msgs + i) as u64);
                    let resp = queued.call("svc", &req).expect("echo dispatch");
                    assert!(resp.operation.ends_with("Response"));
                }
            });
        }
    });
    t.elapsed().as_secs_f64()
}

/// The same conversations as jobs on the sharded work-stealing executor
/// — every message dispatches inline on its shard worker, no handoff.
/// With `wire` off, in-shard dispatch also skips framing: nothing
/// crosses a thread boundary, so no bytes need to — the structural
/// advantage the floor prices. With `wire` on, each message still pays
/// the full codec, isolating what framing alone costs the inline path.
fn sharded_messages(shapes: &[Envelope], jobs: usize, msgs: usize, wire: bool) -> f64 {
    let bus = echo_bus(wire);
    let clock = bus.clock().clone();
    let shard_jobs: Vec<_> = (0..jobs)
        .map(|job| {
            let bus = &bus;
            move || {
                for i in 0..msgs {
                    let req = shapes[i % shapes.len()]
                        .clone()
                        .with_idempotency((job * msgs + i) as u64);
                    let resp = bus.call("svc", &req).expect("echo dispatch");
                    assert!(resp.operation.ends_with("Response"));
                }
            }
        })
        .collect();
    let t = Instant::now();
    let run = run_sharded(
        ShardConfig::new(WORKERS, 16),
        &clock,
        shard_jobs,
        Backpressure::Block,
    );
    let secs = t.elapsed().as_secs_f64();
    assert!(run.sheds.is_empty(), "Block mode never sheds");
    secs
}

/// Flood a 2-slot dispatch queue from 8 caller threads: sheds must
/// surface as typed `Overloaded` faults with a drain hint, and
/// hint-respecting retries must complete every call. Returns (calls,
/// sheds observed).
fn backpressure_case() -> (usize, u64) {
    let clock = SimClock::new(CostModel::paper_testbed(), workloads::at());
    let bus = ServiceBus::new(clock);
    bus.register("svc", Arc::new(Echo));
    let queued = QueuedBus::new(bus, 2);
    let callers = 8usize;
    let per_caller = 16usize;
    let sheds = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for c in 0..callers {
            let queued = &queued;
            let sheds = &sheds;
            let completed = &completed;
            s.spawn(move || {
                for i in 0..per_caller {
                    let req = Envelope::request("echo", Element::new("x"))
                        .with_idempotency((c * per_caller + i) as u64);
                    // Shed-aware retry: sim-time backoff is instant in
                    // real time, so yield the (possibly single) CPU to
                    // the dispatcher before trying again.
                    let resp = loop {
                        match queued.call("svc", &req) {
                            Ok(resp) => break resp,
                            Err(fault) => {
                                assert!(fault.is_overloaded(), "only sheds expected: {fault:?}");
                                assert!(
                                    fault.retry_after_us.unwrap_or(0) > 0,
                                    "a shed must carry a drain estimate"
                                );
                                sheds.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                        }
                    };
                    assert_eq!(resp.operation, "echoResponse");
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(completed.load(Ordering::Relaxed), callers * per_caller);
    (callers * per_caller, sheds.load(Ordering::Relaxed) as u64)
}

/// Everything a formation case produces that determinism must preserve.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    members: Vec<(String, String, u64)>,
    elapsed: SimDuration,
    negotiations: u64,
    retries: u64,
    resumes: u64,
    restarts: u64,
    delivered: u64,
    drops: u64,
    dedup_replays: u64,
    service_resumed: u64,
}

fn membership(vo: &FormedVo) -> Vec<(String, String, u64)> {
    vo.members()
        .iter()
        .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
        .collect()
}

/// Run one netsim formation over the wire path. `wire = Some(false)`
/// pins the in-process reference path (`--plain`); `None` leaves the
/// `TRUST_VO_WIRE` environment decision in force. `workers = Some(n)`
/// drives the sharded parallel engine. When `obs` is given the round is
/// driven serially and its deterministic dumps written.
fn run_formation(
    world: &ParallelJoinWorld,
    plan: FaultPlan,
    seed: u64,
    wire: Option<bool>,
    workers: Option<usize>,
    obs: Option<&ObsArgs>,
) -> Outcome {
    let clock = SimClock::new(CostModel::paper_testbed(), workloads::at());
    let collector = obs.map(|a| a.collector_for(&clock));
    let bus = ServiceBus::new(clock.clone());
    if let Some(enabled) = wire {
        bus.set_wire(enabled);
    }
    let svc = Arc::new(TnService::new(clock.clone(), Database::new()));
    register_formation_parties(&svc, &world.contract, &world.initiator, &world.providers);
    bus.register("tn", svc.clone());
    let net = NetSim::new(bus, plan);

    let mut mailboxes = MailboxSystem::new();
    let mut reputation = ReputationLedger::new();
    let retry = RetryPolicy::standard();
    let resume = ResumePolicy::standard();
    let formed = match workers {
        None => form_vo_resilient(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &net,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            seed,
        ),
        Some(n) => form_vo_resilient_parallel(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut mailboxes,
            &mut reputation,
            &net,
            "tn",
            Strategy::Standard,
            &retry,
            &resume,
            seed,
            n,
        ),
    };
    let (vo, stats) = formed.expect("E15 formation completes over the wire");
    assert_eq!(vo.members().len(), world.contract.roles.len());

    if let (Some(args), Some(collector)) = (obs, collector.as_ref()) {
        args.dump_deterministic(collector);
        args.dump_trace_deterministic(collector);
    }

    let m = net.metrics();
    Outcome {
        members: membership(&vo),
        elapsed: net.clock().elapsed(),
        negotiations: stats.negotiations,
        retries: stats.retries,
        resumes: stats.resumes,
        restarts: stats.restarts,
        delivered: m.delivered.get(),
        drops: m.drops.get(),
        dedup_replays: m.dedup_replays.get(),
        service_resumed: svc.resumed_count(),
    }
}

fn main() {
    let args = ObsArgs::from_env();
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    let plain = std::env::args().any(|a| a == "--plain");
    let (sweep, jobs, applicants, depth, alternatives): (&[usize], usize, usize, usize, usize) =
        if args.smoke {
            (&[10_000], 64, 3, 4, 2)
        } else {
            (&[10_000, 100_000, 1_000_000], 256, 5, 8, 2)
        };

    let mut report = Report::new(
        "E15",
        "Wire throughput: binary codec vs XML; sharded dispatch vs single queue",
        &[
            "messages/jobs",
            "xml/queued (s)",
            "bin/sharded (s)",
            "speedup",
        ],
    );

    // 1. Codec sweep.
    let envelopes = corpus();
    let mut codec_speedups = Vec::new();
    for &count in sweep {
        let (xml_secs, bin_secs, speedup) = codec_round(&envelopes, count);
        report.row(
            &format!("codec {count}"),
            &[
                count.to_string(),
                format!("{xml_secs:.3}"),
                format!("{bin_secs:.3}"),
                format!("{speedup:.2}x"),
            ],
        );
        codec_speedups.push(speedup);
    }
    if !args.smoke {
        for (i, &speedup) in codec_speedups.iter().enumerate() {
            assert!(
                speedup >= CODEC_SPEEDUP_FLOOR,
                "codec floor: binary must round-trip >= {CODEC_SPEEDUP_FLOOR}x \
                 faster than XML (sweep row {i}: {speedup:.2}x)"
            );
        }
    }

    // 2. Dispatch throughput: the control-plane message stream of `jobs`
    // concurrent formation conversations. The single-queue bus must
    // frame every message — bytes are what cross its thread boundary —
    // and pays two handoffs on top; a sharded job runs *on* the worker
    // that owns dispatch, so in-shard calls cross no thread boundary and
    // need no framing. That structural gap is the floored row. The
    // wire-framing row keeps the codec on the sharded path too (what
    // framing alone costs inline dispatch), and the corpus row shows
    // payload-heavy traffic. Interleaved rounds absorb scheduler noise.
    const MSGS_PER_JOB: usize = 16;
    const DISPATCH_ROUNDS: usize = 3;
    // Minimal control message: dispatch cost, not payload cost.
    let control = vec![Envelope::request(
        "StartNegotiation",
        Element::new("StartNegotiationRequest"),
    )];
    let (mut queued_secs, mut sharded_secs, mut sharded_wire_secs) = (0.0, 0.0, 0.0);
    for _ in 0..DISPATCH_ROUNDS {
        queued_secs += queued_messages(&control, jobs, MSGS_PER_JOB);
        sharded_secs += sharded_messages(&control, jobs, MSGS_PER_JOB, false);
        sharded_wire_secs += sharded_messages(&control, jobs, MSGS_PER_JOB, true);
    }
    let dispatch_speedup = queued_secs / sharded_secs.max(f64::MIN_POSITIVE);
    report.row(
        &format!("dispatch {jobs}x{MSGS_PER_JOB}"),
        &[
            (jobs * MSGS_PER_JOB * DISPATCH_ROUNDS).to_string(),
            format!("{queued_secs:.3}"),
            format!("{sharded_secs:.3}"),
            format!("{dispatch_speedup:.2}x"),
        ],
    );
    if !args.smoke {
        assert!(
            dispatch_speedup >= DISPATCH_SPEEDUP_FLOOR,
            "dispatch floor: sharded inline dispatch must beat the \
             single-queue bus by >= {DISPATCH_SPEEDUP_FLOOR}x at {jobs} \
             concurrent formation conversations (got {dispatch_speedup:.2}x)"
        );
    }
    report.row(
        "dispatch (wire framing)",
        &[
            (jobs * MSGS_PER_JOB * DISPATCH_ROUNDS).to_string(),
            format!("{queued_secs:.3}"),
            format!("{sharded_wire_secs:.3}"),
            format!(
                "{:.2}x",
                queued_secs / sharded_wire_secs.max(f64::MIN_POSITIVE)
            ),
        ],
    );
    let q_corpus = queued_messages(&envelopes, jobs, MSGS_PER_JOB);
    let s_corpus = sharded_messages(&envelopes, jobs, MSGS_PER_JOB, true);
    report.row(
        "dispatch (full corpus)",
        &[
            (jobs * MSGS_PER_JOB).to_string(),
            format!("{q_corpus:.3}"),
            format!("{s_corpus:.3}"),
            format!("{:.2}x", q_corpus / s_corpus.max(f64::MIN_POSITIVE)),
        ],
    );

    // 3. Drive-architecture equality: the same 64+ negotiations must
    // produce identical outcomes serially, through the single queue, and
    // on the sharded executor. One untimed warmup fills the process-wide
    // verified-credential cache first.
    let _ = drive_serial(8);
    let (serial_out, _serial_secs) = drive_serial(jobs);
    let (queued_out, _queued_secs) = drive_queued(jobs);
    let (sharded_out, _sharded_secs) = drive_sharded(jobs);
    assert_eq!(serial_out, queued_out, "queued drive must replay serial");
    assert_eq!(serial_out, sharded_out, "sharded drive must replay serial");

    // 4. Backpressure: sheds observed, typed, and survivable.
    let (flood_calls, flood_sheds) = backpressure_case();
    assert!(
        flood_sheds > 0,
        "an 8-way flood of a 2-slot queue must shed at least once"
    );
    report.row(
        "backpressure",
        &[
            flood_calls.to_string(),
            "-".into(),
            "-".into(),
            format!("{flood_sheds} sheds"),
        ],
    );

    // 5. Determinism over the wire: serial ≡ parallel ≡ replay on a
    // lossy plan; a crash round resumes and replays; wire-on ≡ wire-off.
    let world = workloads::parallel_join_world(applicants, depth, alternatives);
    let lossy = FaultPlan::lossy(seed, 0.05);
    let serial = run_formation(&world, lossy.clone(), seed, None, None, None);
    let parallel = run_formation(&world, lossy.clone(), seed, None, Some(WORKERS), None);
    let replay = run_formation(&world, lossy.clone(), seed, None, None, None);
    assert_eq!(serial, parallel, "sharded formation must replay serial");
    assert_eq!(serial, replay, "same seed must replay bit-for-bit");
    let in_process = run_formation(&world, lossy, seed, Some(false), None, None);
    assert_eq!(
        serial, in_process,
        "the wire boundary must be invisible to outcomes"
    );

    // Crash/resume round, serial (crash windows are only deterministic
    // serially): at least one checkpointed resume, replayed exactly. The
    // outage is anchored at ~45 % of a measured heavy-loss run so it
    // lands while sessions are mid-flight with checkpoints behind them.
    let heavy = run_formation(&world, FaultPlan::lossy(seed, 0.20), seed, None, None, None);
    let outage_start = SimDuration((heavy.elapsed.0 as f64 * 0.45) as u64);
    let crash_plan = FaultPlan::lossy(seed, 0.20).outage(
        "tn",
        outage_start,
        outage_start + SimDuration::from_millis(1_200),
        true,
    );
    let crashed = run_formation(&world, crash_plan.clone(), seed, None, None, None);
    let crash_replay = run_formation(&world, crash_plan, seed, None, None, None);
    assert_eq!(crashed, crash_replay, "crash schedule must replay exactly");
    assert!(
        crashed.resumes > 0 && crashed.service_resumed > 0,
        "the crash window must force a checkpointed resume over the wire"
    );

    // Observed round for the CI byte-identity gates: serial drive,
    // deterministic dumps. `--plain` pins the in-process path — the
    // TRUST_VO_WIRE=off kill-switch must land on identical artifacts.
    let observed = run_formation(
        &world,
        FaultPlan::lossy(seed, 0.05),
        seed,
        if plain { Some(false) } else { None },
        None,
        Some(&args),
    );
    if !plain && wire::wire_enabled() {
        assert_eq!(observed, serial, "observation must not perturb the run");
    }

    report.note(&format!(
        "seed = {seed}; corpus of {} envelope shapes; {WORKERS} shard \
         workers / caller threads; floors: codec {CODEC_SPEEDUP_FLOOR}x, \
         dispatch {DISPATCH_SPEEDUP_FLOOR}x (asserted non-smoke)",
        envelopes.len(),
    ));
    report.note(
        "serial == queued == sharded outcomes; serial == parallel == replay \
         == wire-off formation; crash round resumed and replayed; sheds \
         typed Overloaded with drain hints and survived by retry",
    );
    report.print();

    if !args.smoke {
        std::fs::write("BENCH_bus.json", report.to_json() + "\n").expect("writing BENCH_bus.json");
        eprintln!("wrote BENCH_bus.json");
    }
}
