//! E5b — the indexed Algorithm 1 engine at scale.
//!
//! Measures the similarity-fallback mapping rate on all-paraphrased
//! workloads at n ∈ {800, 3200, 10000} concepts in three regimes:
//!
//! * **reference** — the seed's naive `match_concept_reference` scan
//!   (re-tokenizes every concept per request);
//! * **indexed** — the full `MappingEngine` with the mapping memo
//!   disabled (inverted-index scan + closure-backed credential lookup);
//! * **memoized** — the full engine with the memo hot.
//!
//! Writes `BENCH_ontology.json` (not in `--smoke`/`--digest`) and
//! asserts the E5b floors in-binary: indexed ≥ 10x reference at n=800,
//! the n=10000 workload completes with every request mapped, and memo
//! hits are far cheaper than cold maps.
//!
//! `--digest` replaces measurement with a deterministic outcome-digest
//! dump (two passes per size, FNV-1a over the debug rendering of every
//! outcome, no timings): ci.sh runs it twice — `TRUST_VO_MAP_CACHE=0`
//! vs default — and requires byte-identical stdout, proving the memo
//! changes mapping cost, never mapping results.

use std::hint::black_box;
use std::time::Instant;
use trust_vo_bench::obsutil::{publish_ontology_metrics, ObsArgs};
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads::{self, map_concept, SIMILARITY_THRESHOLD};
use trust_vo_obs::Collector;
use trust_vo_ontology::{match_concept_reference, MapMemo, MappingEngine};

/// Time `iters` runs of `f`, three times, and return the best ops/s (the
/// first repetition doubles as warmup; see `crypto_bench::measure`).
fn measure(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut best = 0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for i in 0..iters {
            f(i);
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(iters as f64 / secs);
    }
    best
}

fn fmt_ops(ops: f64) -> String {
    if ops >= 1e6 {
        format!("{:.2}M", ops / 1e6)
    } else if ops >= 1e3 {
        format!("{:.1}k", ops / 1e3)
    } else {
        format!("{ops:.0}")
    }
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// `--digest`: map every request of each workload twice and print one
/// deterministic digest line per size. No timings, no floors — stdout
/// must be byte-identical across runs regardless of the memo state.
fn run_digest() {
    for (n, paraphrased) in [(50usize, 25usize), (200, 100), (800, 400)] {
        let w = workloads::ontology_workload(n, paraphrased);
        let mut digests = [0xcbf2_9ce4_8422_2325u64; 2];
        for digest in &mut digests {
            for request in &w.requests {
                let outcome = map_concept(&w.ontology, &w.profile, request, SIMILARITY_THRESHOLD);
                fnv1a(digest, format!("{outcome:?}").as_bytes());
            }
        }
        assert_eq!(
            digests[0], digests[1],
            "n={n}: second pass (memo-hot when enabled) diverged from the first"
        );
        println!("digest n={n} outcomes={:016x}", digests[0]);
    }
}

fn main() {
    let args = ObsArgs::from_env();
    if std::env::args().any(|a| a == "--digest") {
        run_digest();
        return;
    }

    let scale: u64 = if args.smoke { 1 } else { 8 };
    let memo = MapMemo::global();
    let mut report = Report::new(
        "E5b",
        "Indexed Algorithm 1 at scale: similarity-fallback mapping rates",
        &["mode", "ops/s", "vs reference", "notes"],
    );

    let mut speedup_800 = 0f64;
    let mut memo_vs_cold_800 = 0f64;
    let mut completed_10k = false;
    // Smoke keeps the two floor-bearing sizes; the full run adds the
    // middle point for the E5b table.
    let sizes: &[usize] = if args.smoke {
        &[800, 10_000]
    } else {
        &[800, 3200, 10_000]
    };
    for &n in sizes {
        let w = workloads::ontology_workload(n, n); // every request paraphrased
        let sample: Vec<&String> = w.requests.iter().step_by((n / 64).max(1)).collect();
        let pick = |i: u64| sample[(i as usize) % sample.len()].as_str();

        // Seed path: one full naive scan per request. Iteration counts
        // shrink with n — the scan is O(n) tokenizations.
        let ref_iters = ((160_000 / n) as u64 * scale).max(2);
        let reference_ops = measure(ref_iters, |i| {
            black_box(match_concept_reference(
                pick(i),
                &w.ontology,
                SIMILARITY_THRESHOLD,
            ));
        });

        // Indexed engine, memo cold on every request (disabled).
        memo.set_enabled(false);
        let engine = MappingEngine::new(&w.ontology, &w.profile, SIMILARITY_THRESHOLD);
        engine.map(pick(0)); // build the index outside the timed region
        let indexed_ops = measure(400 * scale, |i| {
            black_box(engine.map(pick(i)));
        });

        // Memo hot: same requests, answered from the memo.
        memo.set_enabled(true);
        for request in &sample {
            engine.map(request);
        }
        let memo_ops = measure(4_000 * scale, |i| {
            black_box(engine.map(pick(i)));
        });

        let speedup = indexed_ops / reference_ops;
        if n == 800 {
            speedup_800 = speedup;
            memo_vs_cold_800 = memo_ops / indexed_ops;
        }
        report.row(
            &format!("reference (n={n})"),
            &[
                fmt_ops(reference_ops),
                "1.0x".into(),
                "seed scan: re-tokenize every concept".into(),
            ],
        );
        report.row(
            &format!("indexed (n={n})"),
            &[
                fmt_ops(indexed_ops),
                format!("{speedup:.1}x"),
                "inverted token index + closure bitsets".into(),
            ],
        );
        report.row(
            &format!("memoized (n={n})"),
            &[
                fmt_ops(memo_ops),
                format!("{:.1}x", memo_ops / reference_ops),
                "MapMemo hit".into(),
            ],
        );

        // Completeness: one full pass over every request must map all of
        // them (the paraphrase resolves to its concept at the shared
        // threshold).
        let started = Instant::now();
        let mapped = w
            .requests
            .iter()
            .filter(|r| map_concept(&w.ontology, &w.profile, r, SIMILARITY_THRESHOLD).is_mapped())
            .count();
        let us_per_request = started.elapsed().as_secs_f64() * 1e6 / n as f64;
        assert_eq!(mapped, n, "n={n}: {} requests failed to map", n - mapped);
        if n == 10_000 {
            completed_10k = true;
        }
        report.row(
            &format!("full pass (n={n})"),
            &[
                format!("{mapped}/{n} mapped"),
                "-".into(),
                format!("{us_per_request:.1} us/request"),
            ],
        );
    }

    report.note(
        "all-paraphrased workloads: every request takes Algorithm 1's similarity \
         fallback; reference = the seed's O(concepts) rescans",
    );
    report.print();

    if let Some(path) = &args.emit_obs {
        let collector = Collector::new();
        publish_ontology_metrics(&collector);
        std::fs::write(path, collector.to_jsonl())
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        eprintln!("observability dump written to {}", path.display());
    }

    if !args.smoke {
        std::fs::write("BENCH_ontology.json", report.to_json() + "\n")
            .expect("writing BENCH_ontology.json");
        eprintln!("wrote BENCH_ontology.json");
    }

    // Acceptance gates (ISSUE 5 / EXPERIMENTS E5b).
    assert!(
        speedup_800 >= 10.0,
        "n=800 indexed similarity fallback {speedup_800:.1}x below the 10x floor"
    );
    assert!(completed_10k, "n=10000 workload did not complete");
    assert!(
        memo_vs_cold_800 >= 2.0,
        "memo hits only {memo_vs_cold_800:.1}x over cold maps at n=800"
    );
}
