//! E7 — selective-disclosure overhead table (the §6.3 extension).

use std::time::Instant;
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads;
use trust_vo_credential::selective::SelectiveIssuance;
use trust_vo_credential::x509::AttributeCertificate;
use trust_vo_credential::{TimeRange, Timestamp};
use trust_vo_crypto::KeyPair;

fn timed<R>(f: impl Fn() -> R, iters: u32) -> (R, f64) {
    let started = Instant::now();
    let mut last = None;
    for _ in 0..iters {
        last = Some(f());
    }
    (
        last.expect("iters > 0"),
        started.elapsed().as_secs_f64() * 1e6 / f64::from(iters),
    )
}

fn main() {
    let issuer = KeyPair::from_seed(b"issuer");
    let holder = KeyPair::from_seed(b"holder");
    let window = TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap());
    let at = workloads::at();
    const ITERS: u32 = 200;

    let mut report = Report::new(
        "E7",
        "Selective disclosure (hash commitments) vs. plain X.509v2",
        &[
            "attributes",
            "x509 issue+verify (us)",
            "selective issue+verify (us)",
            "overhead",
        ],
    );
    for n in [1usize, 4, 16, 64, 256] {
        let attrs = workloads::wide_attributes(n);
        let reveal: Vec<&str> = attrs
            .iter()
            .take(n / 2 + 1)
            .map(|(k, _)| k.as_str())
            .collect();
        let (_, plain_us) = timed(
            || {
                let cert = AttributeCertificate::issue(
                    1,
                    "holder",
                    holder.public,
                    "issuer",
                    &issuer,
                    window,
                    attrs.clone(),
                );
                cert.verify(at, None).unwrap();
            },
            ITERS,
        );
        let (_, sel_us) = timed(
            || {
                let issuance = SelectiveIssuance::issue(
                    1,
                    "holder",
                    holder.public,
                    "issuer",
                    &issuer,
                    window,
                    &attrs,
                );
                let view = issuance.disclose(&reveal).unwrap();
                view.verify(at, None).unwrap();
            },
            ITERS,
        );
        report.row(
            &n.to_string(),
            &[
                format!("{plain_us:.1}"),
                format!("{sel_us:.1}"),
                format!("{:.2}x", sel_us / plain_us),
            ],
        );
    }
    report.note("selective adds one commitment per attribute at issue time and one hash per revealed attribute at verify time");
    report.print();
}
