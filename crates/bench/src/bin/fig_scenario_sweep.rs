//! E16 — scenario DSL sweep: generated VO lifecycles under generated
//! fault plans, with every run checked against the four lifecycle
//! properties (DESIGN §8).
//!
//! The sweep generates `N` scenarios from `--seed` via
//! `trust-vo-scenario` (`--smoke`: 500, full: 2000), runs each one every
//! way it supports (serial, replay, parallel when order-independent),
//! and fails the process on the first property violation — after
//! shrinking it to a minimal scenario and printing the
//! `trustvo scenario repro` command line that reproduces it.
//!
//! A fixed *showcase* scenario (3 parties, depth-2 chains, 20 % loss, a
//! mid-formation crash window, a revocation storm, replacement churn,
//! ontology drift) then runs once more with the obs collector attached;
//! `--emit-obs` / `--emit-trace` write its dumps with wall-clock fields
//! scrubbed, so two same-seed runs are byte-identical — the ci chaos
//! gate diffs them. Any observed run also gates on the critical-path
//! analyzer attributing ≥ 95 % of the formation root's simulated time.
//!
//! `--canary` inverts the harness to prove it end-to-end: every scenario
//! is additionally required to FAIL formation, so a healthy seed
//! violates the canary property, the shrinker minimizes it, and the
//! process asserts the repro is tiny (≤ 3 parties, ≤ 2 fault clauses)
//! before printing it and exiting 0.

use trust_vo_bench::obsutil::ObsArgs;
use trust_vo_bench::report::Report;
use trust_vo_obs::Collector;
use trust_vo_scenario::run::{run_scenario, Mode};
use trust_vo_scenario::{check_scenario, fuzz, fuzz_with, Scenario, Storm, Window};
use trust_vo_soa::simclock::SimDuration;

const DEFAULT_SEED: u64 = 16;
/// Shrink budget: property checks the shrinker may spend minimizing one
/// failing scenario.
const SHRINK_BUDGET: usize = 400;

/// The fixed scenario whose obs stream the ci gate diffs: loss, a crash
/// window, a revocation storm, and ontology drift at once. The seed is
/// pinned (not `--seed`) because whether the crash window catches a call
/// in flight depends on the loss stream — this one is known to crash the
/// service mid-formation and recover. No churn: windows anchor to the
/// *clean* run's elapsed time, and a replacement renegotiation would
/// inflate that base until the window lands past formation. (The sweep
/// covers churn: ~40 % of generated scenarios carry it.)
const SHOWCASE_SEED: u64 = 17;

fn showcase() -> Scenario {
    Scenario {
        parties: 3,
        depth: 2,
        loss_pct: 20,
        drift: 2,
        storms: vec![Storm { revoke: 1 }],
        crashes: vec![Window {
            start_pct: 40,
            len_ms: 900,
        }],
        ..Scenario::minimal(SHOWCASE_SEED)
    }
}

/// E16 acceptance on observed runs, same bar as E11: the critical-path
/// analyzer must attribute ≥ 95 % of the formation root's sim time.
fn verify_attribution(collector: &Collector) {
    use trust_vo_obs::critical;
    let records = collector.export_records(true);
    let root_ids: Vec<u64> = critical::roots(&records, "formation.form_vo_resilient")
        .iter()
        .map(|s| s.id)
        .collect();
    assert!(
        !root_ids.is_empty(),
        "an observed E16 run must record a formation root span"
    );
    for root_id in root_ids {
        let a = critical::attribute(&records, root_id).expect("root is in its own export");
        eprintln!("{}", critical::render_attribution(&a));
        assert!(
            a.attributed_fraction() >= 0.95,
            "attribution covers only {:.1}% of formation root {root_id}",
            100.0 * a.attributed_fraction(),
        );
    }
}

/// `--canary` mode: require every scenario to fail formation, so the
/// first healthy seed trips the canary property and exercises the
/// shrinker on a real (deliberately injected) failure.
fn run_canary(seed: u64) {
    let report = fuzz_with(seed, 40, SHRINK_BUDGET, true);
    let shrunk = report.failure.unwrap_or_else(|| {
        eprintln!("canary never fired in 40 scenarios from seed {seed}");
        std::process::exit(1);
    });
    assert_eq!(shrunk.failure.property, "canary", "{}", shrunk.failure);
    assert!(
        shrunk.scenario.parties <= 3,
        "shrunk repro still has {} parties",
        shrunk.scenario.parties
    );
    assert!(
        shrunk.scenario.fault_clauses() <= 2,
        "shrunk repro still has {} fault clauses",
        shrunk.scenario.fault_clauses()
    );
    println!(
        "canary fired after {} scenario(s); shrunk in {} check run(s) to \
         {} party(ies), {} fault clause(s)",
        report.checked,
        shrunk.runs,
        shrunk.scenario.parties,
        shrunk.scenario.fault_clauses()
    );
    println!("repro: {}", shrunk.repro());
}

fn main() {
    let args = ObsArgs::from_env();
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    if std::env::args().any(|a| a == "--canary") {
        run_canary(seed);
        return;
    }
    let count = if args.smoke { 500 } else { 2_000 };

    let sweep = fuzz(seed, count, SHRINK_BUDGET);
    if let Some(shrunk) = &sweep.failure {
        eprintln!("property violation: {}", shrunk.failure);
        eprintln!("shrunk ({} check runs): {:?}", shrunk.runs, shrunk.scenario);
        eprintln!("repro: {}", shrunk.repro());
        std::process::exit(1);
    }

    // The showcase scenario: checked like any sweep member first, then
    // re-run with the collector riding the serial drive for the
    // deterministic dumps.
    let show = showcase();
    let outcome = check_scenario(&show).unwrap_or_else(|failure| {
        eprintln!("showcase scenario failed: {failure}");
        eprintln!("repro: {}", show.repro_command());
        std::process::exit(1);
    });
    let collector = if args.emit_obs.is_some() || args.emit_trace.is_some() {
        Collector::new()
    } else {
        Collector::disabled()
    };
    // Windows anchor to the fault-free formation time, exactly as
    // `check_scenario` measures it (same clean-world serial probe).
    let clean = Scenario {
        loss_pct: 0,
        crashes: Vec::new(),
        ..show.clone()
    };
    let base = SimDuration(
        run_scenario(&clean, Mode::Serial, SimDuration::ZERO, None)
            .outcome
            .elapsed_us,
    );
    let observed = run_scenario(&show, Mode::Serial, base, Some(&collector));
    assert_eq!(
        observed.outcome, outcome,
        "attaching the collector must not perturb the run"
    );
    args.dump_deterministic(&collector);
    args.dump_trace_deterministic(&collector);
    if collector.is_enabled() {
        verify_attribution(&collector);
    }

    let formed = observed
        .outcome
        .formed
        .as_ref()
        .expect("the showcase scenario forms");
    assert!(
        observed.outcome.crashes > 0,
        "the showcase crash window must fire"
    );
    assert!(
        formed.resumes + formed.restarts > 0,
        "the showcase crash must force session recovery"
    );
    let mut report = Report::new(
        "E16",
        "Scenario DSL sweep: generated lifecycles under generated fault plans",
        &["scenarios", "formed", "refusals", "drops", "crashes"],
    );
    report.row(
        "sweep",
        &[
            sweep.checked.to_string(),
            sweep.formed.to_string(),
            sweep.refusals.to_string(),
            sweep.drops.to_string(),
            sweep.crashes.to_string(),
        ],
    );
    report.row(
        "showcase",
        &[
            "1".to_string(),
            "1".to_string(),
            observed.outcome.refusals.to_string(),
            observed.outcome.drops.to_string(),
            observed.outcome.crashes.to_string(),
        ],
    );
    report.note(&format!(
        "seed = {seed}; every scenario checked for: membership ⇔ completed TN, \
         serial ≡ replay (≡ parallel when order-independent), kill-anywhere \
         journal recovery, honored retry_after_us hints"
    ));
    report.note(&format!(
        "showcase: 3 parties / depth 2 / 20% loss / crash window / storm / drift; \
         crashed {} time(s), recovered via {} resume(s) + {} restart(s), \
         revoked {} certificate(s), {} drift lookup(s) mapped",
        observed.outcome.crashes,
        formed.resumes,
        formed.restarts,
        formed.revoked,
        observed.outcome.mapped,
    ));
    report.print();
}
