//! Journal determinism + recovery smoke (PR 6 CI gate).
//!
//! Runs the formation workload with a fact journal attached to the TN
//! service's database, then prints the journal's replay digest and the
//! database's state digest. Everything downstream of `--seed` is
//! deterministic, so two runs of this binary with the same seed must
//! print byte-identical output — ci.sh runs it twice and `cmp`s.
//!
//! `--smoke` additionally sweeps truncated copies of the journal through
//! recovery: for a spread of byte cuts (torn-tail crashes included) the
//! replay must stop at a clean record boundary and restore a database
//! whose digest matches a clean-prefix replay of the same bytes. A
//! compaction round-trip is asserted too: snapshotting the log must not
//! change the recovered state.

use std::sync::Arc;
use trust_vo_bench::obsutil::ObsArgs;
use trust_vo_bench::workloads::{self, ParallelJoinWorld};
use trust_vo_journal::Journal;
use trust_vo_negotiation::Strategy;
use trust_vo_soa::simclock::{CostModel, SimClock};
use trust_vo_soa::{ResumePolicy, RetryPolicy, ServiceBus, TnService};
use trust_vo_store::Database;
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::{form_vo_resilient, register_formation_parties, ReputationLedger};

const DEFAULT_SEED: u64 = 9;

/// Drive one formation with a journaled database; return the journal
/// bytes and the live database's state digest.
fn journaled_formation(world: &ParallelJoinWorld, seed: u64) -> (Vec<u8>, u64) {
    let clock = SimClock::new(CostModel::paper_testbed(), workloads::at());
    let bus = ServiceBus::new(clock.clone());
    let db = Database::new();
    let journal = Arc::new(Journal::in_memory());
    db.attach_journal(journal.clone());
    let svc = Arc::new(TnService::new(clock.clone(), db));
    register_formation_parties(&svc, &world.contract, &world.initiator, &world.providers);
    bus.register("tn", svc.clone());
    let (vo, _) = form_vo_resilient(
        world.contract.clone(),
        &world.initiator,
        &world.providers,
        &world.registry,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &bus,
        "tn",
        Strategy::Standard,
        &RetryPolicy::standard(),
        &ResumePolicy::standard(),
        seed,
    )
    .expect("journaled formation completes");
    assert_eq!(vo.members().len(), world.contract.roles.len());
    let digest = svc.database().state_digest();
    (journal.bytes(), digest)
}

fn restore_digest(bytes: &[u8]) -> (u64, trust_vo_journal::Replay) {
    let journal = Journal::from_bytes(bytes.to_vec());
    let db = Database::new();
    let replay = db.restore_from_journal(&journal);
    (db.state_digest(), replay)
}

fn main() {
    let args = ObsArgs::from_env();
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    let world = workloads::parallel_join_world(3, 4, 2);

    let (bytes, live_digest) = journaled_formation(&world, seed);
    let replay = Journal::replay_bytes(&bytes);
    assert!(!replay.truncated, "a clean run leaves no torn tail");
    let (restored_digest, _) = restore_digest(&bytes);
    assert_eq!(
        restored_digest, live_digest,
        "replay must reconstruct the live state"
    );

    // Compaction round-trip: snapshot + replay lands on the same state.
    let journal = Journal::from_bytes(bytes.clone());
    let db = Database::new();
    db.restore_from_journal(&journal);
    db.compact_into(&journal);
    let (compacted_digest, compacted_replay) = restore_digest(&journal.bytes());
    assert_eq!(compacted_digest, live_digest, "compaction must be lossless");
    assert_eq!(
        compacted_replay.records, 1,
        "compaction leaves one snapshot"
    );

    println!(
        "seed={seed} records={} bytes={} replay_digest={} state_digest={live_digest:016x}",
        replay.records,
        bytes.len(),
        replay.digest_hex(),
    );

    if args.smoke {
        // Truncated-journal recovery: cut the log at a spread of byte
        // offsets (coprime stride so cuts land mid-record, mid-frame,
        // and mid-header) and require every cut to recover cleanly.
        let mut cuts = 0u32;
        let stride = (bytes.len() / 97).max(1);
        for cut in (0..=bytes.len()).step_by(stride) {
            let truncated = &bytes[..cut];
            let (got, replay) = restore_digest(truncated);
            assert!(
                replay.clean_len as usize <= cut,
                "clean prefix cannot exceed the surviving bytes"
            );
            let (want, clean) = restore_digest(&truncated[..replay.clean_len as usize]);
            assert!(!clean.truncated, "the clean prefix replays cleanly");
            assert_eq!(got, want, "cut at byte {cut} must restore a clean prefix");
            cuts += 1;
        }
        println!("truncation smoke ok: {cuts} cuts recovered to clean prefixes");
    }
}
