//! E8 — operation-phase re-negotiation table (§5.1): authorization TNs,
//! membership renewal, and member replacement on the calibrated clock.

use trust_vo_bench::report::Report;
use trust_vo_bench::workloads;
use trust_vo_credential::RevocationList;
use trust_vo_negotiation::Strategy;
use trust_vo_soa::simclock::SimDuration;
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::operation::{authorize_operation, renew_membership, replace_member};
use trust_vo_vo::reputation::ReputationLedger;
use trust_vo_vo::scenario::{names, roles};

fn main() {
    let mut report = Report::new(
        "E8",
        "Operation-phase trust negotiation costs (simulated wall-clock)",
        &["flow", "sim (s)"],
    );

    // Authorization between two members (consultancy asks HPC for a flow
    // solution; the §5 privacy-regulator exchange runs underneath).
    let mut s = workloads::scenario(workloads::paper_clock());
    let vo = s.form_vo(Strategy::Standard).expect("formation succeeds");
    let formation_cost = s.toolkit.clock.elapsed();
    let (initiator, providers) = workloads::operation_world(&s);

    let before = s.toolkit.clock.elapsed();
    let mut reputation = ReputationLedger::new();
    authorize_operation(
        &vo,
        &providers,
        names::CONSULTANCY,
        names::HPC,
        "FlowSolution",
        &mut reputation,
        &s.toolkit.clock,
        Strategy::Standard,
    )
    .expect("authorization succeeds");
    let auth_cost = SimDuration(s.toolkit.clock.elapsed().0 - before.0);

    // Membership renewal after expiry.
    let mut vo2 = vo.clone();
    let before = s.toolkit.clock.elapsed();
    renew_membership(
        &mut vo2,
        &initiator,
        &providers,
        names::AEROSPACE,
        &mut s.toolkit.mailboxes,
        &mut s.toolkit.reputation,
        &s.toolkit.clock,
        Strategy::Standard,
    )
    .expect("renewal succeeds");
    let renew_cost = SimDuration(s.toolkit.clock.elapsed().0 - before.0);

    // Member replacement (HPC reputation dropped; backup takes over).
    let mut vo3 = vo.clone();
    let mut crl = RevocationList::new();
    let before = s.toolkit.clock.elapsed();
    let record = replace_member(
        &mut vo3,
        &initiator,
        &providers,
        &s.toolkit.registry,
        roles::HPC,
        &mut crl,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &s.toolkit.clock,
        Strategy::Standard,
    )
    .expect("replacement succeeds");
    let replace_cost = SimDuration(s.toolkit.clock.elapsed().0 - before.0);
    assert_eq!(record.provider, names::HPC_BACKUP);

    report.row(
        "full 4-role formation",
        &[format!("{:.2}", formation_cost.as_secs_f64())],
    );
    report.row(
        "authorization TN (FlowSolution)",
        &[format!("{:.2}", auth_cost.as_secs_f64())],
    );
    report.row(
        "membership renewal",
        &[format!("{:.2}", renew_cost.as_secs_f64())],
    );
    report.row(
        "member replacement",
        &[format!("{:.2}", replace_cost.as_secs_f64())],
    );
    report.note("authorization TNs grant permissions, not credentials (§5.1); renewal/replacement rerun the formation join");
    report.print();
}
