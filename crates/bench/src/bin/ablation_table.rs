//! E9 — extension ablation table: repeat negotiations with the full
//! protocol, the sequence cache, and trust tickets, plus what each path
//! still verifies.

use std::time::Instant;
use trust_vo_bench::report::Report;
use trust_vo_bench::workloads;
use trust_vo_credential::{TimeRange, Timestamp};
use trust_vo_negotiation::ticket::negotiate_with_ticket;
use trust_vo_negotiation::{negotiate, NegotiationConfig, SequenceCache, Strategy};

fn main() {
    let (requester, controller) = workloads::chain_parties(6, 2);
    let cfg = NegotiationConfig::new(Strategy::Standard, workloads::at());
    let window = TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap());
    const ITERS: u32 = 300;

    let timed = |f: &dyn Fn()| {
        let started = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        started.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS)
    };

    let full_us = timed(&|| {
        negotiate(&requester, &controller, "Target", &cfg).unwrap();
    });

    let mut cache = SequenceCache::new();
    cache
        .negotiate(&requester, &controller, "Target", &cfg)
        .unwrap();
    let cache_cell = std::cell::RefCell::new(cache);
    let cache_us = timed(&|| {
        cache_cell
            .borrow_mut()
            .negotiate(&requester, &controller, "Target", &cfg)
            .unwrap();
    });

    let (ticket, _) =
        negotiate_with_ticket(&requester, &controller, "Target", &cfg, None, window).unwrap();
    let ticket_us = timed(&|| {
        negotiate_with_ticket(
            &requester,
            &controller,
            "Target",
            &cfg,
            Some(&ticket),
            window,
        )
        .unwrap();
    });

    let mut report = Report::new(
        "E9",
        "Repeat-negotiation ablation (chain depth 6, 2 alternatives/level)",
        &["path", "us/negotiation", "speedup", "still verifies"],
    );
    report.row(
        "full two-phase protocol",
        &[format!("{full_us:.1}"), "1.0x".into(), "everything".into()],
    );
    report.row(
        "sequence cache (phase 1 skipped)",
        &[
            format!("{cache_us:.1}"),
            format!("{:.1}x", full_us / cache_us),
            "signatures, revocation, validity".into(),
        ],
    );
    report.row(
        "trust ticket redemption",
        &[
            format!("{ticket_us:.1}"),
            format!("{:.1}x", full_us / ticket_us),
            "ticket signature + holder proof".into(),
        ],
    );
    report.note("cache hits skip the AND-OR policy search but rerun the whole credential exchange; tickets reduce a repeat negotiation to two signature operations");
    report.print();

    let stats = cache_cell.borrow().stats();
    assert_eq!(stats.misses, 1, "only the warm-up missed");
    assert!(
        ticket_us < full_us && cache_us < full_us,
        "ablations must be faster"
    );
}
