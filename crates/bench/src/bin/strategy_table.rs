//! E6 — strategy ablation table: disclosure and message counts for the
//! four Trust-X strategies and the eager (TrustBuilder-style) baseline on
//! the Fig. 2 negotiation.

use trust_vo_bench::report::Report;
use trust_vo_bench::workloads;
use trust_vo_negotiation::baseline::negotiate_eager;
use trust_vo_negotiation::Strategy;
use trust_vo_vo::scenario::{names, roles};

fn main() {
    let s = workloads::scenario(workloads::free_clock());
    let mut report = Report::new(
        "E6",
        "Strategy comparison on the Fig. 2 negotiation (VoMembership)",
        &[
            "strategy",
            "messages",
            "policy rounds",
            "policies",
            "credentials",
            "ownership proofs",
        ],
    );
    for strategy in Strategy::ALL {
        let outcome = s.fig2_negotiation(strategy).expect("satisfiable");
        report.row(
            strategy.wire_name(),
            &[
                outcome.transcript.message_count().to_string(),
                outcome.transcript.policy_rounds.to_string(),
                outcome.transcript.policies_disclosed.to_string(),
                outcome.transcript.credentials_disclosed.to_string(),
                outcome.transcript.ownership_proofs.to_string(),
            ],
        );
    }

    // The eager baseline over-discloses: every releasable credential is
    // pushed, not just the ones a trust sequence needs.
    let mut initiator = s.provider(names::AIRCRAFT).party.clone();
    if let Some(set) = s.contract.policies_for(roles::DESIGN_PORTAL) {
        for policy in set.iter() {
            initiator.policies.add(policy.clone());
        }
    }
    let aerospace = s.provider(names::AEROSPACE).party.clone();
    let eager = negotiate_eager(&aerospace, &initiator, "VoMembership", workloads::at())
        .expect("satisfiable");
    report.row(
        "eager (TrustBuilder-style)",
        &[
            "-".into(),
            eager.transcript.policy_rounds.to_string(),
            "0".into(),
            eager.transcript.credentials_disclosed.to_string(),
            "0".into(),
        ],
    );
    report.note(
        "eager discloses no policies but pushes every releasable credential (over-disclosure)",
    );
    report.print();
}
