//! E4 — message/round counts vs. policy-graph size ("trust negotiations
//! help in determining and verifying with a relatively small number of
//! messages…", §1).

use trust_vo_bench::report::Report;
use trust_vo_bench::workloads;
use trust_vo_negotiation::{negotiate, NegotiationConfig, Strategy};

fn main() {
    let mut report = Report::new(
        "E4",
        "Negotiation cost vs. policy chain depth (standard strategy)",
        &[
            "depth",
            "messages",
            "policy rounds",
            "policies",
            "credentials",
            "views",
        ],
    );
    for depth in [1usize, 2, 4, 6, 8, 12] {
        let (requester, controller) = workloads::chain_parties(depth, 2);
        let cfg = NegotiationConfig::new(Strategy::Standard, workloads::at());
        let outcome = negotiate(&requester, &controller, "Target", &cfg).expect("satisfiable");
        let views =
            trust_vo_negotiation::count_views(&requester, &controller, "Target", &cfg, 1000);
        report.row(
            &depth.to_string(),
            &[
                outcome.transcript.message_count().to_string(),
                outcome.transcript.policy_rounds.to_string(),
                outcome.transcript.policies_disclosed.to_string(),
                outcome.transcript.credentials_disclosed.to_string(),
                views.to_string(),
            ],
        );
    }
    report.note(
        "message count grows linearly with depth — the paper's 'small number of messages' claim",
    );
    report.print();

    let mut report = Report::new(
        "E4b",
        "Negotiation cost vs. failing alternatives per level (depth 4)",
        &[
            "alternatives",
            "messages",
            "failed branches",
            "policies disclosed",
        ],
    );
    for alts in [1usize, 2, 4, 8] {
        let (requester, controller) = workloads::chain_parties(4, alts);
        let cfg = NegotiationConfig::new(Strategy::Standard, workloads::at());
        let outcome = negotiate(&requester, &controller, "Target", &cfg).expect("satisfiable");
        report.row(
            &alts.to_string(),
            &[
                outcome.transcript.message_count().to_string(),
                outcome.transcript.failed_alternatives.to_string(),
                outcome.transcript.policies_disclosed.to_string(),
            ],
        );
    }
    report.print();
}
