//! Shared workload builders for the trust-vo benchmark harness.
//!
//! Each bench target regenerates one experiment from DESIGN.md §3. The
//! builders here construct the Aircraft Optimization VO scenario at
//! configurable scale so criterion benches and the table-printing binaries
//! share identical workloads.

#![forbid(unsafe_code)]

pub mod obsutil;
pub mod report;
pub mod workloads;
